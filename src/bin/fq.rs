//! `fq` — command-line interface to the finite-queries library.
//!
//! ```text
//! fq check  <schema.json> <query>            safe-range test + diagnostics
//! fq eval   <state.json>  <query>            active-domain evaluation
//! fq safe   <state.json>  <query> [domain]   relative safety (eq|nat|int|succ)
//! fq decide <domain> <sentence>              decide a pure-domain sentence
//!                                            (eq|nat|int|succ|presburger|words|traces)
//! fq traces <machine-string> <word> [k]      run a machine, print its traces
//! fq machines [n]                            list the first n machine encodings
//! ```
//!
//! States and schemas are JSON in the `fq-relational` serde format; see
//! `examples/data/` for samples.

use finite_queries::domains::{
    DecidableTheory, EqDomain, IntOrder, NatOrder, NatSucc, Presburger, TraceDomain, WordsLlex,
};
use finite_queries::logic::parse_formula;
use finite_queries::relational::active_eval::{eval_query, NatOps, NoOps, TraceOps};
use finite_queries::relational::safe_range::check_safe_range;
use finite_queries::relational::{Schema, State};
use finite_queries::safety::relative;
use finite_queries::turing::trace::{count_traces, trace_string, TraceCount};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("safe") => cmd_safe(&args[1..]),
        Some("decide") => cmd_decide(&args[1..]),
        Some("traces") => cmd_traces(&args[1..]),
        Some("machines") => cmd_machines(&args[1..]),
        _ => {
            eprintln!(
                "usage: fq <check|eval|safe|decide|traces|machines> …\n\
                 see `src/bin/fq.rs` for the full synopsis"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_state(path: &str) -> Result<State, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(fq_json::from_str(&text)?)
}

fn load_schema(path: &str) -> Result<Schema, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    // Accept either a bare schema or a full state.
    if let Ok(schema) = fq_json::from_str::<Schema>(&text) {
        return Ok(schema);
    }
    Ok(fq_json::from_str::<State>(&text)?.schema().clone())
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument: {what}"))
}

fn cmd_check(args: &[String]) -> CliResult {
    let schema = load_schema(arg(args, 0, "schema.json")?)?;
    let query = parse_formula(arg(args, 1, "query")?)?;
    match check_safe_range(&schema, &query) {
        Ok(()) => println!("safe-range: the query is domain-independent"),
        Err(e) => println!("NOT safe-range: {e}"),
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> CliResult {
    let state = load_state(arg(args, 0, "state.json")?)?;
    let query = parse_formula(arg(args, 1, "query")?)?;
    let vars: Vec<String> = query.free_vars().into_iter().collect();
    // Try plain relational first, then numeric, then trace ops.
    let rows = eval_query(&state, &NoOps, &query, &vars)
        .or_else(|_| eval_query(&state, &NatOps, &query, &vars))
        .or_else(|_| eval_query(&state, &TraceOps, &query, &vars))?;
    println!("{}", vars.join("\t"));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    Ok(())
}

fn cmd_safe(args: &[String]) -> CliResult {
    let state = load_state(arg(args, 0, "state.json")?)?;
    let query = parse_formula(arg(args, 1, "query")?)?;
    let domain = args.get(2).map(String::as_str).unwrap_or("nat");
    let vars: Vec<String> = query.free_vars().into_iter().collect();
    let finite = match domain {
        "eq" => relative::relative_safety_eq(&state, &query, &vars)?,
        "nat" => relative::relative_safety_nat(&state, &query, &vars)?,
        "int" => relative::relative_safety_int(&state, &query, &vars)?,
        "succ" => relative::relative_safety_succ(&state, &query, &vars)?,
        other => return Err(format!("unknown domain `{other}` (eq|nat|int|succ)").into()),
    };
    println!(
        "the answer of `{query}` in this state is {} over domain `{domain}`",
        if finite { "FINITE" } else { "INFINITE" }
    );
    Ok(())
}

fn cmd_decide(args: &[String]) -> CliResult {
    let domain = arg(args, 0, "domain")?;
    let sentence = parse_formula(arg(args, 1, "sentence")?)?;
    let value = match domain {
        "eq" => EqDomain.decide(&sentence)?,
        "nat" => NatOrder.decide(&sentence)?,
        "int" => IntOrder.decide(&sentence)?,
        "succ" => NatSucc.decide(&sentence)?,
        "presburger" => Presburger.decide(&sentence)?,
        "words" => WordsLlex.decide(&sentence)?,
        "traces" => TraceDomain.decide(&sentence)?,
        other => {
            return Err(format!(
                "unknown domain `{other}` (eq|nat|int|succ|presburger|words|traces)"
            )
            .into())
        }
    };
    println!("{value}");
    Ok(())
}

fn cmd_traces(args: &[String]) -> CliResult {
    let machine_str = arg(args, 0, "machine-string")?;
    let word = arg(args, 1, "word")?;
    let budget: usize = args
        .get(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000);
    let machine = finite_queries::turing::decode_machine(machine_str)
        .ok_or("the machine string does not decode")?;
    match count_traces(&machine, word, budget) {
        TraceCount::Exactly(n) => {
            println!("machine halts: exactly {n} traces in {word:?}");
            for k in 1..=n {
                println!("  {}", trace_string(&machine, word, k).expect("k ≤ n"));
            }
        }
        TraceCount::AtLeast(n) => {
            println!(
                "machine still running after {budget} steps: at least {n} traces \
                 (showing the first 3)"
            );
            for k in 1..=3 {
                println!("  {}", trace_string(&machine, word, k).expect("running"));
            }
        }
    }
    Ok(())
}

fn cmd_machines(args: &[String]) -> CliResult {
    let n: usize = args.first().map(|s| s.parse()).transpose()?.unwrap_or(10);
    for (i, m) in finite_queries::turing::MachineEnumerator::new()
        .take(n)
        .enumerate()
    {
        println!(
            "M_{i}: {} ({} states, {} transitions)",
            finite_queries::turing::encode_machine(&m),
            m.n_states(),
            m.n_transitions()
        );
    }
    Ok(())
}
