//! `fq` — command-line interface to the finite-queries library.
//!
//! ```text
//! fq check   <schema> <query>                  safe-range test + diagnostics
//! fq eval    <state>  <query> [domain]         execute through the pipeline
//! fq plan    <state>  <query> [domain]         print the chosen plan
//! fq explain <state>  <query> [domain]         plan + execute + statistics
//! fq safe    <state>  <query> [domain]         relative safety
//! fq decide  <domain> <sentence>               decide a pure-domain sentence
//! fq traces  <machine-string> <word> [k]       run a machine, print its traces
//! fq machines [n]                              list the first n machine encodings
//! fq serve   <state> [addr]                    serve queries over line/JSON TCP
//! fq convert <in> <out>                        convert JSON ↔ binary snapshot
//! ```
//!
//! Domains are the registry names `eq|nat|int|succ|presburger|words|traces`;
//! when omitted, the domain is inferred from the query's symbols.
//!
//! Every `<state>` (and `<schema>`) argument accepts either format —
//! JSON in the `fq-relational` serde shape (see `examples/data/`) or a
//! binary columnar snapshot — detected by magic bytes, never by file
//! extension. `fq convert` translates between them; snapshots cold-load
//! at I/O speed where JSON is parse-bound.
//!
//! Every query-answering command routes through the `fq-query` pipeline:
//! **compile** (parse + scheme check + normalization) → **plan** (strategy
//! choice with justification, memoized in the engine's `query.plan`
//! namespace) → **execute** (uniform outcome with a completeness
//! certificate).

use finite_queries::logic::parse_formula;
use finite_queries::query::{Completeness, DomainId, Executor, QueryError};
use finite_queries::relational::{self, Schema, State};
use finite_queries::turing::trace::{count_traces, trace_string, TraceCount};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("safe") => cmd_safe(&args[1..]),
        Some("decide") => cmd_decide(&args[1..]),
        Some("traces") => cmd_traces(&args[1..]),
        Some("machines") => cmd_machines(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        _ => {
            eprintln!(
                "usage: fq <check|eval|plan|explain|safe|decide|traces|machines|serve|convert> …\n\
                 see `src/bin/fq.rs` for the full synopsis"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Where a loaded state came from: on-disk format id plus byte size,
/// for the `explain`/`serve` provenance lines.
struct StateSource {
    format: &'static str,
    bytes: usize,
}

/// Load a state from either on-disk format, detected by magic bytes.
fn load_state_with_source(path: &str) -> Result<(State, StateSource), Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let source = StateSource {
        format: detected_format(&bytes),
        bytes: bytes.len(),
    };
    let state = if relational::is_snapshot(&bytes) {
        State::read_snapshot(&bytes)
            .map_err(|e| format!("`{path}` is not a valid snapshot: {e}"))?
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| format!("`{path}` is not a valid state: {e}"))?;
        fq_json::from_str(text).map_err(|e| format!("`{path}` is not a valid state: {e}"))?
    };
    Ok((state, source))
}

fn load_state(path: &str) -> Result<State, Box<dyn std::error::Error>> {
    Ok(load_state_with_source(path)?.0)
}

fn detected_format(bytes: &[u8]) -> &'static str {
    if relational::is_snapshot(bytes) {
        relational::FORMAT_ID
    } else {
        relational::JSON_FORMAT_ID
    }
}

/// Accept either a bare schema or a full state, in either on-disk
/// format. A JSON file that is neither reports **both** parse failures
/// — a malformed schema must not be diagnosed as a malformed state.
fn load_schema(path: &str) -> Result<Schema, QueryError> {
    let schema_load = |schema_error: String, state_error: String| QueryError::SchemaLoad {
        path: path.to_string(),
        schema_error,
        state_error,
    };
    let bytes = std::fs::read(path).map_err(|e| schema_load(e.to_string(), e.to_string()))?;
    if relational::is_snapshot(&bytes) {
        // The snapshot header + meta section carry the schema; no need
        // to materialize the columns.
        return relational::format::read_schema(&bytes)
            .map_err(|e| schema_load(e.to_string(), e.to_string()));
    }
    let text =
        std::str::from_utf8(&bytes).map_err(|e| schema_load(e.to_string(), e.to_string()))?;
    let schema_error = match fq_json::from_str::<Schema>(text) {
        Ok(schema) => return Ok(schema),
        Err(e) => e,
    };
    let state_error = match fq_json::from_str::<State>(text) {
        Ok(state) => return Ok(state.schema().clone()),
        Err(e) => e,
    };
    Err(schema_load(
        schema_error.to_string(),
        state_error.to_string(),
    ))
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument: {what}"))
}

/// The domain argument, or the one inferred from the query's symbols.
fn domain_arg(
    args: &[String],
    i: usize,
    query: &str,
) -> Result<DomainId, Box<dyn std::error::Error>> {
    match args.get(i) {
        Some(name) => Ok(DomainId::parse(name)?),
        None => Ok(DomainId::infer(&parse_formula(query)?)),
    }
}

fn print_rows(vars: &[String], rows: &[Vec<finite_queries::relational::Value>]) {
    println!("{}", vars.join("\t"));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
}

fn cmd_check(args: &[String]) -> CliResult {
    let schema = load_schema(arg(args, 0, "schema.json")?)?;
    let compiled = Executor::default().compile(&schema, arg(args, 1, "query")?)?;
    match compiled.safe_range() {
        Ok(()) => println!("safe-range: the query is domain-independent"),
        Err(e) => println!("NOT safe-range: {e}"),
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> CliResult {
    let state = load_state(arg(args, 0, "state.json")?)?;
    let query = arg(args, 1, "query")?;
    let domain = domain_arg(args, 2, query)?;
    let out = Executor::from_env().execute(&state, query, domain)?;
    match out.completeness {
        Completeness::Decided { value } => println!("{value}"),
        Completeness::Certified => print_rows(&out.vars, &out.rows),
        Completeness::Partial {
            candidates_tried,
            max_candidates,
        } => {
            print_rows(&out.vars, &out.rows);
            println!(
                "-- PARTIAL: budget exhausted after {candidates_tried}/{max_candidates} candidates"
            );
        }
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> CliResult {
    let state = load_state(arg(args, 0, "state.json")?)?;
    let query = arg(args, 1, "query")?;
    let domain = domain_arg(args, 2, query)?;
    let (planned, _) = Executor::default().plan(&state, query, domain)?;
    println!("strategy: {}", planned.plan.strategy());
    println!("why:      {}", planned.plan.justification());
    Ok(())
}

fn cmd_explain(args: &[String]) -> CliResult {
    let (state, source) = load_state_with_source(arg(args, 0, "state.json")?)?;
    let query = arg(args, 1, "query")?;
    let domain = domain_arg(args, 2, query)?;
    let exec = Executor::from_env();
    let snapshot = finite_queries::relational::Snapshot::detached(state);
    let (planned, _) = exec.plan(&snapshot, query, domain)?;
    println!("{}", planned.explain());
    let out = exec.execute_snapshot(&snapshot, query, domain)?;
    println!("---");
    match out.completeness {
        Completeness::Decided { value } => println!("decided:    {value}"),
        Completeness::Certified => {
            println!(
                "answer:     {} tuple(s), certified complete",
                out.rows.len()
            );
            print_rows(&out.vars, &out.rows);
        }
        Completeness::Partial {
            candidates_tried,
            max_candidates,
        } => {
            println!(
                "answer:     {} tuple(s), PARTIAL ({candidates_tried}/{max_candidates} candidates tried)",
                out.rows.len()
            );
            print_rows(&out.vars, &out.rows);
        }
    }
    if !out.operators.is_empty() {
        println!("operators:  (bottom-up: rows produced, morsels processed)");
        for op in &out.operators {
            println!("  {:>6} {:>5}  {}", op.rows, op.morsels, op.op);
        }
    }
    println!(
        "parallel:   {} thread(s) (set FQ_THREADS to pin), morsel size {} row(s)",
        out.stats.threads, out.stats.morsel_rows
    );
    println!(
        "stats:      plan-cache {} ({} hit(s) / {} miss(es)), engine memo {} hit(s) / {} miss(es)",
        if out.stats.plan_cached { "hit" } else { "miss" },
        out.stats.plan_hits,
        out.stats.plan_misses,
        out.stats.engine_hits,
        out.stats.engine_misses
    );
    println!(
        "storage:    {} stored row(s), dictionary {} entr{} ({} string(s))",
        out.stats.stored_rows,
        out.stats.dict_entries,
        if out.stats.dict_entries == 1 {
            "y"
        } else {
            "ies"
        },
        out.stats.dict_strings
    );
    println!(
        "snapshot:   epoch {} of store {}",
        snapshot.epoch(),
        snapshot.store_id()
    );
    for (name, _) in snapshot.schema().relations() {
        println!("  {:>8} row(s) in {}", snapshot.relation_size(name), name);
    }
    println!(
        "source:     {} ({} byte(s) on disk; canonical snapshot {} byte(s))",
        source.format,
        source.bytes,
        relational::format::snapshot_len(snapshot.state())
    );
    println!("fingerprint: {:#034x}", out.stats.state_fingerprint);
    Ok(())
}

fn cmd_safe(args: &[String]) -> CliResult {
    let state = load_state(arg(args, 0, "state.json")?)?;
    let query = arg(args, 1, "query")?;
    let domain = match args.get(2) {
        Some(name) => DomainId::parse(name)?,
        None => DomainId::Nat,
    };
    match Executor::default().relative_safety(&state, query, domain)? {
        Some(finite) => println!(
            "the answer of `{query}` in this state is {} over domain `{}`",
            if finite { "FINITE" } else { "INFINITE" },
            domain.key()
        ),
        None => println!(
            "relative safety over `{}` is undecidable (Theorem 3.3); \
             use `fq eval … traces` for a budgeted partial answer",
            domain.key()
        ),
    }
    Ok(())
}

fn cmd_decide(args: &[String]) -> CliResult {
    let domain = DomainId::parse(arg(args, 0, "domain")?)?;
    let value = Executor::default().decide(domain, arg(args, 1, "sentence")?)?;
    println!("{value}");
    Ok(())
}

fn cmd_traces(args: &[String]) -> CliResult {
    let machine_str = arg(args, 0, "machine-string")?;
    let word = arg(args, 1, "word")?;
    let budget: usize = args
        .get(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000);
    let machine = finite_queries::turing::decode_machine(machine_str)
        .ok_or("the machine string does not decode")?;
    match count_traces(&machine, word, budget) {
        TraceCount::Exactly(n) => {
            println!("machine halts: exactly {n} traces in {word:?}");
            for k in 1..=n {
                println!("  {}", trace_string(&machine, word, k).expect("k ≤ n"));
            }
        }
        TraceCount::AtLeast(n) => {
            println!(
                "machine still running after {budget} steps: at least {n} traces \
                 (showing the first 3)"
            );
            for k in 1..=3 {
                println!("  {}", trace_string(&machine, word, k).expect("running"));
            }
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    use finite_queries::query::{QueryService, Server};
    use finite_queries::relational::SharedState;
    use std::sync::Arc;

    let (state, source) = load_state_with_source(arg(args, 0, "state.json")?)?;
    let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7878");
    let shared = Arc::new(SharedState::new(state));
    let service = QueryService::new(Arc::clone(&shared), Executor::from_env());
    let server = Server::bind(service, addr)?;
    let local = server.local_addr()?;
    println!(
        "fq serve: store {} (epoch {}, {} row(s), loaded from {} {} byte(s)) listening on {local}",
        shared.store_id(),
        shared.epoch(),
        shared.snapshot().size(),
        source.format,
        source.bytes
    );
    println!("protocol: one JSON request per line — cmd query|explain|ingest|snapshot-info");
    server.run()?;
    Ok(())
}

/// Convert a state between the JSON interchange format and the binary
/// columnar snapshot. Direction is inferred from the input's magic
/// bytes: a snapshot converts to JSON, anything else is parsed as JSON
/// and converts to a snapshot.
fn cmd_convert(args: &[String]) -> CliResult {
    let input = arg(args, 0, "input state")?;
    let output = arg(args, 1, "output path")?;
    let (state, source) = load_state_with_source(input)?;
    let (out_format, out_bytes) = if source.format == relational::FORMAT_ID {
        (
            relational::JSON_FORMAT_ID,
            fq_json::to_string(&state).into_bytes(),
        )
    } else {
        (relational::FORMAT_ID, state.snapshot_bytes())
    };
    std::fs::write(output, &out_bytes).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    println!(
        "converted {} ({} byte(s), {}) -> {} ({} byte(s), {}): {} row(s)",
        input,
        source.bytes,
        source.format,
        output,
        out_bytes.len(),
        out_format,
        state.size()
    );
    Ok(())
}

fn cmd_machines(args: &[String]) -> CliResult {
    let n: usize = args.first().map(|s| s.parse()).transpose()?.unwrap_or(10);
    for (i, m) in finite_queries::turing::MachineEnumerator::new()
        .take(n)
        .enumerate()
    {
        println!(
            "M_{i}: {} ({} states, {} transitions)",
            finite_queries::turing::encode_machine(&m),
            m.n_states(),
            m.n_transitions()
        );
    }
    Ok(())
}
