//! # finite-queries
//!
//! Umbrella crate for the reproduction of Stolboushkin & Taitslin,
//! *"Finite Queries Do Not Have Effective Syntax"* (PODS 1995 / Information
//! and Computation 153, 1999).
//!
//! Re-exports the workspace crates under stable names:
//!
//! * [`logic`] — first-order logic kernel (AST, parser, transforms, eval);
//! * [`turing`] — Turing-machine substrate (encoding, execution, traces);
//! * [`domains`] — decidable domains, incl. the paper's trace domain **T**;
//! * [`relational`] — schemas, states, active-domain semantics, algebra;
//! * [`safety`] — the paper's contribution: finitization, effective-syntax
//!   enumerators, relative-safety deciders, and the negative reductions;
//! * [`engine`] — the parallel, memoizing decision engine threaded through
//!   the quantifier eliminations and the Theorem 3.1 dovetail;
//! * [`query`] — the unified compile → plan → execute pipeline with
//!   explain output and engine-backed plan caching.
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the mapping
//! from the paper's theorems to runnable experiments.

pub use fq_core as safety;
pub use fq_domains as domains;
pub use fq_engine as engine;
pub use fq_logic as logic;
pub use fq_query as query;
pub use fq_relational as relational;
pub use fq_turing as turing;
