//! Integration tests mirroring the paper's theorem statements — one test
//! per theorem, exercising the full stack.

use finite_queries::domains::{DecidableTheory, NatSucc, Presburger, TraceDomain};
use finite_queries::logic::parse_formula;
use finite_queries::relational::{translate_to_domain_formula, Schema, State, Value};
use finite_queries::safety::finitize;
use finite_queries::safety::negative::{
    certify_total, refute_candidate_syntax, total_witnesses, ExactRuntimeSyntax,
};
use finite_queries::safety::relative::{
    relative_safety_nat, relative_safety_succ, relative_safety_traces,
};
use finite_queries::safety::safety::SafetyVerdict;
use finite_queries::safety::syntax::{OrderedTraceExtension, SuccessorSyntax};
use finite_queries::turing::builders;

#[test]
fn theorem_2_2_recursive_syntax_for_nat_order() {
    // Finitization of a finite formula ≡ the formula; of an infinite one,
    // not — over several extensions-of-⟨N,<⟩ formulas.
    let finite_cases = ["x < 7", "x = 2 | x = 9", "2 * x = 10", "x + y = 4"];
    let infinite_cases = ["x > 7", "div(2, x, 0)", "x = x", "x = y"];
    for s in finite_cases {
        let phi = parse_formula(s).unwrap();
        assert!(
            Presburger.equivalent(&phi, &finitize(&phi)).unwrap(),
            "{s} should be finite"
        );
    }
    for s in infinite_cases {
        let phi = parse_formula(s).unwrap();
        assert!(
            !Presburger.equivalent(&phi, &finitize(&phi)).unwrap(),
            "{s} should be infinite"
        );
    }
}

#[test]
fn theorem_2_5_relative_safety_decidable_over_nat() {
    let schema = Schema::new().with_relation("R", 1);
    let state = State::new(schema)
        .with_tuple("R", vec![Value::Nat(10)])
        .with_tuple("R", vec![Value::Nat(20)]);
    // Bounded-above query: finite here.
    let below = parse_formula("exists y. R(y) & x < y").unwrap();
    assert!(relative_safety_nat(&state, &below, &["x".to_string()]).unwrap());
    // Bounded-below query: infinite here.
    let above = parse_formula("exists y. R(y) & x > y").unwrap();
    assert!(!relative_safety_nat(&state, &above, &["x".to_string()]).unwrap());
}

#[test]
fn theorems_2_6_and_2_7_successor_domain() {
    // Relative safety is decidable, and the extended-active-domain
    // transform is an effective syntax.
    let schema = Schema::new().with_relation("R", 1);
    let state = State::new(schema.clone()).with_tuple("R", vec![Value::Nat(5)]);

    let fin = parse_formula("exists y. R(y) & x = y'").unwrap();
    assert!(relative_safety_succ(&state, &fin, &["x".to_string()]).unwrap());
    let inf = parse_formula("x != 5").unwrap();
    assert!(!relative_safety_succ(&state, &inf, &["x".to_string()]).unwrap());

    // The transform of the infinite query is finite…
    let syntax = SuccessorSyntax { schema };
    let repaired = syntax.transform(&inf);
    assert!(relative_safety_succ(&state, &repaired, &["x".to_string()]).unwrap());
    // …and the transform of the finite query is equivalent to it.
    let t = syntax.transform(&fin);
    let a = translate_to_domain_formula(&fin, &state);
    let b = translate_to_domain_formula(&t, &state);
    assert!(NatSucc.equivalent(&a, &b).unwrap());
}

#[test]
fn theorem_3_1_reduction_behaves_as_proved() {
    // Soundness: certified ⟹ total (spot-checked by simulation).
    let syntax = ExactRuntimeSyntax;
    if let Some((_, _)) = certify_total(&builders::halter(), &syntax, 40).unwrap() {
        for w in ["", "1", "&&", "1&1&1"] {
            assert!(finite_queries::turing::exec::halts_within(
                &builders::halter(),
                w,
                10
            ));
        }
    } else {
        panic!("the halter must be certified");
    }
    // No false certification of divergent machines.
    assert!(certify_total(&builders::looper(), &syntax, 40)
        .unwrap()
        .is_none());
    // Incompleteness witness exists.
    assert!(refute_candidate_syntax(&syntax, &total_witnesses(), 40)
        .unwrap()
        .is_some());
}

#[test]
fn corollary_3_2_ordered_extension() {
    // The extension has the finitization syntax but refuses to decide.
    let ext = OrderedTraceExtension;
    let phi = parse_formula("P(y, z, x)").unwrap();
    let fin = ext.finitize(&phi);
    assert!(fin.predicate_names().contains("llex"));
    assert!(ext
        .decide(&parse_formula("forall x. x = x").unwrap())
        .is_err());
}

#[test]
fn theorem_3_3_both_directions() {
    // Halting ⟹ finite with exact count; divergence ⟹ budget exhausted.
    let halts = builders::scan_right_halt_on_blank();
    match relative_safety_traces(&halts, "1111", 10_000) {
        SafetyVerdict::Finite(Some(n)) => assert_eq!(n, 5),
        other => panic!("expected finite, got {other:?}"),
    }
    let diverges = builders::reader("111");
    // reader("111") loops on inputs starting with 111 and halts otherwise.
    match relative_safety_traces(&diverges, "111", 10_000) {
        SafetyVerdict::Unknown { .. } => {}
        other => panic!("expected unknown, got {other:?}"),
    }
    match relative_safety_traces(&diverges, "1&1", 10_000) {
        SafetyVerdict::Finite(Some(_)) => {}
        other => panic!("expected finite, got {other:?}"),
    }
}

#[test]
fn corollary_a4_decidability_stress() {
    // A batch of mixed sentences through the Theorem A.3 elimination.
    let decide = |s: &str| TraceDomain.decide(&parse_formula(s).unwrap()).unwrap();
    // Every word has arbitrarily many distinct extensions.
    assert!(decide(
        "forall x. W(x) -> exists y. W(y) & y != x & B(\"\", y)"
    ));
    // No string is both a machine and has a nonempty w-projection.
    assert!(decide("forall x. M(x) -> w(x) = \"\""));
    // There are at least three distinct machines.
    assert!(decide(
        "exists a b d. M(a) & M(b) & M(d) & a != b & a != d & b != d"
    ));
    // Some machine halts instantly everywhere it is asked about (via two
    // concrete words with incompatible prefixes).
    assert!(decide("exists x. E(1, x, \"1\") & E(1, x, \"&\")"));
    // But no machine has exactly one and at least two traces in the same
    // word.
    assert!(!decide("exists x. E(1, x, \"1\") & D(2, x, \"1\")"));
}
