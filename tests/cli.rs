//! Integration tests for the `fq` command-line binary.

use std::process::Command;

fn fq(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fq"))
        .args(args)
        .output()
        .expect("fq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn fathers_json() -> String {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fathers.json");
    std::fs::write(
        &path,
        r#"{
  "schema": { "relations": { "F": 2 }, "constants": [] },
  "relations": { "F": [[{"Nat":1},{"Nat":2}],[{"Nat":1},{"Nat":3}],[{"Nat":2},{"Nat":4}]] },
  "constants": {}
}"#,
    )
    .unwrap();
    path.to_string_lossy().to_string()
}

#[test]
fn check_reports_safe_range() {
    let state = fathers_json();
    let (out, _, ok) = fq(&["check", &state, "exists y z. y != z & F(x,y) & F(x,z)"]);
    assert!(ok);
    assert!(out.contains("safe-range"));
    let (out, _, ok) = fq(&["check", &state, "!F(x, y)"]);
    assert!(ok);
    assert!(out.contains("NOT safe-range"));
}

#[test]
fn eval_prints_answer_table() {
    let state = fathers_json();
    let (out, _, ok) = fq(&["eval", &state, "exists y. F(x, y) & F(y, z)"]);
    assert!(ok);
    assert!(out.contains("x\tz"));
    assert!(out.contains("1\t4"));
}

#[test]
fn safe_distinguishes_domains() {
    let state = fathers_json();
    let (out, _, ok) = fq(&["safe", &state, "!F(x, y)", "eq"]);
    assert!(ok, "{out}");
    assert!(out.contains("INFINITE"));
    let (out, _, ok) = fq(&["safe", &state, "exists y. F(y, x)", "nat"]);
    assert!(ok);
    assert!(out.contains("FINITE"));
}

#[test]
fn decide_runs_every_domain() {
    for (domain, sentence, expect) in [
        ("eq", "forall x y. exists z. z != x & z != y", "true"),
        ("nat", "exists y. forall x. y <= x", "true"),
        ("int", "exists y. forall x. y <= x", "false"),
        ("succ", "forall x. x' != 0", "true"),
        (
            "presburger",
            "forall x. div(2, x, 0) | div(2, x, 1)",
            "true",
        ),
        ("words", "forall x. exists y. llex(x, y)", "true"),
        ("traces", "forall p. T(p) -> M(m(p))", "true"),
    ] {
        let (out, err, ok) = fq(&["decide", domain, sentence]);
        assert!(ok, "domain {domain}: {err}");
        assert_eq!(out.trim(), expect, "domain {domain}");
    }
}

#[test]
fn traces_prints_the_computation() {
    let (out, _, ok) = fq(&["traces", "1&11&11*", "11"]);
    assert!(ok);
    assert!(out.contains("exactly 3 traces"));
    assert!(out.contains("1&11&11*#1#11#"));
}

#[test]
fn traces_reports_divergence() {
    // The looper.
    let (out, _, ok) = fq(&["traces", "1&11&11*1&1&11", "1", "200"]);
    assert!(ok);
    assert!(out.contains("still running"));
}

#[test]
fn machines_lists_the_enumeration() {
    let (out, _, ok) = fq(&["machines", "3"]);
    assert!(ok);
    assert!(out.starts_with("M_0: *"));
    assert_eq!(out.lines().count(), 3);
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, err, ok) = fq(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (_, err, ok) = fq(&["decide", "bogus", "true"]);
    assert!(!ok);
    assert!(err.contains("unknown domain"));
}
