//! Integration tests for the `fq` command-line binary.

use std::process::Command;

fn fq(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fq"))
        .args(args)
        .output()
        .expect("fq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn fathers_json() -> String {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fathers.json");
    std::fs::write(
        &path,
        r#"{
  "schema": { "relations": { "F": 2 }, "constants": [] },
  "relations": { "F": [[{"Nat":1},{"Nat":2}],[{"Nat":1},{"Nat":3}],[{"Nat":2},{"Nat":4}]] },
  "constants": {}
}"#,
    )
    .unwrap();
    path.to_string_lossy().to_string()
}

#[test]
fn check_reports_safe_range() {
    let state = fathers_json();
    let (out, _, ok) = fq(&["check", &state, "exists y z. y != z & F(x,y) & F(x,z)"]);
    assert!(ok);
    assert!(out.contains("safe-range"));
    let (out, _, ok) = fq(&["check", &state, "!F(x, y)"]);
    assert!(ok);
    assert!(out.contains("NOT safe-range"));
}

#[test]
fn eval_prints_answer_table() {
    let state = fathers_json();
    let (out, _, ok) = fq(&["eval", &state, "exists y. F(x, y) & F(y, z)"]);
    assert!(ok);
    assert!(out.contains("x\tz"));
    assert!(out.contains("1\t4"));
}

#[test]
fn safe_distinguishes_domains() {
    let state = fathers_json();
    let (out, _, ok) = fq(&["safe", &state, "!F(x, y)", "eq"]);
    assert!(ok, "{out}");
    assert!(out.contains("INFINITE"));
    let (out, _, ok) = fq(&["safe", &state, "exists y. F(y, x)", "nat"]);
    assert!(ok);
    assert!(out.contains("FINITE"));
}

#[test]
fn decide_runs_every_domain() {
    for (domain, sentence, expect) in [
        ("eq", "forall x y. exists z. z != x & z != y", "true"),
        ("nat", "exists y. forall x. y <= x", "true"),
        ("int", "exists y. forall x. y <= x", "false"),
        ("succ", "forall x. x' != 0", "true"),
        (
            "presburger",
            "forall x. div(2, x, 0) | div(2, x, 1)",
            "true",
        ),
        ("words", "forall x. exists y. llex(x, y)", "true"),
        ("traces", "forall p. T(p) -> M(m(p))", "true"),
    ] {
        let (out, err, ok) = fq(&["decide", domain, sentence]);
        assert!(ok, "domain {domain}: {err}");
        assert_eq!(out.trim(), expect, "domain {domain}");
    }
}

#[test]
fn traces_prints_the_computation() {
    let (out, _, ok) = fq(&["traces", "1&11&11*", "11"]);
    assert!(ok);
    assert!(out.contains("exactly 3 traces"));
    assert!(out.contains("1&11&11*#1#11#"));
}

#[test]
fn traces_reports_divergence() {
    // The looper.
    let (out, _, ok) = fq(&["traces", "1&11&11*1&1&11", "1", "200"]);
    assert!(ok);
    assert!(out.contains("still running"));
}

#[test]
fn machines_lists_the_enumeration() {
    let (out, _, ok) = fq(&["machines", "3"]);
    assert!(ok);
    assert!(out.starts_with("M_0: *"));
    assert_eq!(out.lines().count(), 3);
}

/// The state file shipped in the repo, so the plan/explain tests run
/// against the same data the README walkthrough uses.
fn repo_fathers_json() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/fathers.json").to_string()
}

#[test]
fn plan_prints_a_strategy_per_route() {
    let state = repo_fathers_json();
    for (query, domain, strategy) in [
        ("exists y. F(x, y) & F(y, z)", "eq", "algebra"),
        ("F(x, y) & x < y", "nat", "active-domain"),
        ("!F(x, y)", "nat", "enumerate-and-ask"),
        ("exists x y. F(x, y)", "nat", "qe-decide"),
    ] {
        let (out, err, ok) = fq(&["plan", &state, query, domain]);
        assert!(ok, "{query}: {err}");
        assert!(
            out.contains(&format!("strategy: {strategy}")),
            "{query} should plan as {strategy}, got:\n{out}"
        );
        assert!(
            out.contains("why:"),
            "{query} must justify its plan:\n{out}"
        );
    }
}

#[test]
fn plan_is_deterministic_across_invocations() {
    let state = repo_fathers_json();
    let run = || fq(&["plan", &state, "!F(x, y)", "nat"]).0;
    let first = run();
    assert_eq!(first, run());
    assert_eq!(first, run());
}

#[test]
fn explain_shows_plan_answer_and_stats() {
    let state = repo_fathers_json();
    let (out, err, ok) = fq(&["explain", &state, "exists y. F(x, y) & F(y, z)", "eq"]);
    assert!(ok, "{err}");
    for needle in [
        "strategy:",
        "why:",
        "certified complete",
        "plan-cache",
        "engine memo",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
    // The answer table itself rides along.
    assert!(out.contains("1\t4"));
}

#[test]
fn explain_decides_sentences() {
    let state = repo_fathers_json();
    let (out, _, ok) = fq(&["explain", &state, "exists x y. F(x, y)", "nat"]);
    assert!(ok);
    assert!(out.contains("strategy:   qe-decide"), "{out}");
    assert!(out.contains("decided:    true"), "{out}");
}

#[test]
fn explain_reports_partial_answers_with_budget() {
    let state = repo_fathers_json();
    let (out, _, ok) = fq(&["explain", &state, "!F(x, y)", "nat"]);
    assert!(ok);
    assert!(out.contains("PARTIAL"), "{out}");
    assert!(out.contains("candidates tried"), "{out}");
}

#[test]
fn bad_schema_file_reports_both_parse_failures() {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, r#"{"neither": "schema nor state"}"#).unwrap();
    let path = path.to_string_lossy().to_string();
    let (_, err, ok) = fq(&["check", &path, "F(x, y)"]);
    assert!(!ok, "a bad schema file must fail the command");
    assert!(
        err.contains("neither a schema nor a state"),
        "diagnostic should name the problem: {err}"
    );
    assert!(
        err.contains("as a schema:") && err.contains("as a state:"),
        "diagnostic should report BOTH parse attempts: {err}"
    );
}

#[test]
fn malformed_arity_state_reports_diagnostic_not_panic() {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad-arity.json");
    std::fs::write(
        &path,
        r#"{
  "schema": { "relations": { "F": 2 }, "constants": [] },
  "relations": { "F": [[{"Nat":1},{"Nat":2}],[{"Nat":7}]] },
  "constants": {}
}"#,
    )
    .unwrap();
    let path = path.to_string_lossy().to_string();
    let (_, err, ok) = fq(&["eval", &path, "F(x, y)"]);
    assert!(!ok, "a scheme-violating state must fail the command");
    assert!(
        err.contains("arity mismatch") && err.contains("`F`"),
        "diagnostic should name the violation: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must be a diagnostic, not a panic: {err}"
    );
}

#[test]
fn explain_reports_storage_counters() {
    let state = repo_fathers_json();
    let (out, err, ok) = fq(&["explain", &state, "exists y. F(x, y) & F(y, z)", "eq"]);
    assert!(ok, "{err}");
    assert!(out.contains("storage:"), "{out}");
    assert!(out.contains("3 stored row(s)"), "{out}");
}

#[test]
fn convert_round_trips_and_snapshot_loads_everywhere() {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_in = fathers_json();
    let snap = dir.join("fathers.fqsnap").to_string_lossy().to_string();
    let json_out = dir.join("fathers-back.json").to_string_lossy().to_string();

    // JSON -> snapshot.
    let (out, err, ok) = fq(&["convert", &json_in, &snap]);
    assert!(ok, "{err}");
    assert!(out.contains("fqsnap-v1"), "{out}");
    assert!(out.contains("3 row(s)"), "{out}");
    let bytes = std::fs::read(&snap).unwrap();
    assert!(
        bytes.starts_with(b"FQSNAP\0"),
        "snapshot must lead with magic"
    );

    // Every <state> argument accepts the snapshot directly.
    let (out, err, ok) = fq(&["eval", &snap, "exists y. F(x, y) & F(y, z)"]);
    assert!(ok, "{err}");
    assert!(out.contains("1\t4"), "{out}");
    let (out, err, ok) = fq(&["check", &snap, "exists y z. y != z & F(x,y) & F(x,z)"]);
    assert!(ok, "{err}");
    assert!(out.contains("safe-range"), "{out}");
    let (out, err, ok) = fq(&["explain", &snap, "exists y. F(x, y) & F(y, z)", "eq"]);
    assert!(ok, "{err}");
    assert!(out.contains("source:     fqsnap-v1"), "{out}");
    assert!(out.contains("fingerprint: 0x"), "{out}");

    // Snapshot -> JSON: the interchange form is the canonical compact
    // serialization, byte-identical to serializing the state directly.
    let (out, err, ok) = fq(&["convert", &snap, &json_out]);
    assert!(ok, "{err}");
    assert!(out.contains("-> "), "{out}");
    let (a, err, ok) = fq(&["eval", &json_out, "exists y. F(x, y) & F(y, z)"]);
    assert!(ok, "{err}");
    let (b, _, _) = fq(&["eval", &json_in, "exists y. F(x, y) & F(y, z)"]);
    assert_eq!(a, b, "round-tripped state must answer identically");
}

#[test]
fn convert_diagnoses_future_version() {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_in = fathers_json();
    let snap = dir.join("future.fqsnap").to_string_lossy().to_string();
    let (_, err, ok) = fq(&["convert", &json_in, &snap]);
    assert!(ok, "{err}");
    // Patch the version byte (right after the 7-byte magic) to 99.
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[7] = 99;
    std::fs::write(&snap, &bytes).unwrap();
    let out = dir.join("future-out.json").to_string_lossy().to_string();
    let (_, err, ok) = fq(&["convert", &snap, &out]);
    assert!(!ok, "a future-version snapshot must fail the command");
    assert!(
        err.contains("unsupported snapshot format version 99"),
        "diagnostic should name the version: {err}"
    );
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn convert_diagnoses_truncated_snapshot() {
    let dir = std::env::temp_dir().join("fq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_in = fathers_json();
    let snap = dir.join("trunc.fqsnap").to_string_lossy().to_string();
    let (_, err, ok) = fq(&["convert", &json_in, &snap]);
    assert!(ok, "{err}");
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();
    let out = dir.join("trunc-out.json").to_string_lossy().to_string();
    let (_, err, ok) = fq(&["convert", &snap, &out]);
    assert!(!ok, "a truncated snapshot must fail the command");
    assert!(
        err.contains("corrupt snapshot"),
        "diagnostic should say the snapshot is corrupt: {err}"
    );
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn missing_schema_file_fails_with_path() {
    let (_, err, ok) = fq(&["plan", "/nonexistent/nowhere.json", "F(x, y)"]);
    assert!(!ok);
    assert!(err.contains("nowhere.json"), "{err}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, err, ok) = fq(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (_, err, ok) = fq(&["decide", "bogus", "true"]);
    assert!(!ok);
    assert!(err.contains("unknown domain"));
}
