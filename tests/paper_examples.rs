//! End-to-end tests of the paper's worked examples, spanning all crates.

use finite_queries::domains::{DecidableTheory, NatOrder, Presburger, TraceDomain};
use finite_queries::logic::{bind_constants, parse_formula, Term};
use finite_queries::relational::active_eval::{eval_query, NoOps};
use finite_queries::relational::algebra::compile;
use finite_queries::relational::{is_safe_range, Schema, State, Value};
use finite_queries::safety::answer::answer_query;
use finite_queries::safety::finitize;
use finite_queries::safety::relative::{relative_safety_eq, relative_safety_nat};
use finite_queries::turing::{builders, encode_machine};

fn fathers_state() -> State {
    let schema = Schema::new().with_relation("F", 2);
    State::new(schema)
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
        .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
}

#[test]
fn section_1_fathers_and_sons() {
    let state = fathers_state();
    // "the formula M(x) … results in the unary relation (one-column
    // table) that consists of those x's who have more than one son"
    let m = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
    let ans = eval_query(&state, &NoOps, &m, &["x".to_string()]).unwrap();
    assert_eq!(ans, vec![vec![Value::Nat(1)]]);

    // "While G(x, z) … produces the table of grandfathers/grandsons."
    let g = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
    let ans = eval_query(&state, &NoOps, &g, &["x".to_string(), "z".to_string()]).unwrap();
    assert_eq!(ans, vec![vec![Value::Nat(1), Value::Nat(4)]]);
}

#[test]
fn section_1_unsafe_formulas() {
    let schema = fathers_state().schema().clone();
    // "Obviously, ¬F(x, y) is such a formula."
    let neg = parse_formula("!F(x, y)").unwrap();
    assert!(!is_safe_range(&schema, &neg));
    // "But worse than that, M(x) ∨ G(x, z) may give an infinite answer
    // too, because M(x) does not bound z at all."
    let m_or_g = parse_formula(
        "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))",
    )
    .unwrap();
    assert!(!is_safe_range(&schema, &m_or_g));
    // Footnote 4: infinite answer iff someone parented two or more sons.
    let vars = vec!["x".to_string(), "z".to_string()];
    assert!(!relative_safety_eq(&fathers_state(), &m_or_g, &vars).unwrap());
    let no_double = State::new(schema).with_tuple("F", vec![Value::Nat(1), Value::Nat(2)]);
    assert!(relative_safety_eq(&no_double, &m_or_g, &vars).unwrap());
}

#[test]
fn section_1_1_answering_via_decidability() {
    // The full pipeline: translate state into the query, then
    // enumerate-and-ask against the Presburger decision procedure.
    let state = fathers_state();
    let g = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
    let out = answer_query(
        &NatOrder,
        &state,
        &g,
        &["x".to_string(), "z".to_string()],
        10_000,
    )
    .unwrap();
    assert!(out.is_complete());
    assert_eq!(out.found(), &[vec![1, 4]]);
}

#[test]
fn theorem_2_2_finitization_syntax_end_to_end() {
    // Over the state, an unsafe query's finitization is finite and the
    // equivalence test of Theorem 2.5 distinguishes the two.
    let state = fathers_state();
    let unsafe_q = parse_formula("!F(x, x)").unwrap();
    assert!(!relative_safety_nat(&state, &unsafe_q, &["x".to_string()]).unwrap());
    let translated = finite_queries::relational::translate_to_domain_formula(&unsafe_q, &state);
    let fin = finitize(&translated);
    // The finitization of an infinite query is NOT equivalent to it…
    assert!(!Presburger.equivalent(&translated, &fin).unwrap());
    // …but is itself finite (its own finitization is equivalent).
    assert!(Presburger.equivalent(&fin, &finitize(&fin)).unwrap());
}

#[test]
fn codd_compilation_agrees_with_enumeration() {
    let state = fathers_state();
    let schema = state.schema().clone();
    let q = parse_formula("exists y. F(x, y) & !F(y, x)").unwrap();
    let algebra = compile(&schema, &q).unwrap().eval(&state);
    let calculus = eval_query(&state, &NoOps, &q, &["x".to_string()]).unwrap();
    assert_eq!(algebra.tuples.len(), calculus.len());
}

#[test]
fn theorem_3_1_formula_m_of_x() {
    // "Given a Turing machine M, consider the formula M(x): P(M, c, x).
    // Observe that the formula M(x) is finite iff M is total."
    let scanner = builders::scan_right_halt_on_blank();
    let schema = Schema::new().with_constant("c");
    let state = State::new(schema).with_constant("c", "1111");
    let raw = parse_formula(&format!("P(\"{}\", c, x)", encode_machine(&scanner))).unwrap();
    let q = bind_constants(&raw, &["c".to_string()].into());
    let out = answer_query(&TraceDomain, &state, &q, &["x".to_string()], 100_000).unwrap();
    // scanner halts on "1111" after 4 steps: 5 traces.
    assert!(out.is_complete());
    assert_eq!(out.found().len(), 5);
    // Each answer validates as a trace of the scanner in "1111".
    for t in out.found() {
        assert!(finite_queries::turing::trace::p_predicate(
            &encode_machine(&scanner),
            "1111",
            &t[0]
        ));
    }
}

#[test]
fn decidability_of_the_theory_of_traces_end_to_end() {
    // Corollary A.4 through the public API, mixing P, sorts, functions,
    // and counting predicates.
    let decide = |s: &str| TraceDomain.decide(&parse_formula(s).unwrap()).unwrap();
    assert!(decide("forall x. M(x) | W(x) | T(x) | O(x)"));
    assert!(decide(
        "forall m0 w0. M(m0) & W(w0) -> exists p. P(m0, w0, p)"
    ));
    assert!(decide(
        "forall p q. P(m(p), w(p), q) & T(p) & q = p -> T(q)"
    ));
    assert!(!decide("exists p. T(p) & O(p)"));
}

#[test]
fn fact_2_1_witness_not_domain_independent_but_answerable() {
    // The least-above-active-domain query through the full §1.1 pipeline.
    let state = fathers_state();
    let q = parse_formula(
        "(forall y. (exists p. F(y, p) | F(p, y)) -> y < x) & \
         forall z. z < x -> exists y. (exists p. F(y, p) | F(p, y)) & z <= y",
    )
    .unwrap();
    let out = answer_query(&Presburger, &state, &q, &["x".to_string()], 1000).unwrap();
    assert!(out.is_complete());
    // Active domain is {1,2,3,4}: the witness is 5 — outside it.
    assert_eq!(out.found(), &[vec![5]]);
    let ad = state.active_domain();
    assert!(!ad.contains(&Value::Nat(5)));
}

#[test]
fn term_constructors_round_trip_through_everything() {
    // A sanity pass across crates: build a formula programmatically,
    // print, reparse, decide.
    let f = finite_queries::logic::Formula::exists(
        "x",
        finite_queries::logic::Formula::and([
            finite_queries::logic::Formula::lt(Term::var("x"), Term::Nat(3)),
            finite_queries::logic::Formula::neq(Term::var("x"), Term::Nat(0)),
        ]),
    );
    let reparsed = parse_formula(&f.to_string()).unwrap();
    assert_eq!(f, reparsed);
    assert!(Presburger.decide(&f).unwrap());
}
