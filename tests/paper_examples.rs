//! End-to-end tests of the paper's worked examples, spanning all crates —
//! every answering path routed through the `fq-query` pipeline.

use finite_queries::domains::{DecidableTheory, Presburger};
use finite_queries::logic::{parse_formula, Term};
use finite_queries::query::{Completeness, DomainId, Executor, QueryPlan};
use finite_queries::relational::{Schema, State, Value};
use finite_queries::safety::finitize;
use finite_queries::turing::{builders, encode_machine};

fn fathers_state() -> State {
    let schema = Schema::new().with_relation("F", 2);
    State::new(schema)
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
        .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
}

#[test]
fn section_1_fathers_and_sons() {
    let state = fathers_state();
    let exec = Executor::default();
    // "the formula M(x) … results in the unary relation (one-column
    // table) that consists of those x's who have more than one son"
    let m = "exists y z. y != z & F(x, y) & F(x, z)";
    let out = exec.execute(&state, m, DomainId::Eq).unwrap();
    assert_eq!(out.rows, vec![vec![Value::Nat(1)]]);

    // "While G(x, z) … produces the table of grandfathers/grandsons."
    let g = "exists y. F(x, y) & F(y, z)";
    let out = exec.execute(&state, g, DomainId::Eq).unwrap();
    assert_eq!(out.rows, vec![vec![Value::Nat(1), Value::Nat(4)]]);
}

#[test]
fn section_1_unsafe_formulas() {
    let state = fathers_state();
    let exec = Executor::default();
    // "Obviously, ¬F(x, y) is such a formula."
    let neg = exec.compile(state.schema(), "!F(x, y)").unwrap();
    assert!(neg.safe_range().is_err());
    // "But worse than that, M(x) ∨ G(x, z) may give an infinite answer
    // too, because M(x) does not bound z at all."
    let m_or_g = "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))";
    let compiled = exec.compile(state.schema(), m_or_g).unwrap();
    assert!(compiled.safe_range().is_err());
    // Footnote 4: infinite answer iff someone parented two or more sons.
    assert_eq!(
        exec.relative_safety(&state, m_or_g, DomainId::Eq).unwrap(),
        Some(false)
    );
    let no_double =
        State::new(state.schema().clone()).with_tuple("F", vec![Value::Nat(1), Value::Nat(2)]);
    assert_eq!(
        exec.relative_safety(&no_double, m_or_g, DomainId::Eq)
            .unwrap(),
        Some(true)
    );
}

#[test]
fn section_1_1_answering_via_decidability() {
    // The same grandfather query asked over ⟨N, <⟩: safe-range, so the
    // planner still compiles it to algebra, and the answer is certified
    // complete regardless of the (infinite) underlying domain.
    let state = fathers_state();
    let exec = Executor::default();
    let out = exec
        .execute(&state, "exists y. F(x, y) & F(y, z)", DomainId::Nat)
        .unwrap();
    assert!(out.is_complete());
    assert_eq!(out.rows, vec![vec![Value::Nat(1), Value::Nat(4)]]);
}

#[test]
fn theorem_2_2_finitization_syntax_end_to_end() {
    // Over the state, an unsafe query's finitization is finite and the
    // equivalence test of Theorem 2.5 distinguishes the two.
    let state = fathers_state();
    let exec = Executor::default();
    assert_eq!(
        exec.relative_safety(&state, "!F(x, x)", DomainId::Nat)
            .unwrap(),
        Some(false)
    );
    let compiled = exec.compile(state.schema(), "!F(x, x)").unwrap();
    let translated =
        finite_queries::relational::translate_to_domain_formula(&compiled.query, &state);
    let fin = finitize(&translated);
    // The finitization of an infinite query is NOT equivalent to it…
    assert!(!Presburger.equivalent(&translated, &fin).unwrap());
    // …but is itself finite (its own finitization is equivalent).
    assert!(Presburger.equivalent(&fin, &finitize(&fin)).unwrap());
}

#[test]
fn codd_compilation_agrees_with_enumeration() {
    let state = fathers_state();
    let exec = Executor::default();
    let q = "exists y. F(x, y) & !F(y, x)";
    // The planner compiles the safe-range query to algebra…
    let (planned, _) = exec.plan(&state, q, DomainId::Eq).unwrap();
    let algebra_rows = match &planned.plan {
        QueryPlan::Algebra { expr, .. } => expr.eval(&state).tuples.len(),
        other => panic!("expected an algebra plan, got {}", other.strategy()),
    };
    // …and executing the plan gives the same answer count.
    let out = exec.execute(&state, q, DomainId::Eq).unwrap();
    assert_eq!(algebra_rows, out.rows.len());
}

#[test]
fn theorem_3_1_formula_m_of_x() {
    // "Given a Turing machine M, consider the formula M(x): P(M, c, x).
    // Observe that the formula M(x) is finite iff M is total."
    let scanner = builders::scan_right_halt_on_blank();
    let schema = Schema::new().with_constant("c");
    let state = State::new(schema).with_constant("c", "1111");
    let src = format!("P(\"{}\", c, x)", encode_machine(&scanner));
    let exec = Executor::default().with_max_candidates(100_000);
    let out = exec.execute(&state, &src, DomainId::Traces).unwrap();
    // The totality query is not safe-range: enumerate-and-ask it is.
    assert_eq!(out.plan.strategy(), "enumerate-and-ask");
    // scanner halts on "1111" after 4 steps: 5 traces.
    assert!(out.is_complete());
    assert_eq!(out.rows.len(), 5);
    // Each answer validates as a trace of the scanner in "1111".
    for t in &out.rows {
        let Value::Str(trace) = &t[0] else {
            panic!("trace answers are strings")
        };
        assert!(finite_queries::turing::trace::p_predicate(
            &encode_machine(&scanner),
            "1111",
            trace
        ));
    }
}

#[test]
fn decidability_of_the_theory_of_traces_end_to_end() {
    // Corollary A.4 through the public API, mixing P, sorts, functions,
    // and counting predicates.
    let exec = Executor::default();
    let decide = |s: &str| exec.decide(DomainId::Traces, s).unwrap();
    assert!(decide("forall x. M(x) | W(x) | T(x) | O(x)"));
    assert!(decide(
        "forall m0 w0. M(m0) & W(w0) -> exists p. P(m0, w0, p)"
    ));
    assert!(decide(
        "forall p q. P(m(p), w(p), q) & T(p) & q = p -> T(q)"
    ));
    assert!(!decide("exists p. T(p) & O(p)"));
}

#[test]
fn fact_2_1_witness_not_domain_independent_but_answerable() {
    // The least-above-active-domain query through the full §1.1 pipeline:
    // not safe-range, certified finite by the precheck, answered complete.
    let state = fathers_state();
    let exec = Executor::default();
    let q = "(forall y. (exists p. F(y, p) | F(p, y)) -> y < x) & \
             forall z. z < x -> exists y. (exists p. F(y, p) | F(p, y)) & z <= y";
    let out = exec.execute(&state, q, DomainId::Presburger).unwrap();
    assert_eq!(out.plan.strategy(), "enumerate-and-ask");
    assert!(out.is_complete());
    // Active domain is {1,2,3,4}: the witness is 5 — outside it.
    assert_eq!(out.rows, vec![vec![Value::Nat(5)]]);
    let ad = state.active_domain();
    assert!(!ad.contains(&Value::Nat(5)));
}

#[test]
fn budget_exhaustion_is_reported_honestly() {
    // An unsafe query over ⟨N, <⟩ must exhaust the candidate budget,
    // report exactly how many candidates were tried, and keep the
    // partial tuples found along the way.
    let state = fathers_state();
    let exec = Executor::default().with_max_candidates(60);
    let out = exec.execute(&state, "!F(x, y)", DomainId::Nat).unwrap();
    assert_eq!(out.plan.strategy(), "enumerate-and-ask");
    match out.completeness {
        Completeness::Partial {
            candidates_tried,
            max_candidates,
        } => {
            assert_eq!(max_candidates, 60);
            assert_eq!(
                candidates_tried, max_candidates,
                "the whole budget must be spent before giving up"
            );
        }
        other => panic!("expected a partial answer, got {other:?}"),
    }
    assert!(
        !out.rows.is_empty(),
        "tuples found before exhaustion are part of the partial answer"
    );
}

#[test]
fn term_constructors_round_trip_through_everything() {
    // A sanity pass across crates: build a formula programmatically,
    // print, reparse, decide through the pipeline.
    let f = finite_queries::logic::Formula::exists(
        "x",
        finite_queries::logic::Formula::and([
            finite_queries::logic::Formula::lt(Term::var("x"), Term::Nat(3)),
            finite_queries::logic::Formula::neq(Term::var("x"), Term::Nat(0)),
        ]),
    );
    let reparsed = parse_formula(&f.to_string()).unwrap();
    assert_eq!(f, reparsed);
    let exec = Executor::default();
    assert!(exec.decide(DomainId::Presburger, &f.to_string()).unwrap());
}
