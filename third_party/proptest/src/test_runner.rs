//! Deterministic test execution: config, RNG, runner, and failure type.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Deterministic: seeded from the test
/// name, so every run of a given test sees the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed test case (produced by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs a test body over `config.cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: String,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            seed,
            name: name.to_string(),
        }
    }

    /// Run `body` for every case; panic (failing the `#[test]`) on the
    /// first rejected case, reporting the case index and seed.
    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            // Each case gets an independent stream so a failure report
            // identifies exactly one replayable input.
            let mut rng = TestRng::seed(self.seed.wrapping_add(u64::from(case)));
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest `{}` failed at case {}/{} (seed {:#x}):\n{}",
                    self.name, case, self.config.cases, self.seed, e
                );
            }
        }
    }
}
