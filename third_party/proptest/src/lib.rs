//! Offline drop-in subset of the `proptest` crate.
//!
//! The workspace vendors this implementation so that builds never need
//! the crates.io registry. It keeps proptest's *API shape* — the
//! `Strategy` trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, `Just`, `prop_oneof!`, `any::<T>()`, range and
//! tuple strategies, `collection::{vec, btree_set}`, regex-literal
//! string strategies, and the `proptest!` / `prop_assert*` macros — but
//! only *generates* random values; there is no shrinking. A failing
//! case panics with its seed and case number so it can be replayed by
//! rerunning the (deterministic) test.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; duplicates collapse, so the set may
    /// be smaller than the drawn length.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate ordered sets of values from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait and `any::<T>()`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical strategy covering their whole range.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy generating any value of a primitive type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Choose uniformly among several strategies with the same value type.
///
/// Weighted arms (`w => strat`) are accepted and honoured.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(let $pat =
                        $crate::strategy::Strategy::new_value(&$strat, __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn union_and_map_generate() {
        let strat = prop_oneof![Just(1u64), Just(2u64), 5u64..9].prop_map(|n| n * 10);
        let mut rng = TestRng::seed(7);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v == 10 || v == 20 || (50..90).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    let _ = n;
                    1
                }
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seed(11);
        for _ in 0..200 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 4, "tree too deep: {t:?}");
        }
    }

    #[test]
    fn regex_literal_strategies() {
        let mut rng = TestRng::seed(3);
        for _ in 0..200 {
            let s = "[1&*#]{0,12}".new_value(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| "1&*#".contains(c)), "s = {s:?}");
            let t = "[a-c\\-]{2,3}".new_value(&mut rng);
            assert!((2..=3).contains(&t.chars().count()));
            assert!(t.chars().all(|c| "abc-".contains(c)), "t = {t:?}");
            let u = ".{0,5}".new_value(&mut rng);
            assert!(u.chars().count() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(x < 50);
            prop_assert!(a < 4);
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u64..5, 2..6),
            s in crate::collection::btree_set(0u64..100, 0..10),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let mut a = TestRng::seed(99);
        let mut b = TestRng::seed(99);
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }
}
