//! The [`Strategy`] trait and its combinators (generate-only).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into the recursive case.
    /// `depth` bounds the nesting; the size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix in the leaf at every level so generated values span
            // all depths up to the bound rather than always nesting
            // `depth` times.
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erase into a cheaply clonable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, R> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn new_value(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection-size specification: an exact length or a half-open /
/// inclusive range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

// ---------------------------------------------------------------------
// Regex-literal string strategies: `"[1&*#]{0,12}" as Strategy<String>`.
// ---------------------------------------------------------------------

/// One repeatable unit of the supported regex subset.
#[derive(Clone, Debug)]
enum PatternAtom {
    /// `.` — any printable character (mostly ASCII, occasionally wider).
    AnyChar,
    /// `[...]` — one of an explicit set of characters.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

#[derive(Clone, Debug)]
struct PatternPiece {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

/// Parse the subset of regex syntax the workspace's tests use: literal
/// characters, `.`, character classes with ranges and `\`-escapes, and
/// `{n}` / `{m,n}` repetition.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => PatternAtom::AnyChar,
            '[' => {
                let mut set = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"));
                    match c {
                        ']' => break,
                        '\\' => set.push(
                            chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                        ),
                        _ if chars.peek() == Some(&'-') => {
                            // Possible range `a-z`; a trailing `-` before
                            // `]` is a literal.
                            let mut look = chars.clone();
                            look.next(); // consume '-'
                            match look.peek() {
                                Some(&']') | None => set.push(c),
                                Some(&hi) => {
                                    chars.next();
                                    chars.next();
                                    for v in (c as u32)..=(hi as u32) {
                                        if let Some(ch) = char::from_u32(v) {
                                            set.push(ch);
                                        }
                                    }
                                }
                            }
                        }
                        _ => set.push(c),
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                PatternAtom::Class(set)
            }
            '\\' => PatternAtom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
            ),
            _ => PatternAtom::Literal(c),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                    hi.parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                ),
                None => {
                    let n = spec
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat bounds in {pattern:?}");
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

/// Printable pool for `.`: all of printable ASCII plus a few multibyte
/// characters so parser robustness tests see non-ASCII input too.
fn any_char(rng: &mut TestRng) -> char {
    const EXTRA: [char; 8] = ['é', 'λ', '∀', '→', '日', '🙂', '\u{00A0}', 'ß'];
    if rng.gen_bool(0.05) {
        EXTRA[rng.gen_range(0..EXTRA.len())]
    } else {
        char::from_u32(rng.gen_range(0x20u32..0x7f)).expect("printable ascii")
    }
}

impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                match &piece.atom {
                    PatternAtom::AnyChar => out.push(any_char(rng)),
                    PatternAtom::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                    PatternAtom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        self.as_str().new_value(rng)
    }
}
