//! Offline drop-in subset of the `criterion` crate.
//!
//! The workspace vendors this implementation so benchmarks build and
//! run without the crates.io registry. It keeps criterion's API shape
//! for the surface the repo uses — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — and performs honest wall-clock
//! measurement (warm-up, calibration, fixed sample count, min/mean/max
//! report), but none of criterion's statistical analysis or plotting.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, id, f);
        self
    }
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.config.warm_up_time = dur;
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.config.measurement_time = dur;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.config, &full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&self.config, &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up, pick an iteration count that fits
    /// the measurement window, then record `sample_size` samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_up_start = Instant::now();
        let mut iters: u64 = 1;
        let mut per_iter_secs;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            per_iter_secs = dt.as_secs_f64() / iters as f64;
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
            if dt < Duration::from_millis(2) {
                iters = iters.saturating_mul(2);
            }
        }
        let sample_target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = if per_iter_secs > 0.0 {
            ((sample_target / per_iter_secs).ceil() as u64).clamp(1, u64::MAX)
        } else {
            iters.max(1)
        };
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples
                .push(dt.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }
}

fn run_one<F>(config: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        sample_size: config.sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<60} (no measurement)");
        return;
    }
    let min = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples.iter().cloned().fold(0.0f64, f64::max);
    let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
    println!(
        "{id:<60} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Group benchmark target functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let config = Criterion::default()
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(50))
            .sample_size(5);
        let mut c = config;
        let mut group = c.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_is_sensible() {
        assert_eq!(format_ns(12.0), "12.00 ns");
        assert_eq!(format_ns(1_500.0), "1.500 µs");
        assert_eq!(format_ns(2_000_000.0), "2.000 ms");
    }
}
