//! Offline drop-in subset of the `rand` crate.
//!
//! The workspace vendors this tiny implementation so that builds never
//! need the crates.io registry. Only the surface actually used by the
//! repo is provided: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng`] with `gen_range` over integer ranges, `gen_bool`, and
//! `gen` for a few primitive types.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets — so
//! streams are deterministic, well distributed, and cheap.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = SplitMix64 { state };
        for chunk in bytes.chunks_mut(8) {
            let v = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits give a uniform float in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }

    /// Sample a value of a primitive type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable over their whole range.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
