//! Pipeline benches: the compile → plan stage of `fq-query` on a
//! repeated-query workload, cold (fresh executor, every plan computed
//! from scratch — including the relative-safety quantifier-elimination
//! precheck) versus warm (shared executor, plans served from the
//! `query.plan` engine cache). Emits `BENCH_pipeline.json`; the headline
//! row requires the warm path to be strictly faster than the cold one.

use criterion::{criterion_group, BenchmarkId, Criterion};
use fq_bench::report::{ExperimentReport, ExperimentResult};
use fq_engine::Engine;
use fq_query::{DomainId, Executor};
use fq_relational::{Schema, State, Value};
use std::time::Instant;

/// Candidate budget for the enumerate-and-ask queries.
const BUDGET: usize = 200;

fn workload_state() -> State {
    let schema = Schema::new().with_relation("F", 2);
    let mut state = State::new(schema);
    // A small branching father–son state. Deliberately paper-scale: the
    // enumerate-and-ask precheck runs quantifier elimination over the
    // state translation, whose cost grows steeply with the fact count —
    // which is exactly why caching the plan (precheck included) pays.
    for (a, b) in [(1u64, 2u64), (1, 3), (2, 4), (4, 5)] {
        state.insert("F", vec![Value::Nat(a), Value::Nat(b)]);
    }
    state
}

/// One query per strategy, so the cache benefit covers every plan shape.
fn workload_queries() -> Vec<(&'static str, DomainId)> {
    vec![
        ("exists y. F(x, y) & F(y, z)", DomainId::Eq),
        ("exists y z. y != z & F(x, y) & F(x, z)", DomainId::Eq),
        ("F(x, y) & x < y", DomainId::Nat),
        ("!F(x, y)", DomainId::Nat),
        ("exists x y. F(x, y)", DomainId::Nat),
    ]
}

fn fresh_executor() -> Executor {
    Executor::new(Engine::sequential()).with_max_candidates(BUDGET)
}

/// Plan every query in the workload once.
fn plan_pass(exec: &Executor, state: &State, queries: &[(&str, DomainId)]) {
    for (src, domain) in queries {
        exec.plan(state, src, *domain).unwrap();
    }
}

/// Execute every query in the workload once.
fn execute_pass(exec: &Executor, state: &State, queries: &[(&str, DomainId)]) {
    for (src, domain) in queries {
        exec.execute(state, src, *domain).unwrap();
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("PIPE_plan_cache");
    group.sample_size(10);
    let state = workload_state();
    let queries = workload_queries();

    group.bench_with_input(BenchmarkId::new("plan", "cold"), &state, |b, s| {
        b.iter(|| {
            // A fresh executor per pass: every plan is recomputed, the
            // enumerate-and-ask precheck runs its QE from scratch.
            let exec = fresh_executor();
            plan_pass(&exec, s, &queries);
        })
    });

    group.bench_with_input(BenchmarkId::new("plan", "warm"), &state, |b, s| {
        let exec = fresh_executor();
        plan_pass(&exec, s, &queries); // prime the plan cache
        b.iter(|| plan_pass(&exec, s, &queries))
    });

    group.finish();
}

/// Median wall-clock over `samples` runs.
fn median(samples: usize, mut run: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn emit_report() {
    let state = workload_state();
    let queries = workload_queries();
    let samples = 9;

    let plan_cold = median(samples, || {
        let exec = fresh_executor();
        plan_pass(&exec, &state, &queries);
    });

    let warm_exec = fresh_executor();
    plan_pass(&warm_exec, &state, &queries); // prime the plan cache
    let plan_warm = median(samples, || plan_pass(&warm_exec, &state, &queries));

    // Full execute pass on the warm executor, for context: how much of an
    // end-to-end answer the (cached) planning stage accounts for.
    let exec_warm = median(3, || execute_pass(&warm_exec, &state, &queries));

    let reference = "fq-query compile → plan → execute pipeline".to_string();
    let mut report = ExperimentReport::default();
    report.results.push(ExperimentResult {
        id: "PIPE_plan_cache/plan_cold".to_string(),
        reference: reference.clone(),
        claim: format!(
            "plan {} queries (one per strategy), fresh executor: every plan computed",
            queries.len()
        ),
        observed: format!("median {plan_cold} µs over {samples} runs"),
        pass: true,
        millis: plan_cold / 1000,
    });
    report.results.push(ExperimentResult {
        id: "PIPE_plan_cache/plan_warm".to_string(),
        reference: reference.clone(),
        claim: "same workload, shared executor: plans served from query.plan cache".to_string(),
        observed: format!("median {plan_warm} µs over {samples} runs"),
        pass: true,
        millis: plan_warm / 1000,
    });
    report.results.push(ExperimentResult {
        id: "PIPE_plan_cache/speedup".to_string(),
        reference: reference.clone(),
        claim: "warm plan-cache pass is strictly faster than cold".to_string(),
        observed: format!("{:.2}x (cold {plan_cold} µs / warm {plan_warm} µs)", {
            plan_cold as f64 / plan_warm.max(1) as f64
        }),
        pass: plan_warm < plan_cold,
        millis: 0,
    });
    report.results.push(ExperimentResult {
        id: "PIPE_plan_cache/execute_warm".to_string(),
        reference,
        claim: format!(
            "full execute pass, warm plans, budget {BUDGET}: \
             execution cost on top of cached planning"
        ),
        observed: format!("median {exec_warm} µs over 3 runs"),
        pass: true,
        millis: exec_warm / 1000,
    });

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json ({} rows)", report.results.len());
    println!("{}", report.to_markdown());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_pipeline
}

fn main() {
    benches();
    emit_report();
}
