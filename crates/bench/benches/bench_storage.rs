//! Storage benches: the bulk ingestion path against the single-row
//! `insert` path, on the string-heavy trace-database workload (domain
//! **T** — the "databases of computational experiments" application the
//! paper's conclusion names). Emitted to `BENCH_storage.json`:
//!
//! * **bulk vs per-row load** — `StateBuilder` (one interning pass +
//!   one sort-dedupe-merge per relation) against a `State::insert` loop
//!   (binary search + `splice`, O(n) per row) at 10⁴–10⁶ rows. The
//!   per-row path is quadratic, so at 10⁶ rows it runs under a
//!   deadline: if it cannot finish within 20× the bulk time, the
//!   recorded speedup is a lower bound. The headline row requires
//!   ≥ 5x at 10⁶ rows — the asymptotic gap is far larger, but the
//!   threshold leaves margin for shared-host timing variance (the
//!   observed ratio has ranged 8–14x across otherwise identical runs).
//! * **cold JSON load** — `fq_json::from_str::<State>` on the
//!   serialized 10⁵-row state (the `FromJson` → `StateBuilder` route
//!   every `fq --state file.json` invocation takes).
//! * **dictionary growth** — interning must be canonical: the
//!   dictionary holds exactly one entry per distinct string of the
//!   corpus, independent of duplication in the arrival stream.
//! * **hash-join throughput on interned string keys** — `Run ⋈ Looping`
//!   (single-column string key, the bare-`u64` fast path) and
//!   `Run ⋈ Halted` (two-column key) through the physical executor,
//!   checked against the naive backend at the small size.

use criterion::{criterion_group, BenchmarkId, Criterion};
use fq_bench::report::{ExperimentReport, ExperimentResult};
use fq_bench::workloads::{trace_db_rows, trace_db_schema, trace_db_state};
use fq_relational::algebra::AlgebraExpr;
use fq_relational::physical::PhysicalPlan;
use fq_relational::state::Tuple;
use fq_relational::StateBuilder;
use fq_relational::{State, Value};
use std::collections::HashSet;
use std::time::{Duration, Instant};

fn base(name: &str, attrs: &[&str]) -> AlgebraExpr {
    AlgebraExpr::Base {
        name: name.into(),
        attrs: attrs.iter().map(|a| a.to_string()).collect(),
    }
}

/// Load through the per-row path, stopping at `deadline`. Returns the
/// elapsed time, the number of workload rows consumed, and the state
/// (complete only if `rows consumed == rows.len()`).
fn per_row_load(rows: &[(&'static str, Tuple)], deadline: Duration) -> (Duration, usize, State) {
    let mut state = State::new(trace_db_schema());
    let start = Instant::now();
    let mut done = 0usize;
    for (rel, t) in rows {
        state.insert_ref(rel, t);
        done += 1;
        if done.is_multiple_of(4096) && start.elapsed() > deadline {
            break;
        }
    }
    (start.elapsed(), done, state)
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("STO_load");
    group.sample_size(10);
    let rows = trace_db_rows(5_000, 42);
    group.bench_with_input(BenchmarkId::new("trace_db_5000", "bulk"), &rows, |b, r| {
        b.iter(|| trace_db_state(r))
    });
    group.bench_with_input(
        BenchmarkId::new("trace_db_5000", "per_row"),
        &rows,
        |b, r| {
            b.iter(|| {
                let mut state = State::new(trace_db_schema());
                for (rel, t) in r {
                    state.insert_ref(rel, t);
                }
                state
            })
        },
    );
    group.finish();
}

fn emit_report() {
    let mut report = ExperimentReport::default();
    let reference = "fq-relational bulk ingestion (StateBuilder / extend_from_sorted)".to_string();
    let mut large_state: Option<State> = None;

    // --- Bulk vs per-row load at 10⁴, 10⁵, 10⁶ rows. ------------------
    for (n, headline) in [(10_000usize, false), (100_000, false), (1_000_000, true)] {
        let gen_start = Instant::now();
        let rows = trace_db_rows(n, 42);
        eprintln!(
            "[bench_storage] generated {n} rows in {} ms",
            gen_start.elapsed().as_millis()
        );
        let start = Instant::now();
        let mut builder = StateBuilder::new(trace_db_schema());
        for (rel, t) in &rows {
            builder.row_ref(rel, t);
        }
        let staged = start.elapsed();
        let bulk_state = builder.finish();
        let bulk = start.elapsed();
        eprintln!(
            "[bench_storage] {n}: staging (validate + intern) {} ms, \
             finish (sort + merge) {} ms",
            staged.as_millis(),
            (bulk - staged).as_millis()
        );
        let stored = bulk_state.size();
        let krows_s = stored as f64 / bulk.as_secs_f64() / 1_000.0;
        report.results.push(ExperimentResult {
            id: format!("STO_load/bulk_{n}"),
            reference: reference.clone(),
            claim: format!(
                "bulk-load {n} string tuples (trace-database workload) in one \
                 interning + sort-dedupe-merge pass"
            ),
            observed: format!(
                "{} µs for {stored} stored rows ({krows_s:.0}k rows/s)",
                bulk.as_micros()
            ),
            pass: stored > 0,
            millis: bulk.as_millis(),
        });

        // Per-row: full run at the small sizes (equality-checked), a
        // 20×-bulk deadline at the headline size (speedup lower bound).
        let deadline = if headline {
            20 * bulk.max(Duration::from_millis(50))
        } else {
            Duration::from_secs(600)
        };
        eprintln!(
            "[bench_storage] bulk-loaded {n} rows in {} ms; starting per-row run \
             (deadline {} s)",
            bulk.as_millis(),
            deadline.as_secs()
        );
        let (elapsed, done, per_row_state) = per_row_load(&rows, deadline);
        let finished = done == rows.len();
        eprintln!(
            "[bench_storage] per-row run: {done}/{n} rows in {} ms",
            elapsed.as_millis()
        );
        if finished {
            assert_eq!(per_row_state, bulk_state, "bulk and per-row loads differ");
            eprintln!("[bench_storage] per-row ≡ bulk state equality checked");
        }
        let observed = if finished {
            format!("{} µs for the same {n} rows", elapsed.as_micros())
        } else {
            format!(
                "deadline after {} µs with {done}/{n} rows ingested \
                 (quadratic splice path)",
                elapsed.as_micros()
            )
        };
        report.results.push(ExperimentResult {
            id: format!("STO_load/insert_{n}"),
            reference: reference.clone(),
            claim: format!("per-row insert loop over the same {n}-row arrival order"),
            observed,
            pass: true,
            millis: elapsed.as_millis(),
        });
        let speedup = elapsed.as_secs_f64() / bulk.as_secs_f64().max(1e-9);
        report.results.push(ExperimentResult {
            id: format!("STO_load/speedup_{n}"),
            reference: reference.clone(),
            claim: if headline {
                "bulk load of the 10⁶-row string-heavy trace state is ≥ 5x \
                 faster than the per-row insert path"
                    .to_string()
            } else {
                "bulk load is not slower than the per-row path".to_string()
            },
            observed: format!(
                "{}{speedup:.1}x (bulk {} µs vs per-row {} µs{})",
                if finished { "" } else { "≥ " },
                bulk.as_micros(),
                elapsed.as_micros(),
                if finished { "" } else { ", deadline-capped" },
            ),
            pass: if headline {
                speedup >= 5.0
            } else {
                speedup >= 1.0
            },
            millis: 0,
        });

        // Dictionary growth: canonical interning stores each distinct
        // string exactly once, however duplicated the arrival stream.
        let distinct: HashSet<&str> = rows
            .iter()
            .flat_map(|(_, t)| t.iter())
            .map(|v| match v {
                Value::Str(s) => s.as_str(),
                Value::Nat(_) => unreachable!("trace workload is all strings"),
            })
            .collect();
        report.results.push(ExperimentResult {
            id: format!("STO_dict/growth_{n}"),
            reference: reference.clone(),
            claim: "the dictionary interns exactly the distinct strings of the corpus".to_string(),
            observed: format!(
                "{} interned strings for {} distinct among {} arriving values",
                bulk_state.dict().strings(),
                distinct.len(),
                rows.iter().map(|(_, t)| t.len()).sum::<usize>()
            ),
            pass: bulk_state.dict().strings() == distinct.len(),
            millis: 0,
        });

        if headline {
            large_state = Some(bulk_state);
        } else if n == 100_000 {
            // --- Cold JSON load (the CLI's `--state file.json` route).
            let t0 = Instant::now();
            let json = fq_json::to_string(&bulk_state);
            eprintln!(
                "[bench_storage] serialized {} bytes in {} ms",
                json.len(),
                t0.elapsed().as_millis()
            );
            let start = Instant::now();
            let reloaded: State = fq_json::from_str(&json).expect("state reparses");
            let cold = start.elapsed();
            eprintln!("[bench_storage] parsed in {} ms", cold.as_millis());
            assert_eq!(reloaded, bulk_state, "JSON round-trip changed the state");
            eprintln!("[bench_storage] round-trip equality checked");
            let mbs = json.len() as f64 / cold.as_secs_f64() / 1e6;
            report.results.push(ExperimentResult {
                id: "STO_cold/json_100000".to_string(),
                reference: reference.clone(),
                claim: "cold JSON load of the 10⁵-row state routes through the \
                        batch path and round-trips"
                    .to_string(),
                observed: format!(
                    "{} µs for {} bytes ({mbs:.0} MB/s, parse + intern + merge)",
                    cold.as_micros(),
                    json.len()
                ),
                pass: true,
                millis: cold.as_millis(),
            });
        }
    }

    // --- Parallel finish: per-relation merges on the worker pool. -----
    // Staging is identical across configurations; only `finish` varies.
    // Every thread count is equality-checked against the sequential
    // finish before timing, and thread counts are encoded in the row
    // ids so `bench_gate` compares like-for-like.
    {
        use fq_engine::{Engine, EngineConfig};
        let n = 200_000;
        let rows = trace_db_rows(n, 42);
        let stage = || {
            let mut b = StateBuilder::new(trace_db_schema());
            for (rel, t) in &rows {
                b.row_ref(rel, t);
            }
            b
        };
        let sequential = stage().finish();
        let host_cores = fq_engine::available_threads();
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            assert_eq!(
                stage().finish_with(&engine),
                sequential,
                "parallel finish drift at {threads} threads"
            );
            let mut times: Vec<u128> = (0..3)
                .map(|_| {
                    let b = stage();
                    let start = Instant::now();
                    b.finish_with(&engine);
                    start.elapsed().as_micros()
                })
                .collect();
            times.sort_unstable();
            let t = times[times.len() / 2];
            report.results.push(ExperimentResult {
                id: format!("STO_parallel/finish_{threads}"),
                reference: reference.clone(),
                claim: format!(
                    "StateBuilder::finish_with at {threads} thread(s) over the \
                     {n}-row trace workload equals the sequential finish"
                ),
                observed: format!("{t} µs (median of 3, host has {host_cores} core(s))"),
                pass: true,
                millis: t / 1000,
            });
        }
    }

    // --- Hash-join throughput on interned string keys. ----------------
    let single_key = AlgebraExpr::Join(
        Box::new(base("Run", &["m", "w", "p"])),
        Box::new(base("Looping", &["m"])),
    );
    let double_key = AlgebraExpr::Join(
        Box::new(base("Run", &["m", "w", "p"])),
        Box::new(base("Halted", &["m", "w"])),
    );
    // Correctness vs the naive backend at a size it can handle.
    let check = Instant::now();
    let small = trace_db_state(&trace_db_rows(10_000, 42));
    for expr in [&single_key, &double_key] {
        assert_eq!(
            expr.eval(&small),
            PhysicalPlan::compile(expr).execute(&small),
            "physical ≠ naive on the trace workload"
        );
    }
    eprintln!(
        "[bench_storage] join correctness check: {} ms",
        check.elapsed().as_millis()
    );
    let large = large_state.expect("headline size ran");
    for (id, expr, what) in [
        (
            "STO_join/string_key_1col",
            &single_key,
            "Run(m,w,p) ⋈ Looping(m): single-column string key, bare-u64 fast path",
        ),
        (
            "STO_join/string_key_2col",
            &double_key,
            "Run(m,w,p) ⋈ Halted(m,w): two-column string key",
        ),
    ] {
        let plan = PhysicalPlan::compile(expr);
        let start = Instant::now();
        let out = plan.execute(&large);
        let t = start.elapsed();
        let probed = large.relation_size("Run");
        let krows_s = probed as f64 / t.as_secs_f64() / 1_000.0;
        report.results.push(ExperimentResult {
            id: id.to_string(),
            reference: reference.clone(),
            claim: format!("{what} over the 10⁶-row state"),
            observed: format!(
                "{} µs probing {probed} rows → {} result rows ({krows_s:.0}k probes/s)",
                t.as_micros(),
                out.tuples.len()
            ),
            pass: !out.tuples.is_empty(),
            millis: t.as_millis(),
        });
    }

    // --- Binary snapshot: write, cold load, time-to-first-query. ------
    // The snapshot is raw columns + dictionary; loading is bounds-checked
    // bulk reads with no re-interning or re-sorting, so cold load runs at
    // I/O speed where JSON is parse-bound. The headline row requires the
    // 10⁶-row snapshot cold load to beat the JSON cold load ≥ 5x.
    {
        let first_query = PhysicalPlan::compile(&single_key);
        fn snapshot_rows(
            report: &mut ExperimentReport,
            reference: &str,
            first_query: &PhysicalPlan,
            state: &State,
            n: usize,
        ) -> Duration {
            let start = Instant::now();
            let bytes = state.snapshot_bytes();
            let write = start.elapsed();
            assert_eq!(
                bytes.len(),
                fq_relational::format::snapshot_len(state),
                "advertised snapshot size drifted from the writer"
            );
            report.results.push(ExperimentResult {
                id: format!("STO_snap/write_{n}"),
                reference: reference.to_string(),
                claim: format!("serialize the {n}-row trace state to the binary snapshot"),
                observed: format!(
                    "{} µs for {} bytes ({:.0} MB/s)",
                    write.as_micros(),
                    bytes.len(),
                    bytes.len() as f64 / write.as_secs_f64() / 1e6
                ),
                pass: true,
                millis: write.as_millis(),
            });
            let start = Instant::now();
            let loaded = State::read_snapshot(&bytes).expect("snapshot reloads");
            let cold = start.elapsed();
            assert_eq!(&loaded, state, "snapshot round-trip changed the state");
            report.results.push(ExperimentResult {
                id: format!("STO_snap/cold_{n}"),
                reference: reference.to_string(),
                claim: format!(
                    "cold snapshot load of the {n}-row state: bounds-checked \
                     bulk reads, no re-interning or re-sorting"
                ),
                observed: format!(
                    "{} µs for {} bytes ({:.0} MB/s)",
                    cold.as_micros(),
                    bytes.len(),
                    bytes.len() as f64 / cold.as_secs_f64() / 1e6
                ),
                pass: true,
                millis: cold.as_millis(),
            });
            // Time-to-first-query: snapshot bytes in memory → first
            // answer out of the physical executor.
            let start = Instant::now();
            let served = State::read_snapshot(&bytes).expect("snapshot reloads");
            let out = first_query.execute(&served);
            let ttfq = start.elapsed();
            report.results.push(ExperimentResult {
                id: format!("STO_snap/ttfq_{n}"),
                reference: reference.to_string(),
                claim: format!(
                    "time-to-first-query over the {n}-row snapshot: load + \
                     Run ⋈ Looping through the physical executor"
                ),
                observed: format!(
                    "{} µs to the first {}-row answer",
                    ttfq.as_micros(),
                    out.tuples.len()
                ),
                pass: !out.tuples.is_empty(),
                millis: ttfq.as_millis(),
            });
            cold
        }

        let t0 = Instant::now();
        let small = trace_db_state(&trace_db_rows(100_000, 42));
        eprintln!(
            "[bench_storage] rebuilt the 10⁵-row state in {} ms",
            t0.elapsed().as_millis()
        );
        snapshot_rows(&mut report, &reference, &first_query, &small, 100_000);
        drop(small);
        let cold_snap = snapshot_rows(&mut report, &reference, &first_query, &large, 1_000_000);

        // JSON cold load at the headline size, for the speedup row.
        let json = fq_json::to_string(&large);
        let start = Instant::now();
        let reparsed: State = fq_json::from_str(&json).expect("state reparses");
        let cold_json = start.elapsed();
        assert_eq!(reparsed, large, "JSON round-trip changed the state");
        drop(reparsed);
        report.results.push(ExperimentResult {
            id: "STO_cold/json_1000000".to_string(),
            reference: reference.clone(),
            claim: "cold JSON load of the 10⁶-row state (parse + intern + merge)".to_string(),
            observed: format!(
                "{} µs for {} bytes ({:.0} MB/s)",
                cold_json.as_micros(),
                json.len(),
                json.len() as f64 / cold_json.as_secs_f64() / 1e6
            ),
            pass: true,
            millis: cold_json.as_millis(),
        });
        let speedup = cold_json.as_secs_f64() / cold_snap.as_secs_f64().max(1e-9);
        report.results.push(ExperimentResult {
            id: "STO_snap/speedup_1000000".to_string(),
            reference: reference.clone(),
            claim: "cold load of the 10⁶-row trace state from the binary \
                    snapshot is ≥ 5x faster than from JSON"
                .to_string(),
            observed: format!(
                "{speedup:.1}x (snapshot {} µs vs JSON {} µs)",
                cold_snap.as_micros(),
                cold_json.as_micros()
            ),
            pass: speedup >= 5.0,
            millis: 0,
        });

        // The 10⁷-row size takes minutes to *generate*; opt in with
        // FQ_BENCH_HUGE=1 (the gate skips the row when absent).
        if std::env::var_os("FQ_BENCH_HUGE").is_some() {
            let t0 = Instant::now();
            let huge = trace_db_state(&trace_db_rows(10_000_000, 42));
            eprintln!(
                "[bench_storage] built the 10⁷-row state in {} ms",
                t0.elapsed().as_millis()
            );
            snapshot_rows(&mut report, &reference, &first_query, &huge, 10_000_000);
        } else {
            eprintln!("[bench_storage] skipping the 10⁷-row snapshot rows (set FQ_BENCH_HUGE=1)");
        }
    }

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    std::fs::write(path, &json).expect("write BENCH_storage.json");
    println!("wrote BENCH_storage.json ({} rows)", report.results.len());
    println!("{}", report.to_markdown());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_storage
}

fn main() {
    benches();
    emit_report();
}
