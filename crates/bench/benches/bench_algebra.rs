//! Algebra benches: the optimized relational executor against the naive
//! `AlgebraExpr::eval` backend. Three experiments, emitted to
//! `BENCH_algebra.json`:
//!
//! * **join scaling** — a three-way chain join at growing state sizes;
//!   the naive backend's nested-loop join is O(n²) per join, the
//!   physical executor's hash join is O(n). The headline row requires a
//!   ≥ 5x median speedup.
//! * **morsel thread sweep** — the same chain join executed
//!   morsel-driven at 1/2/4/8 threads, asserted bit-identical to the
//!   sequential path in-bench; the scaling row checks the ≥ 2.5x
//!   4-thread target only on hosts that actually have ≥ 4 cores.
//! * **pushdown on/off** — a constant select over the chain join,
//!   executed physically with and without the logical rewriter; the
//!   rewriter sinks the select to the base scan, collapsing every
//!   intermediate cardinality. Checked on operator row counts
//!   (deterministic), timed for context.
//! * **slot-compiled vs string-env evaluation** — the active-domain
//!   evaluator with pre-resolved frame slots (sequential and engine-
//!   parallel) against the string-keyed environment evaluator.

use criterion::{criterion_group, BenchmarkId, Criterion};
use fq_bench::report::{ExperimentReport, ExperimentResult};
use fq_engine::{Engine, EngineConfig};
use fq_logic::parse_formula;
use fq_relational::active_eval::{eval_query, eval_query_with, NoOps};
use fq_relational::algebra::{AlgebraExpr, Condition};
use fq_relational::optimize::optimize;
use fq_relational::physical::PhysicalPlan;
use fq_relational::{Schema, State, Value};
use std::time::Instant;

/// A chain state: A, B, C each hold the successor pairs (i, i+1) for
/// i < n, so A(x,y) ⋈ B(y,z) ⋈ C(z,w) walks three steps of the chain.
fn chain_state(n: u64) -> State {
    let schema = Schema::new()
        .with_relation("A", 2)
        .with_relation("B", 2)
        .with_relation("C", 2);
    let mut state = State::new(schema);
    for i in 0..n {
        for rel in ["A", "B", "C"] {
            state.insert(rel, vec![Value::Nat(i), Value::Nat(i + 1)]);
        }
    }
    state
}

fn base(name: &str, attrs: [&str; 2]) -> AlgebraExpr {
    AlgebraExpr::Base {
        name: name.into(),
        attrs: attrs.iter().map(|a| a.to_string()).collect(),
    }
}

/// A(x,y) ⋈ B(y,z) ⋈ C(z,w) — each join shares exactly one attribute.
fn chain_join() -> AlgebraExpr {
    AlgebraExpr::Join(
        Box::new(AlgebraExpr::Join(
            Box::new(base("A", ["x", "y"])),
            Box::new(base("B", ["y", "z"])),
        )),
        Box::new(base("C", ["z", "w"])),
    )
}

/// σ_{x=0}(A ⋈ B ⋈ C) — the select belongs on the A scan.
fn selective_chain() -> AlgebraExpr {
    AlgebraExpr::Select(
        Box::new(chain_join()),
        Condition::EqConst("x".into(), Value::Nat(0)),
    )
}

/// Median wall-clock over `samples` runs, in microseconds.
fn median(samples: usize, mut run: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("ALG_join");
    group.sample_size(10);
    let state = chain_state(64);
    let expr = chain_join();
    let plan = PhysicalPlan::compile(&expr);

    group.bench_with_input(
        BenchmarkId::new("chain_join_64", "naive"),
        &state,
        |b, s| b.iter(|| expr.eval(s)),
    );
    group.bench_with_input(BenchmarkId::new("chain_join_64", "hash"), &state, |b, s| {
        b.iter(|| plan.execute(s))
    });
    group.finish();
}

fn emit_report() {
    let mut report = ExperimentReport::default();
    let reference = "fq-relational optimize + physical executor".to_string();
    let samples = 5;

    // --- Join scaling: naive nested-loop vs physical hash join. -------
    let expr = chain_join();
    let plan = PhysicalPlan::compile(&expr);
    let mut speedups = Vec::new();
    let mut detail = Vec::new();
    for n in [800u64, 1600, 3200] {
        let state = chain_state(n);
        let rows = expr.eval(&state).tuples.len();
        assert_eq!(plan.execute(&state).tuples.len(), rows, "executors differ");
        let naive = median(samples, || {
            expr.eval(&state);
        });
        let hash = median(samples, || {
            plan.execute(&state);
        });
        let speedup = naive as f64 / hash.max(1) as f64;
        speedups.push(speedup);
        detail.push(format!("n={n}: {naive} µs / {hash} µs = {speedup:.1}x"));
        report.results.push(ExperimentResult {
            id: format!("ALG_join/chain_{n}"),
            reference: reference.clone(),
            claim: format!(
                "A ⋈ B ⋈ C over {n}-row chains ({rows} result rows): \
                 hash join beats the nested-loop backend"
            ),
            observed: format!(
                "naive {naive} µs, hash {hash} µs ({speedup:.1}x, median of {samples})"
            ),
            pass: hash < naive,
            millis: (naive + hash) / 1000,
        });
    }
    speedups.sort_by(|a, b| a.total_cmp(b));
    let median_speedup = speedups[speedups.len() / 2];
    report.results.push(ExperimentResult {
        id: "ALG_join/speedup".to_string(),
        reference: reference.clone(),
        claim: "median join-scaling speedup of the hash join is ≥ 5x".to_string(),
        observed: format!("median {median_speedup:.1}x [{}]", detail.join("; ")),
        pass: median_speedup >= 5.0,
        millis: 0,
    });

    // --- Morsel-driven thread sweep on the chain join. ----------------
    // Every configuration is asserted bit-identical to the sequential
    // path in-bench before timing; thread counts are encoded in the row
    // ids so `bench_gate` compares like-for-like against the committed
    // baselines.
    {
        use fq_relational::physical::ExecOpts;
        let n = 6000;
        let state = chain_state(n);
        let plan = PhysicalPlan::compile(&chain_join());
        let baseline = plan.execute(&state);
        let host_cores = fq_engine::available_threads();
        let opts = ExecOpts { morsel_rows: 1024 };
        let mut medians = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let out = plan.execute_with_stats_on(&state, &engine, opts);
            assert_eq!(
                out.relation, baseline,
                "parallel drift at {threads} threads"
            );
            let t = median(samples, || {
                plan.execute_with_stats_on(&state, &engine, opts);
            });
            medians.push((threads, t));
            report.results.push(ExperimentResult {
                id: format!("ALG_parallel/threads_{threads}"),
                reference: reference.clone(),
                claim: format!(
                    "morsel-driven chain join over {n}-row chains at {threads} \
                     thread(s) is bit-identical to the sequential executor"
                ),
                observed: format!(
                    "{t} µs (median of {samples}, morsel {} rows, host has \
                     {host_cores} core(s))",
                    opts.morsel_rows
                ),
                pass: true,
                millis: t / 1000,
            });
        }
        let t1 = medians[0].1;
        let t4 = medians[2].1;
        let speedup4 = t1 as f64 / t4.max(1) as f64;
        report.results.push(ExperimentResult {
            id: "ALG_parallel/scaling".to_string(),
            reference: reference.clone(),
            claim: "4-thread chain join is ≥ 2.5x the 1-thread configuration \
                    (only checkable on hosts with ≥ 4 cores; single-core hosts \
                     record the honest numbers and pass vacuously)"
                .to_string(),
            observed: format!(
                "1t {t1} µs → 4t {t4} µs ({speedup4:.2}x) on a {host_cores}-core host \
                 [{}]",
                medians
                    .iter()
                    .map(|(th, t)| format!("{th}t: {t} µs"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            pass: host_cores < 4 || speedup4 >= 2.5,
            millis: 0,
        });
    }

    // --- Pushdown on/off: operator cardinalities + wall clock. --------
    let state = chain_state(200);
    let sel = selective_chain();
    let raw_plan = PhysicalPlan::compile(&sel);
    let opt = optimize(&sel, &state);
    let opt_plan = PhysicalPlan::compile(&opt.expr);
    let raw_report = raw_plan.execute_with_stats(&state);
    let opt_report = opt_plan.execute_with_stats(&state);
    assert_eq!(
        raw_report.relation, opt_report.relation,
        "rewrite changed the answer"
    );
    let raw_rows: usize = raw_report.operators.iter().map(|o| o.rows).sum();
    let opt_rows: usize = opt_report.operators.iter().map(|o| o.rows).sum();
    let raw_time = median(samples, || {
        raw_plan.execute(&state);
    });
    let opt_time = median(samples, || {
        opt_plan.execute(&state);
    });
    report.results.push(ExperimentResult {
        id: "ALG_pushdown/rows".to_string(),
        reference: reference.clone(),
        claim: "σ_{x=0}(A ⋈ B ⋈ C): pushing the select below the joins \
                collapses every intermediate cardinality"
            .to_string(),
        observed: format!(
            "total operator rows {raw_rows} without rewriting, {opt_rows} with \
             ({} rewrite(s): {})",
            opt.rewrites.len(),
            opt.rewrites.join(" | ")
        ),
        pass: opt_rows < raw_rows,
        millis: 0,
    });
    report.results.push(ExperimentResult {
        id: "ALG_pushdown/time".to_string(),
        reference: reference.clone(),
        claim: "the pushdown also wins on wall clock".to_string(),
        observed: format!(
            "{raw_time} µs without, {opt_time} µs with ({:.1}x, median of {samples})",
            raw_time as f64 / opt_time.max(1) as f64
        ),
        pass: opt_time <= raw_time,
        millis: (raw_time + opt_time) / 1000,
    });

    // --- Slot-compiled vs string-env active-domain evaluation. --------
    let state = chain_state(48);
    let query = parse_formula("exists y. (A(x, y) & B(y, z))").expect("parses");
    let vars: Vec<String> = ["x", "z"].iter().map(|s| s.to_string()).collect();
    let expected = eval_query(&state, &NoOps, &query, &vars).expect("evaluates");
    let seq = Engine::sequential();
    let par = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    for engine in [&seq, &par] {
        let got = eval_query_with(&state, &NoOps, &query, &vars, engine).expect("evaluates");
        assert_eq!(
            expected,
            got,
            "slot evaluator diverged at {} thread(s)",
            engine.threads()
        );
    }
    let string_env = median(samples, || {
        eval_query(&state, &NoOps, &query, &vars).unwrap();
    });
    let slot_seq = median(samples, || {
        eval_query_with(&state, &NoOps, &query, &vars, &seq).unwrap();
    });
    let slot_par = median(samples, || {
        eval_query_with(&state, &NoOps, &query, &vars, &par).unwrap();
    });
    report.results.push(ExperimentResult {
        id: "ALG_slots/sequential".to_string(),
        reference: reference.clone(),
        claim: "slot-compiled frames beat the string-keyed environment \
                on ∃y. A(x,y) ∧ B(y,z) over a 49-element active domain"
            .to_string(),
        observed: format!(
            "string-env {string_env} µs, slots {slot_seq} µs ({:.1}x, median of {samples})",
            string_env as f64 / slot_seq.max(1) as f64
        ),
        pass: slot_seq <= string_env,
        millis: (string_env + slot_seq) / 1000,
    });
    report.results.push(ExperimentResult {
        id: "ALG_slots/parallel".to_string(),
        reference,
        claim: "fanning the outermost free variable across 4 engine \
                threads keeps the same answer (order included)"
            .to_string(),
        observed: format!(
            "1 thread {slot_seq} µs, 4 threads {slot_par} µs ({:.1}x, median of {samples})",
            slot_seq as f64 / slot_par.max(1) as f64
        ),
        pass: true,
        millis: (slot_seq + slot_par) / 1000,
    });

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_algebra.json");
    std::fs::write(path, &json).expect("write BENCH_algebra.json");
    println!("wrote BENCH_algebra.json ({} rows)", report.results.len());
    println!("{}", report.to_markdown());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_algebra
}

fn main() {
    benches();
    emit_report();
}
