//! Engine benches: the parallel, memoizing decision engine against the
//! sequential baseline, on the two QE workloads of EXPERIMENTS.md —
//! `presburger_sentence` (Cooper elimination) and `trace_qe_sentence`
//! (Theorem A.3 elimination). Emits `BENCH_engine.json` comparing
//! threads ∈ {1, N} × cache {off, on}.

use criterion::{criterion_group, BenchmarkId, Criterion};
use fq_bench::report::{ExperimentReport, ExperimentResult};
use fq_bench::workloads;
use fq_domains::{DecidableTheory, Presburger, TraceDomain};
use fq_engine::{available_threads, Engine, EngineConfig};
use fq_logic::Formula;
use std::time::Instant;

const CACHE: usize = 1 << 16;

fn engine_for(threads: usize, cached: bool) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity: if cached { CACHE } else { 0 },
    })
}

fn bench_presburger_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ENG_presburger");
    let sentence = workloads::presburger_sentence(3, 7);
    for (label, threads, cached) in configurations() {
        group.bench_with_input(
            BenchmarkId::new("decide", label),
            &sentence,
            |b, s: &Formula| {
                b.iter(|| {
                    // A fresh engine per iteration: measures the cold path,
                    // so the cache column reflects within-call sharing.
                    let engine = engine_for(threads, cached);
                    Presburger.decide_with(s, &engine).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_trace_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ENG_trace_qe");
    group.sample_size(10);
    let sentence = workloads::trace_qe_sentence(2);
    for (label, threads, cached) in configurations() {
        group.bench_with_input(
            BenchmarkId::new("decide", label),
            &sentence,
            |b, s: &Formula| {
                b.iter(|| {
                    let engine = engine_for(threads, cached);
                    TraceDomain.decide_with(s, &engine).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn configurations() -> Vec<(String, usize, bool)> {
    // On a single-core host the fan-out config still runs with two
    // workers, so the parallel code path is exercised (the speedup row
    // only claims a win when ≥ 2 hardware threads exist).
    let n = available_threads().max(2);
    vec![
        ("t1_nocache".to_string(), 1, false),
        ("t1_cache".to_string(), 1, true),
        (format!("t{n}_nocache"), n, false),
        (format!("t{n}_cache"), n, true),
    ]
}

/// Median wall-clock over `samples` cold runs (fresh engine each run).
fn median_cold(samples: usize, mut run: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Time one decision per configuration and append the rows to the report.
fn report_workload(
    report: &mut ExperimentReport,
    id_prefix: &str,
    claim: &str,
    sentence: &Formula,
    decide: impl Fn(&Formula, &Engine) -> bool,
    samples: usize,
) {
    let n = available_threads();
    let mut micros = Vec::new();
    for (label, threads, cached) in configurations() {
        let t = median_cold(samples, || {
            let engine = engine_for(threads, cached);
            decide(sentence, &engine);
        });
        micros.push((label, t));
    }
    let seq = micros[0].1.max(1);
    let best = micros.iter().map(|(_, t)| *t).min().unwrap_or(seq);
    let speedup = seq as f64 / best.max(1) as f64;
    for (label, t) in &micros {
        report.results.push(ExperimentResult {
            id: format!("{id_prefix}/{label}"),
            reference: "Theorem A.3 / Cooper QE engine".to_string(),
            claim: claim.to_string(),
            observed: format!("median {t} µs over {samples} cold runs"),
            pass: true,
            millis: t / 1000,
        });
    }
    report.results.push(ExperimentResult {
        id: format!("{id_prefix}/speedup"),
        reference: "Theorem A.3 / Cooper QE engine".to_string(),
        claim: "parallel+cached engine is no slower than sequential".to_string(),
        observed: format!(
            "best config {:.2}x vs t1_nocache ({n} hardware threads)",
            speedup
        ),
        pass: n < 2 || speedup >= 1.0,
        millis: 0,
    });
}

fn emit_report() {
    let mut report = ExperimentReport::default();
    let presburger = workloads::presburger_sentence(3, 7);
    report_workload(
        &mut report,
        "ENG_presburger",
        "Cooper elimination through the engine matches the sequential answer",
        &presburger,
        |s, e| Presburger.decide_with(s, e).unwrap(),
        9,
    );
    let trace = workloads::trace_qe_sentence(2);
    report_workload(
        &mut report,
        "ENG_trace_qe",
        "Theorem A.3 elimination through the engine matches the sequential answer",
        &trace,
        |s, e| TraceDomain.decide_with(s, e).unwrap(),
        5,
    );
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json ({} rows)", report.results.len());
    println!("{}", report.to_markdown());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_presburger_engine, bench_trace_engine
}

fn main() {
    benches();
    emit_report();
}
