//! E01/E02 benches: active-domain evaluation and the Section 1.1
//! enumerate-and-ask algorithm, scaling over the state size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fq_bench::workloads;
use fq_core::answer_query;
use fq_domains::NatOrder;
use fq_relational::active_eval::{eval_query, NoOps};

fn bench_active_domain_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("E01_active_domain_eval");
    let queries = workloads::genealogy_queries();
    for edges in [10usize, 30, 100] {
        let state = workloads::genealogy_state(edges as u64 * 2, edges, 42);
        group.bench_with_input(BenchmarkId::new("M_query", edges), &state, |b, st| {
            b.iter(|| eval_query(st, &NoOps, &queries[0].1, &["x".to_string()]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("G_query", edges), &state, |b, st| {
            b.iter(|| {
                eval_query(
                    st,
                    &NoOps,
                    &queries[1].1,
                    &["x".to_string(), "z".to_string()],
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_enumerate_and_ask(c: &mut Criterion) {
    let mut group = c.benchmark_group("E02_enumerate_and_ask");
    group.sample_size(10);
    let queries = workloads::genealogy_queries();
    for edges in [5usize, 10, 20] {
        let state = workloads::genealogy_state(edges as u64 * 2, edges, 42);
        group.bench_with_input(BenchmarkId::new("M_query", edges), &state, |b, st| {
            b.iter(|| {
                answer_query(&NatOrder, st, &queries[0].1, &["x".to_string()], 10_000).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_safe_range_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("codd_compilation");
    let queries = workloads::genealogy_queries();
    let state = workloads::genealogy_state(60, 40, 42);
    let schema = state.schema().clone();
    let expr = fq_relational::algebra::compile(&schema, &queries[1].1).unwrap();
    group.bench_function("compile_G", |b| {
        b.iter(|| fq_relational::algebra::compile(&schema, &queries[1].1).unwrap())
    });
    group.bench_function("eval_algebra_G", |b| b.iter(|| expr.eval(&state)));
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep full-workspace bench runs bounded: short warm-up and
    // measurement windows, 10 samples per benchmark.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_active_domain_eval,
    bench_enumerate_and_ask,
    bench_safe_range_compile
}
criterion_main!(benches);
