//! Serve benches: `fq serve` under concurrent mixed traffic on the
//! 10⁶-row trace database (domain **T**, the paper conclusion's
//! "databases of computational experiments"). Emitted to
//! `BENCH_serve.json`:
//!
//! * **shared-cache contention** — N threads hammer one executor's
//!   *warm* plan cache and memo shards over a pinned snapshot. The
//!   sharded read path must not serialize: the aggregate throughput at
//!   4 threads may not collapse below the single-thread figure (on a
//!   multi-core host it should exceed it; the committed baseline is
//!   from a 1-core host, where equal throughput is the best possible).
//! * **mixed serve workload** — a real `Server` on a loopback socket,
//!   N client threads each running a fixed request schedule of 70%
//!   `query`, 10% `explain`, 20% `ingest` against the 10⁶-row store.
//!   Reports sustained QPS and per-request p50/p99 latency; thread
//!   counts are encoded in the row ids so `bench_gate` compares
//!   like-for-like.
//!
//! Every response is checked for `ok: true`, and the final epoch must
//! equal the number of published batches — a concurrency smoke on top
//! of the `prop_serve` isolation properties.

use criterion::{criterion_group, Criterion};
use fq_bench::report::{ExperimentReport, ExperimentResult};
use fq_engine::{Engine, EngineConfig};
use fq_query::{Client, DomainId, Executor, QueryService, Server};
use fq_relational::{SharedState, Value};
use std::sync::Arc;
use std::time::Instant;

use fq_bench::workloads::{trace_db_rows, trace_db_state};

/// Cheap, selective queries for the read side of the mix: `Looping` is
/// machine-keyed (small), the `Halted` projection dedupes a scan down
/// to the machine zoo.
const Q_SMALL: &str = "Looping(m)";
const Q_PROJECT: &str = "exists w. Halted(m, w)";

fn percentile(sorted_micros: &[u128], p: usize) -> u128 {
    let idx = (sorted_micros.len() * p / 100).min(sorted_micros.len() - 1);
    sorted_micros[idx]
}

/// A batch of `Run` rows no other request sends, so every ingest
/// publishes a fresh epoch.
fn fresh_batch(tag: &str, round: usize) -> Vec<Vec<Value>> {
    (0..3)
        .map(|i| {
            vec![
                Value::Str(format!("bench-machine-{tag}")),
                Value::Str(format!("word-{tag}-{round}")),
                Value::Str(format!("trace-{tag}-{round}-{i}")),
            ]
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let state = trace_db_state(&trace_db_rows(10_000, 42));
    let service = QueryService::new(
        Arc::new(SharedState::new(state)),
        Executor::new(Engine::sequential()),
    );
    let mut group = c.benchmark_group("SRV_handle");
    group.sample_size(10);
    group.bench_function("query_small", |b| {
        let req = r#"{"cmd": "query", "query": "Looping(m)", "domain": "eq"}"#;
        b.iter(|| service.handle_line(req))
    });
    group.bench_function("snapshot_info", |b| {
        let req = r#"{"cmd": "snapshot-info"}"#;
        b.iter(|| service.handle_line(req))
    });
    group.finish();
}

fn emit_report() {
    let mut report = ExperimentReport::default();
    let reference = "fq serve: snapshot-isolated concurrent query service".to_string();
    let host_cores = fq_engine::available_threads();

    let gen_start = Instant::now();
    let rows = trace_db_rows(1_000_000, 42);
    let state = trace_db_state(&rows);
    let stored = state.size();
    eprintln!(
        "[bench_serve] built the {stored}-row trace store in {} ms",
        gen_start.elapsed().as_millis()
    );

    // --- Shared-cache contention: warm reads must not serialize. ------
    // One executor, one pinned snapshot; every thread re-runs the same
    // two queries, so after the first pass everything is a plan-cache
    // and memo hit. Ids encode the thread count for `bench_gate`.
    let shared = Arc::new(SharedState::new(state));
    {
        let exec = Executor::new(Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        }));
        let snapshot = shared.snapshot();
        for q in [Q_SMALL, Q_PROJECT] {
            exec.execute_snapshot(&snapshot, q, DomainId::Eq)
                .expect("warmup");
        }
        const OPS: usize = 150;
        let mut single_ops_s = 0.0;
        for threads in [1usize, 4] {
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let exec = exec.clone();
                    let snapshot = snapshot.clone();
                    scope.spawn(move || {
                        for i in 0..OPS {
                            let q = if i % 2 == 0 { Q_SMALL } else { Q_PROJECT };
                            let out = exec
                                .execute_snapshot(&snapshot, q, DomainId::Eq)
                                .expect("warm read");
                            assert!(out.stats.plan_cached, "warm read missed the plan cache");
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let ops_s = (threads * OPS) as f64 / elapsed.as_secs_f64();
            if threads == 1 {
                single_ops_s = ops_s;
            }
            // On a 1-core host perfect sharing still only matches the
            // single-thread aggregate; a serializing lock would *also*
            // match it, but would collapse on multi-core — the margin
            // (≥ 0.5×) catches gross convoying on either host shape.
            let floor = 0.5 * single_ops_s;
            report.results.push(ExperimentResult {
                id: format!("SRV_cache/warm_reads_{threads}"),
                reference: reference.clone(),
                claim: format!(
                    "{threads} thread(s) of warm plan-cache + memo reads on one \
                     shared executor do not serialize"
                ),
                observed: format!(
                    "{ops_s:.0} ops/s aggregate over {} reads ({} µs, host has \
                     {host_cores} core(s))",
                    threads * OPS,
                    elapsed.as_micros()
                ),
                pass: ops_s >= floor,
                millis: elapsed.as_millis(),
            });
        }
        let (hits, misses) = exec.plan_cache_stats();
        eprintln!("[bench_serve] contention pass: plan cache {hits} hits / {misses} misses");
    }

    // --- Mixed serve workload over a real loopback socket. ------------
    let service = QueryService::new(Arc::clone(&shared), Executor::new(Engine::sequential()));
    let addr = Server::bind(service, "127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    eprintln!("[bench_serve] server listening on {addr}");

    const REQUESTS: usize = 200;
    let mut published = 0u64;
    for threads in [1usize, 4] {
        let start = Instant::now();
        let per_thread: Vec<Vec<u128>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let tag = format!("{threads}x{t}");
                        let mut lat = Vec::with_capacity(REQUESTS);
                        for i in 0..REQUESTS {
                            let t0 = Instant::now();
                            let resp = match i % 10 {
                                0..=6 => {
                                    let q = if i % 2 == 0 { Q_SMALL } else { Q_PROJECT };
                                    client.query(q, Some("eq")).expect("query")
                                }
                                7 => client.explain(Q_SMALL, Some("eq")).expect("explain"),
                                _ => client.ingest("Run", &fresh_batch(&tag, i)).expect("ingest"),
                            };
                            lat.push(t0.elapsed().as_micros());
                            assert_eq!(
                                resp.get("ok").and_then(|v| v.as_bool()),
                                Some(true),
                                "request {i} failed: {}",
                                resp.to_compact()
                            );
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        let elapsed = start.elapsed();
        // Every ingest batch is unique, so each one published an epoch.
        published += (threads * REQUESTS.div_ceil(10) * 2) as u64;

        let mut lat: Vec<u128> = per_thread.into_iter().flatten().collect();
        lat.sort_unstable();
        let total = lat.len();
        let qps = total as f64 / elapsed.as_secs_f64();
        let (p50, p99) = (percentile(&lat, 50), percentile(&lat, 99));
        report.results.push(ExperimentResult {
            id: format!("SRV_mixed/threads_{threads}"),
            reference: reference.clone(),
            claim: format!(
                "{threads} client thread(s) of mixed query/explain/ingest \
                 traffic sustained against the 10⁶-row trace store"
            ),
            observed: format!(
                "{qps:.0} req/s over {total} requests ({} µs wall, host has \
                 {host_cores} core(s))",
                elapsed.as_micros()
            ),
            pass: qps > 0.0,
            millis: elapsed.as_millis(),
        });
        report.results.push(ExperimentResult {
            id: format!("SRV_latency/p50_threads_{threads}"),
            reference: reference.clone(),
            claim: format!("median request latency at {threads} client thread(s)"),
            observed: format!("p50 {p50} µs, p99 {p99} µs"),
            pass: true,
            millis: p50 / 1000,
        });
        report.results.push(ExperimentResult {
            id: format!("SRV_latency/p99_threads_{threads}"),
            reference: reference.clone(),
            claim: format!("tail request latency at {threads} client thread(s)"),
            observed: format!("p99 {p99} µs"),
            pass: true,
            millis: p99 / 1000,
        });
        eprintln!("[bench_serve] {threads} thread(s): {qps:.0} req/s, p50 {p50} µs, p99 {p99} µs");
    }

    // --- Epoch accounting across both sweeps. -------------------------
    let epoch = shared.epoch();
    report.results.push(ExperimentResult {
        id: "SRV_epochs/published".to_string(),
        reference: reference.clone(),
        claim: "every unique ingest batch published exactly one epoch".to_string(),
        observed: format!("epoch {epoch} after {published} unique batches"),
        pass: epoch == published,
        millis: 0,
    });

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} rows)", report.results.len());
    println!("{}", report.to_markdown());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_serve
}

fn main() {
    benches();
    emit_report();
}
