//! E05/E07/E08 benches: the decision procedures of Section 2 —
//! Cooper's Presburger elimination, the ⟨ℕ,′⟩ elimination, and the
//! Theorem 2.5 relative-safety equivalence check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fq_bench::workloads;
use fq_core::finitize;
use fq_core::relative::relative_safety_nat;
use fq_domains::{DecidableTheory, NatSucc, Presburger};
use fq_logic::parse_formula;

fn bench_cooper(c: &mut Criterion) {
    let mut group = c.benchmark_group("E05_cooper_elimination");
    for depth in [1usize, 2, 3] {
        let sentence = workloads::presburger_sentence(depth, 7);
        group.bench_with_input(
            BenchmarkId::new("alternation_depth", depth),
            &sentence,
            |b, s| b.iter(|| Presburger.decide(s).unwrap()),
        );
    }
    // The Theorem 2.2 core check: φ ≡ finitize(φ).
    let phi = parse_formula("x < 40 | x = 100").unwrap();
    group.bench_function("finitization_equivalence", |b| {
        b.iter(|| Presburger.equivalent(&phi, &finitize(&phi)).unwrap())
    });
    group.finish();
}

fn bench_relative_safety_nat(c: &mut Criterion) {
    let mut group = c.benchmark_group("E07_relative_safety_nat");
    group.sample_size(10);
    for edges in [4usize, 8, 12] {
        let state = workloads::genealogy_state(edges as u64 * 2, edges, 5);
        let q = parse_formula("exists y. F(y, x)").unwrap();
        group.bench_with_input(BenchmarkId::new("state_size", edges), &state, |b, st| {
            b.iter(|| relative_safety_nat(st, &q, &["x".to_string()]).unwrap())
        });
    }
    group.finish();
}

fn bench_nat_succ_qe(c: &mut Criterion) {
    let mut group = c.benchmark_group("E08_nat_succ_qe");
    let sentences = [
        ("one_var", "exists x. x'' = 5"),
        ("guard", "forall y. y = 0 | exists x. x' = y"),
        ("alternation", "forall x. exists y. y = x' & y != 0"),
    ];
    for (name, s) in sentences {
        let f = parse_formula(s).unwrap();
        group.bench_with_input(BenchmarkId::new("decide", name), &f, |b, f| {
            b.iter(|| NatSucc.decide(f).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep full-workspace bench runs bounded: short warm-up and
    // measurement windows, 10 samples per benchmark.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_cooper, bench_relative_safety_nat, bench_nat_succ_qe
}
criterion_main!(benches);
