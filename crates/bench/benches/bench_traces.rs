//! E10/E11/E12 benches: the trace substrate and the Theorem A.3
//! quantifier elimination, characterizing the (exponential) cost the
//! Appendix pays for decidability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fq_bench::workloads;
use fq_domains::traces::{qe, rterm};
use fq_domains::{DecidableTheory, TraceDomain};
use fq_logic::parse_formula;
use fq_turing::trace::{trace_string, validate_trace};
use fq_turing::{builders, run_bounded};

fn bench_machine_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_machine_execution");
    let m = builders::scan_right_halt_on_blank();
    for n in [100usize, 1_000, 10_000] {
        let word = workloads::ones(n);
        group.bench_with_input(BenchmarkId::new("scan_steps", n), &word, |b, w| {
            b.iter(|| run_bounded(&m, w, n + 10))
        });
    }
    group.finish();
}

fn bench_trace_generation_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_trace_roundtrip");
    let m = builders::scan_right_halt_on_blank();
    for n in [10usize, 50, 200] {
        let word = workloads::ones(n);
        group.bench_with_input(BenchmarkId::new("generate", n), &word, |b, w| {
            b.iter(|| trace_string(&m, w, n).unwrap())
        });
        let trace = trace_string(&m, &word, n).unwrap();
        group.bench_with_input(BenchmarkId::new("validate", n), &trace, |b, t| {
            b.iter(|| validate_trace(t).unwrap())
        });
    }
    group.finish();
}

fn bench_lemma_a2(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_lemma_a2");
    for n in [2usize, 4, 8] {
        let sys = workloads::de_system(n, 3);
        group.bench_with_input(BenchmarkId::new("criterion", n), &sys, |b, s| {
            b.iter(|| s.satisfiable())
        });
        group.bench_with_input(BenchmarkId::new("witness", n), &sys, |b, s| {
            b.iter(|| s.witness().unwrap())
        });
    }
    group.finish();
}

fn bench_trace_qe(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_trace_qe");
    group.sample_size(10);
    // Growing numbers of excluded traces exercise the T−4 pattern
    // disjunction (Bell-number growth).
    for n in [0usize, 1, 2, 3] {
        let sentence = workloads::trace_qe_sentence(n);
        let f = rterm::from_logic(&sentence).unwrap();
        group.bench_with_input(BenchmarkId::new("excluded_traces", n), &f, |b, f| {
            b.iter(|| qe::decide(f).unwrap())
        });
    }
    // D/E index growth exercises the exponential B-expansion.
    for i in [2u64, 4, 6] {
        let s = format!("forall y. W(y) -> (exists x. E({i}, x, y))");
        let sentence = parse_formula(&s).unwrap();
        group.bench_with_input(
            BenchmarkId::new("b_expansion_index", i),
            &sentence,
            |b, s| b.iter(|| TraceDomain.decide(s).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep full-workspace bench runs bounded: short warm-up and
    // measurement windows, 10 samples per benchmark.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_machine_execution,
    bench_trace_generation_validation,
    bench_lemma_a2,
    bench_trace_qe
}
criterion_main!(benches);
