//! E03/E09/E13/E15 benches: the syntactic safety machinery and the
//! Section 3 reductions — certification-sentence decision (the inner loop
//! of Theorem 3.1) and the halting semi-decision of Theorem 3.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fq_bench::workloads;
use fq_core::negative::{certification_sentence, ExactRuntimeSyntax};
use fq_core::relative::{relative_safety_eq, relative_safety_traces};
use fq_core::syntax::{ActiveDomainSyntax, SuccessorSyntax};
use fq_domains::{DecidableTheory, TraceDomain};
use fq_logic::parse_formula;
use fq_relational::{is_safe_range, Schema};
use fq_turing::builders;

fn bench_safe_range_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("E03_safe_range_check");
    let schema = Schema::new().with_relation("F", 2);
    for (name, q) in workloads::genealogy_queries() {
        group.bench_with_input(BenchmarkId::new("check", name), &q, |b, q| {
            b.iter(|| is_safe_range(&schema, q))
        });
    }
    group.finish();
}

fn bench_fresh_element_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("E03_fresh_element_test");
    group.sample_size(20);
    let q = parse_formula("!F(x, y)").unwrap();
    for edges in [5usize, 15, 30] {
        let state = workloads::genealogy_state(edges as u64 * 2, edges, 9);
        group.bench_with_input(BenchmarkId::new("state_size", edges), &state, |b, st| {
            b.iter(|| relative_safety_eq(st, &q, &["x".to_string(), "y".to_string()]).unwrap())
        });
    }
    group.finish();
}

fn bench_syntax_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("E09_syntax_transforms");
    let schema = Schema::new().with_relation("F", 2);
    let ad = ActiveDomainSyntax {
        schema: schema.clone(),
    };
    let succ = SuccessorSyntax { schema };
    let q = parse_formula("!F(x, y)").unwrap();
    group.bench_function("active_domain_transform", |b| b.iter(|| ad.transform(&q)));
    group.bench_function("extended_active_domain_transform", |b| {
        b.iter(|| succ.transform(&q))
    });
    group.finish();
}

fn bench_certification_sentence(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_certification_decision");
    group.sample_size(10);
    // The Theorem 3.1 inner loop: deciding ∀z∀x(M(x)[z/c] ↔ φ_r(x)[z/c]).
    let machines = [
        ("halter", builders::halter()),
        ("scanner", builders::scan_right_halt_on_blank()),
    ];
    for (name, m) in machines {
        let phi = ExactRuntimeSyntax::default_candidate_for(&m);
        let sentence = certification_sentence(&m, &phi);
        group.bench_with_input(BenchmarkId::new("decide", name), &sentence, |b, s| {
            b.iter(|| TraceDomain.decide(s).unwrap())
        });
    }
    group.finish();
}

fn bench_halting_semidecision(c: &mut Criterion) {
    let mut group = c.benchmark_group("E15_halting_semidecision");
    for budget in [100usize, 1_000, 10_000] {
        let looper = builders::looper();
        group.bench_with_input(
            BenchmarkId::new("divergent_budget", budget),
            &budget,
            |b, &n| b.iter(|| relative_safety_traces(&looper, "1", n)),
        );
    }
    group.finish();
}

fn bench_finrep(c: &mut Criterion) {
    use fq_core::finrep::FinRep;
    let mut group = c.benchmark_group("finrep_constraint_relations");
    let evens = FinRep::new(["x"], parse_formula("div(2, x, 0)").unwrap()).unwrap();
    group.bench_function("membership_infinite", |b| {
        b.iter(|| evens.contains(&[123456]).unwrap())
    });
    let band = FinRep::new(["x"], parse_formula("x > 5 & x < 60").unwrap()).unwrap();
    group.bench_function("finiteness_check", |b| b.iter(|| band.is_finite().unwrap()));
    let pairs = FinRep::new(["x", "y"], parse_formula("y = x + 1 & y < 30").unwrap()).unwrap();
    group.bench_function("projection_via_cooper", |b| {
        b.iter(|| pairs.project(&["x"]).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep full-workspace bench runs bounded: short warm-up and
    // measurement windows, 10 samples per benchmark.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_finrep,
    bench_safe_range_check,
    bench_fresh_element_test,
    bench_syntax_transforms,
    bench_certification_sentence,
    bench_halting_semidecision
}
criterion_main!(benches);
