//! # fq-bench — workloads and experiment harness
//!
//! Shared workload generators for the Criterion benches and the
//! `experiments` binary that regenerates every row of `EXPERIMENTS.md`.
//!
//! The paper has no tables or figures; its "evaluation" is its theorems.
//! Each workload here parameterizes the decision procedure or reduction
//! behind one theorem so that benches can characterize its cost and the
//! experiment runner can verify its predicted behaviour.
//!
//! Every generator is deterministic in its seed, and the bulk ones
//! build their states through `fq_relational::StateBuilder` (the batch
//! ingestion path that `bench_storage` measures). A workload feeds
//! straight into the `fq-query` compile → plan → execute pipeline:
//!
//! ```
//! use fq_bench::workloads::{trace_db_rows, trace_db_state};
//! use fq_query::{DomainId, Executor};
//!
//! // A tiny trace database (domain T), bulk-loaded in one pass.
//! let state = trace_db_state(&trace_db_rows(200, 42));
//! let exec = Executor::default();
//! let out = exec.execute(
//!     &state,
//!     "Run(m, w, p) & Looping(m)",
//!     DomainId::Traces,
//! )?;
//! assert_eq!(out.plan.strategy(), "algebra");
//! assert!(out.rows.iter().all(|t| t.len() == 3));
//! # Ok::<(), fq_query::QueryError>(())
//! ```

pub mod report;
pub mod workloads;

pub use report::{ExperimentReport, ExperimentResult};
