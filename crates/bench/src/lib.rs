//! # fq-bench — workloads and experiment harness
//!
//! Shared workload generators for the Criterion benches and the
//! `experiments` binary that regenerates every row of `EXPERIMENTS.md`.
//!
//! The paper has no tables or figures; its "evaluation" is its theorems.
//! Each workload here parameterizes the decision procedure or reduction
//! behind one theorem so that benches can characterize its cost and the
//! experiment runner can verify its predicted behaviour.

pub mod report;
pub mod workloads;

pub use report::{ExperimentReport, ExperimentResult};
