//! Structured experiment reports.

use fq_json::{FromJson, JsonError, ToJson, Value};

/// One experiment row: what the paper predicts, what we measured.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id from DESIGN.md (e.g. "E05").
    pub id: String,
    /// The paper reference (theorem / section).
    pub reference: String,
    /// The paper's claim, paraphrased.
    pub claim: String,
    /// What the implementation observed.
    pub observed: String,
    /// Whether observation matches the claim.
    pub pass: bool,
    /// Wall-clock milliseconds spent.
    pub millis: u128,
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Value {
        fq_json::object([
            ("id", self.id.to_json()),
            ("reference", self.reference.to_json()),
            ("claim", self.claim.to_json()),
            ("observed", self.observed.to_json()),
            ("pass", self.pass.to_json()),
            ("millis", self.millis.to_json()),
        ])
    }
}

impl FromJson for ExperimentResult {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ExperimentResult {
            id: FromJson::from_json(fq_json::member(value, "id")?)?,
            reference: FromJson::from_json(fq_json::member(value, "reference")?)?,
            claim: FromJson::from_json(fq_json::member(value, "claim")?)?,
            observed: FromJson::from_json(fq_json::member(value, "observed")?)?,
            pass: FromJson::from_json(fq_json::member(value, "pass")?)?,
            millis: FromJson::from_json(fq_json::member(value, "millis")?)?,
        })
    }
}

/// A full experiments run.
#[derive(Clone, Debug, Default)]
pub struct ExperimentReport {
    pub results: Vec<ExperimentResult>,
}

impl ToJson for ExperimentReport {
    fn to_json(&self) -> Value {
        fq_json::object([("results", self.results.to_json())])
    }
}

impl FromJson for ExperimentReport {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ExperimentReport {
            results: FromJson::from_json(fq_json::member(value, "results")?)?,
        })
    }
}

impl ExperimentReport {
    /// Record one experiment, timing the closure.
    pub fn run(
        &mut self,
        id: &str,
        reference: &str,
        claim: &str,
        f: impl FnOnce() -> (String, bool),
    ) {
        let start = std::time::Instant::now();
        let (observed, pass) = f();
        let millis = start.elapsed().as_millis();
        println!(
            "[{}] {:60} {:4} ({millis} ms)\n      claim:    {}\n      observed: {}",
            id,
            reference,
            if pass { "PASS" } else { "FAIL" },
            claim,
            observed
        );
        self.results.push(ExperimentResult {
            id: id.to_string(),
            reference: reference.to_string(),
            claim: claim.to_string(),
            observed,
            pass,
            millis,
        });
    }

    /// Number of failing experiments.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.pass).count()
    }

    /// Serialize as JSON.
    pub fn to_json(&self) -> String {
        fq_json::to_string_pretty(self)
    }

    /// Render the Markdown table for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Exp | Paper ref | Claim | Observed | Status | Time |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} ms |\n",
                r.id,
                r.reference,
                r.claim,
                r.observed,
                if r.pass { "✅" } else { "❌" },
                r.millis
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_records_and_counts() {
        let mut rep = ExperimentReport::default();
        rep.run("E00", "test", "claim", || ("observed".to_string(), true));
        rep.run("E01", "test", "claim", || ("observed".to_string(), false));
        assert_eq!(rep.results.len(), 2);
        assert_eq!(rep.failures(), 1);
        assert!(rep.to_markdown().contains("E00"));
        assert!(rep.to_json().contains("\"pass\": false"));
    }
}
