//! Structured experiment reports.

use serde::{Deserialize, Serialize};

/// One experiment row: what the paper predicts, what we measured.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id from DESIGN.md (e.g. "E05").
    pub id: String,
    /// The paper reference (theorem / section).
    pub reference: String,
    /// The paper's claim, paraphrased.
    pub claim: String,
    /// What the implementation observed.
    pub observed: String,
    /// Whether observation matches the claim.
    pub pass: bool,
    /// Wall-clock milliseconds spent.
    pub millis: u128,
}

/// A full experiments run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExperimentReport {
    pub results: Vec<ExperimentResult>,
}

impl ExperimentReport {
    /// Record one experiment, timing the closure.
    pub fn run(
        &mut self,
        id: &str,
        reference: &str,
        claim: &str,
        f: impl FnOnce() -> (String, bool),
    ) {
        let start = std::time::Instant::now();
        let (observed, pass) = f();
        let millis = start.elapsed().as_millis();
        println!(
            "[{}] {:60} {:4} ({millis} ms)\n      claim:    {}\n      observed: {}",
            id,
            reference,
            if pass { "PASS" } else { "FAIL" },
            claim,
            observed
        );
        self.results.push(ExperimentResult {
            id: id.to_string(),
            reference: reference.to_string(),
            claim: claim.to_string(),
            observed,
            pass,
            millis,
        });
    }

    /// Number of failing experiments.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.pass).count()
    }

    /// Serialize as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Render the Markdown table for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Exp | Paper ref | Claim | Observed | Status | Time |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} ms |\n",
                r.id,
                r.reference,
                r.claim,
                r.observed,
                if r.pass { "✅" } else { "❌" },
                r.millis
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_records_and_counts() {
        let mut rep = ExperimentReport::default();
        rep.run("E00", "test", "claim", || ("observed".to_string(), true));
        rep.run("E01", "test", "claim", || ("observed".to_string(), false));
        assert_eq!(rep.results.len(), 2);
        assert_eq!(rep.failures(), 1);
        assert!(rep.to_markdown().contains("E00"));
        assert!(rep.to_json().contains("\"pass\": false"));
    }
}
