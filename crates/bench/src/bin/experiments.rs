//! Regenerate every experiment of EXPERIMENTS.md.
//!
//! The paper has no tables or figures; each experiment exercises one
//! theorem, lemma, or worked example, comparing the implementation's
//! observable behaviour with the paper's claim. Run with
//! `cargo run --release -p fq-bench --bin experiments`; pass `--json` to
//! also dump the structured report.

use fq_bench::workloads;
use fq_bench::ExperimentReport;
use fq_core::negative::{
    certify_total, refute_candidate_syntax, total_witnesses, ExactRuntimeSyntax, FiniteListSyntax,
    TotalityEnumerator,
};
use fq_core::relative::{
    halting_instance, relative_safety_eq, relative_safety_nat, relative_safety_succ,
    relative_safety_traces,
};
use fq_core::safety::SafetyVerdict;
use fq_core::syntax::{ActiveDomainSyntax, OrderedTraceExtension, SuccessorSyntax};
use fq_core::{answer_query, finitize};
use fq_domains::traces::{qe, rterm};
use fq_domains::{DecidableTheory, Domain, NatOrder, NatSucc, Presburger, TraceDomain};
use fq_logic::{parse_formula, Term};
use fq_relational::active_eval::{eval_query, NoOps};
use fq_relational::{is_safe_range, translate_to_domain_formula, Schema, State, Value};
use fq_turing::builders;
use fq_turing::trace::{count_traces, trace_string, validate_trace, TraceCount};

fn vars(vs: &[&str]) -> Vec<String> {
    vs.iter().map(|s| s.to_string()).collect()
}

fn main() {
    let mut report = ExperimentReport::default();

    // ------------------------------------------------------------------
    report.run(
        "E01",
        "Section 1 intro example",
        "M(x) and G(x,z) are finite; M ∨ G is infinite exactly when someone has two sons",
        || {
            let state = workloads::genealogy_state(40, 25, 1);
            let queries = workloads::genealogy_queries();
            let m_ans = eval_query(&state, &NoOps, &queries[0].1, &vars(&["x"])).unwrap();
            let g_ans = eval_query(&state, &NoOps, &queries[1].1, &vars(&["x", "z"])).unwrap();
            let two_sons = !m_ans.is_empty();
            let unsafe_infinite =
                !relative_safety_eq(&state, &queries[2].1, &vars(&["x", "z"])).unwrap();
            (
                format!(
                    "|M| = {}, |G| = {}, two-sons = {two_sons}, M∨G infinite = {unsafe_infinite}",
                    m_ans.len(),
                    g_ans.len()
                ),
                two_sons == unsafe_infinite,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E02",
        "Section 1.1",
        "finite queries are effectively answerable over a decidable domain by enumerate-and-ask",
        || {
            let state = workloads::genealogy_state(30, 15, 2);
            let q = &workloads::genealogy_queries()[0].1;
            let direct = eval_query(&state, &NoOps, q, &vars(&["x"])).unwrap();
            let enumerated = answer_query(&NatOrder, &state, q, &vars(&["x"]), 5_000).unwrap();
            let agree = enumerated.is_complete()
                && enumerated.found().len() == direct.len()
                && direct.iter().all(
                    |t| matches!(&t[0], Value::Nat(n) if enumerated.found().contains(&vec![*n])),
                );
            (
                format!(
                    "enumerate-and-ask found {} answers, active-domain eval {} (complete: {})",
                    enumerated.found().len(),
                    direct.len(),
                    enumerated.is_complete()
                ),
                agree,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E03",
        "Section 2 (equality domain)",
        "active-domain restriction is an effective syntax; relative safety decided by the fresh-element test",
        || {
            let schema = Schema::new().with_relation("F", 2);
            let state = workloads::genealogy_state(40, 25, 3);
            let syntax = ActiveDomainSyntax { schema: schema.clone() };
            let unsafe_q = parse_formula("!F(x, y)").unwrap();
            let transformed = syntax.transform(&unsafe_q);
            let now_safe = is_safe_range(&schema, &transformed);
            let was_unsafe = !relative_safety_eq(&state, &unsafe_q, &vars(&["x", "y"])).unwrap();
            let now_finite =
                relative_safety_eq(&state, &transformed, &vars(&["x", "y"])).unwrap();
            (
                format!(
                    "¬F infinite = {was_unsafe}; transform safe-range = {now_safe}, finite = {now_finite}"
                ),
                was_unsafe && now_safe && now_finite,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E04",
        "Fact 2.1",
        "over ⟨N,<⟩ there is a finite query not equivalent to any domain-independent one",
        || {
            let (q, expected) = fq_core::finitize::fact_2_1_witness(&[3, 7, 9]);
            // Finite: equivalent to its finitization.
            let finite = Presburger.equivalent(&q, &finitize(&q)).unwrap();
            // The unique answer lies outside the active domain.
            let at = fq_logic::substitute(&q, "x", &Term::Nat(expected));
            let answer_correct = NatOrder.decide(&at).unwrap();
            let outside = ![3u64, 7, 9].contains(&expected);
            (
                format!("witness answer = {expected}, finite = {finite}, outside active domain = {outside}"),
                finite && answer_correct && outside,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E05",
        "Theorem 2.2",
        "finitizations are finite, and equivalent to the original exactly for finite formulas",
        || {
            let cases = [
                ("x < 9", true),
                ("x = 4 | x = 400", true),
                ("x > 9", false),
                ("div(3, x, 0)", false),
                ("x + y = 12", true),
                ("x = y", false),
            ];
            let mut ok = true;
            for (src, is_finite) in cases {
                let phi = parse_formula(src).unwrap();
                let equivalent = Presburger.equivalent(&phi, &finitize(&phi)).unwrap();
                ok &= equivalent == is_finite;
            }
            (
                format!("checked {} formulas: equivalence ⟺ finiteness", cases.len()),
                ok,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E06",
        "Corollaries 2.3/2.4",
        "syntax existence is orthogonal to decidability; every domain extends to one with a syntax",
        || {
            // The ordered trace extension: finitization syntax exists…
            let ext = OrderedTraceExtension;
            let phi = parse_formula("P(m0, w0, x)").unwrap();
            let fin = ext.finitize(&phi);
            let has_syntax = fin.predicate_names().contains("llex");
            // …but deciding its theory is refused (Corollary 3.2).
            let undecidable = ext.decide(&parse_formula("exists x. x = x").unwrap()).is_err();
            // The order is a genuine linear order isomorphic to ⟨N,<⟩.
            let strings = fq_domains::traces::enumerate_strings(64);
            let iso = strings
                .windows(2)
                .all(|w| OrderedTraceExtension::llex_lt(&w[0], &w[1]));
            (
                format!("finitization over ⊑ built = {has_syntax}, decide refused = {undecidable}, order iso N = {iso}"),
                has_syntax && undecidable && iso,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E07",
        "Theorem 2.5",
        "relative safety decidable for decidable extensions of ⟨N,<⟩: finite ⟺ φ ≡ finitization(φ)",
        || {
            let state = workloads::genealogy_state(25, 12, 4);
            let bounded = parse_formula("exists y. F(y, x)").unwrap();
            let above = parse_formula("forall y. (exists p. F(y, p) | F(p, y)) -> x > y").unwrap();
            let fin1 = relative_safety_nat(&state, &bounded, &vars(&["x"])).unwrap();
            let fin2 = relative_safety_nat(&state, &above, &vars(&["x"])).unwrap();
            (
                format!("sons-of query finite = {fin1}; above-all query finite = {fin2}"),
                fin1 && !fin2,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E08",
        "Section 2.2 / Theorem 2.6",
        "⟨N,′⟩ admits quantifier elimination; relative safety decided on the QF residue",
        || {
            let qe_ok = ["exists x. x' = y & x != z", "forall x. x'' != x"]
                .iter()
                .all(|s| {
                    NatSucc
                        .quantifier_eliminate(&parse_formula(s).unwrap())
                        .map(|f| f.is_quantifier_free())
                        .unwrap_or(false)
                });
            let schema = Schema::new().with_relation("R", 1);
            let state = State::new(schema).with_tuple("R", vec![Value::Nat(5)]);
            let fin = parse_formula("exists y. R(y) & x = y''").unwrap();
            let inf = parse_formula("exists y. R(y) & x != y").unwrap();
            let r1 = relative_safety_succ(&state, &fin, &vars(&["x"])).unwrap();
            let r2 = relative_safety_succ(&state, &inf, &vars(&["x"])).unwrap();
            (
                format!(
                    "QE quantifier-free = {qe_ok}; succ-query finite = {r1}; ≠-query finite = {r2}"
                ),
                qe_ok && r1 && !r2,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E09",
        "Theorem 2.7",
        "the extended active domain of radius 2^q gives a recursive syntax for ⟨N,′⟩",
        || {
            let schema = Schema::new().with_relation("R", 1);
            let state = State::new(schema.clone()).with_tuple("R", vec![Value::Nat(5)]);
            let syntax = SuccessorSyntax { schema };
            // A finite query is preserved; an infinite one is truncated to
            // a finite (hence safe) one.
            let fin = parse_formula("exists y. R(y) & x = y'").unwrap();
            let inf = parse_formula("!R(x)").unwrap();
            let t_fin = syntax.transform(&fin);
            let t_inf = syntax.transform(&inf);
            let fin_d = translate_to_domain_formula(&fin, &state);
            let t_fin_d = translate_to_domain_formula(&t_fin, &state);
            let t_inf_d = translate_to_domain_formula(&t_inf, &state);
            let preserved = NatSucc.equivalent(&fin_d, &t_fin_d).unwrap();
            let qf = NatSucc.quantifier_eliminate(&t_inf_d).unwrap();
            let truncated_finite = NatSucc.solution_set_finite(&qf, &vars(&["x"])).unwrap();
            (
                format!("finite query preserved = {preserved}; transformed ¬R finite = {truncated_finite}"),
                preserved && truncated_finite,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E10",
        "Section 3 (domain T)",
        "#traces(M, w) = steps-until-halt + 1, or unbounded for divergent machines",
        || {
            let mut ok = true;
            let mut lines = Vec::new();
            for (name, m) in workloads::machine_zoo() {
                let word = workloads::ones(6);
                match count_traces(&m, &word, 10_000) {
                    TraceCount::Exactly(n) => {
                        let steps = fq_turing::run_bounded(&m, &word, 10_000)
                            .steps()
                            .expect("halted");
                        ok &= n == steps + 1;
                        // Every trace validates; one past the end does not.
                        ok &= (1..=n).all(|k| {
                            trace_string(&m, &word, k)
                                .and_then(|t| validate_trace(&t))
                                .is_some()
                        });
                        ok &= trace_string(&m, &word, n + 1).is_none();
                        lines.push(format!("{name}: {n}"));
                    }
                    TraceCount::AtLeast(n) => {
                        ok &= name == "looper";
                        lines.push(format!("{name}: ≥{n}"));
                    }
                }
            }
            (format!("trace counts {{{}}}", lines.join(", ")), ok)
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E11",
        "Lemma A.2",
        "the D/E satisfiability criterion matches the explicit trie-machine construction",
        || {
            let mut ok = true;
            for seed in 0..40u64 {
                let sys = workloads::de_system(1 + (seed as usize % 6), seed);
                ok &= sys.satisfiable() == sys.witness().is_some();
                if let Some(m) = sys.witness() {
                    ok &= sys
                        .at_least
                        .iter()
                        .all(|(v, i)| fq_turing::trace::has_at_least_traces(&m, v, *i));
                    ok &= sys
                        .exactly
                        .iter()
                        .all(|(u, j)| fq_turing::trace::has_exactly_traces(&m, u, *j));
                }
            }
            // And the paper's two conflict conditions are detected.
            let c1 = fq_domains::traces::DESystem {
                at_least: vec![("111111".into(), 5)],
                exactly: vec![("111&&&".into(), 3)],
            };
            let c2 = fq_domains::traces::DESystem {
                at_least: vec![],
                exactly: vec![("111111".into(), 5), ("111&&&".into(), 3)],
            };
            ok &= !c1.satisfiable() && !c2.satisfiable();
            (
                "40 random systems: criterion ⟺ witness; both paper conflicts detected".to_string(),
                ok,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E12",
        "Theorem A.3 / Corollary A.4",
        "the Reach Theory of Traces admits effective quantifier elimination",
        || {
            let sentences = [
                ("forall x. M(x) | W(x) | T(x) | O(x)", true),
                (
                    "forall m0 w0. M(m0) & W(w0) -> exists p. P(m0, w0, p)",
                    true,
                ),
                ("forall p. T(p) -> P(m(p), w(p), p)", true),
                ("exists x. D(3, x, \"111111\") & E(2, x, \"&&&&&&\")", true),
                ("exists x. D(5, x, \"111111\") & E(3, x, \"111&&&\")", false),
                ("exists p q. T(p) & T(q) & p != q & m(p) = m(q)", true),
            ];
            let mut ok = true;
            for (s, expected) in sentences {
                let f = rterm::from_logic(&parse_formula(s).unwrap()).unwrap();
                let qf = qe::eliminate(&f);
                ok &= qf.is_quantifier_free();
                ok &= qe::decide(&f).unwrap() == expected;
            }
            (
                format!(
                    "{} sentences eliminated and decided correctly",
                    sentences.len()
                ),
                ok,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E13",
        "Theorem 3.1",
        "an effective syntax would enumerate the total machines; concrete candidates fail on machines with input-dependent runtime",
        || {
            // Soundness: every certified machine is total on samples.
            let certified: Vec<_> = TotalityEnumerator::new(ExactRuntimeSyntax, 40).collect();
            let sound = certified.iter().all(|(m, _)| {
                ["", "1", "11", "1&1"]
                    .iter()
                    .all(|w| fq_turing::exec::halts_within(m, w, 10_000))
            });
            // Incompleteness: a total machine the candidate syntax misses.
            let refutation =
                refute_candidate_syntax(&ExactRuntimeSyntax, &total_witnesses(), 40).unwrap();
            let halter_certified =
                certify_total(&builders::halter(), &ExactRuntimeSyntax, 40)
                    .unwrap()
                    .is_some();
            let looper_rejected =
                certify_total(&builders::looper(), &ExactRuntimeSyntax, 40)
                    .unwrap()
                    .is_none();
            // The second candidate family fails differently: it certifies
            // nothing at all.
            let list_refuted =
                refute_candidate_syntax(&FiniteListSyntax, &total_witnesses(), 25)
                    .unwrap()
                    .is_some()
                    && certify_total(&builders::halter(), &FiniteListSyntax, 25)
                        .unwrap()
                        .is_none();
            (
                format!(
                    "certified {} machines (all halt on samples = {sound}); halter certified = {halter_certified}; looper rejected = {looper_rejected}; finite-list syntax refuted too = {list_refuted}; refutation witness = {}",
                    certified.len(),
                    refutation
                        .as_ref()
                        .map(|r| r.machine_str.clone())
                        .unwrap_or_default()
                ),
                sound && refutation.is_some() && halter_certified && looper_rejected && list_refuted,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E14",
        "Corollary 3.2",
        "no decidable extension of T has an effective syntax: the ordered extension has the syntax but loses decidability",
        || {
            let ext = OrderedTraceExtension;
            // The extension is genuinely an extension of ⟨N,<⟩…
            let strings = fq_domains::traces::enumerate_strings(128);
            let order_ok = (0..strings.len()).all(|i| {
                OrderedTraceExtension::index(&strings[i]) == i as u128
            });
            // …and its decision procedure is (necessarily) absent.
            let refused = ext.decide(&parse_formula("forall x. !llex(x, x)").unwrap()).is_err();
            // Bounded checking still refutes universal falsehoods.
            let bounded = ext
                .check_over_prefix(&parse_formula("forall x. !llex(x, x)").unwrap(), 64)
                .unwrap();
            (
                format!("order isomorphism verified on 128 strings = {order_ok}; decide refused = {refused}; bounded check = {bounded}"),
                order_ok && refused && bounded,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E15",
        "Theorem 3.3",
        "relative safety over T is the halting problem: finite in state c ⟺ M halts on c",
        || {
            let mut ok = true;
            let mut lines = Vec::new();
            for (name, m) in workloads::machine_zoo() {
                let word = "111";
                let verdict = relative_safety_traces(&m, word, 5_000);
                let halts = fq_turing::exec::halts_within(&m, word, 5_000);
                match verdict {
                    SafetyVerdict::Finite(Some(n)) => {
                        ok &= halts;
                        lines.push(format!("{name}: finite({n})"));
                    }
                    SafetyVerdict::Unknown { .. } => {
                        ok &= !halts;
                        lines.push(format!("{name}: unknown"));
                    }
                    other => {
                        ok = false;
                        lines.push(format!("{name}: {other:?}"));
                    }
                }
            }
            // The reduction instance round-trips through the query API.
            let (query, state) = halting_instance(&builders::scan_right_halt_on_blank(), "11");
            let bound = fq_logic::bind_constants(&query, &["c".to_string()].into());
            let answers =
                answer_query(&TraceDomain, &state, &bound, &vars(&["x"]), 100_000).unwrap();
            ok &= answers.is_complete() && answers.found().len() == 3;
            (
                format!(
                    "verdicts {{{}}}; reduction instance answered with {} traces",
                    lines.join(", "),
                    answers.found().len()
                ),
                ok,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E16",
        "Section 1.2",
        "finitely-representable infinite relations answer membership and support the algebra",
        || {
            use fq_core::finrep::FinRep;
            let evens = FinRep::new(["x"], parse_formula("div(2, x, 0)").unwrap()).unwrap();
            let membership =
                evens.contains(&[42]).unwrap() && !evens.contains(&[41]).unwrap();
            let infinite = !evens.is_finite().unwrap();
            let small = FinRep::new(["x"], parse_formula("x < 20").unwrap()).unwrap();
            let band = evens.intersect(&small).unwrap();
            let finite_intersection = band.is_finite().unwrap()
                && band.enumerate(100).unwrap().unwrap().len() == 10;
            let projected = FinRep::new(["x", "y"], parse_formula("y = x + 1 & y < 9").unwrap())
                .unwrap()
                .project(&["x"])
                .unwrap();
            let qf = projected.formula().is_quantifier_free();
            (
                format!(
                    "membership = {membership}, evens infinite = {infinite}, evens∩[0,20) has 10 tuples = {finite_intersection}, projection QF = {qf}"
                ),
                membership && infinite && finite_intersection && qf,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E17",
        "Section 2.2 closing remark",
        "length-lex words form a decidable extension-of-⟨N,<⟩-up-to-isomorphism with the finitization syntax",
        || {
            use fq_domains::WordsLlex;
            let strings = WordsLlex.enumerate(200);
            let iso = strings
                .iter()
                .enumerate()
                .all(|(i, w)| WordsLlex::index(w) == Some(i as u64));
            let decided = WordsLlex
                .decide(&parse_formula("forall x. exists y. llex(x, y)").unwrap())
                .unwrap();
            let discrete = WordsLlex
                .decide(
                    &parse_formula("forall x. !(llex(\"\", x) & llex(x, \"1\"))").unwrap(),
                )
                .unwrap();
            (
                format!("isomorphism on 200 words = {iso}, unbounded = {decided}, discrete = {discrete}"),
                iso && decided && discrete,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E18",
        "Section 2.1 (integers remark)",
        "over ⟨Z,<⟩ the one-sided finitization fails and the two-sided modification works",
        || {
            use fq_core::finitize::finitize_two_sided;
            use fq_domains::IntOrder;
            let half = parse_formula("x < 3").unwrap();
            // One-sided guard satisfied but the formula stays infinite.
            let one_sided_no_op = IntOrder.equivalent(&half, &finitize(&half)).unwrap();
            let two = finitize_two_sided(&half);
            let two_sided_finite = IntOrder
                .equivalent(&two, &finitize_two_sided(&two))
                .unwrap();
            let band = parse_formula("0 - 3 < x & x < 3").unwrap();
            let band_preserved = IntOrder
                .equivalent(&band, &finitize_two_sided(&band))
                .unwrap();
            (
                format!(
                    "one-sided is a no-op on x<3 = {one_sided_no_op}; two-sided finite = {two_sided_finite}; finite band preserved = {band_preserved}"
                ),
                one_sided_no_op && two_sided_finite && band_preserved,
            )
        },
    );

    // ------------------------------------------------------------------
    report.run(
        "E19",
        "Theorem 3.3 refinement",
        "finiteness over T is semi-decidable via Theorem A.3 counting sentences (the divergent side stays open)",
        || {
            use fq_core::relative::certify_finite_traces_via_qe;
            let m = builders::scan_right_halt_on_blank();
            let (query, state) = halting_instance(&m, "11");
            let bound = fq_logic::bind_constants(&query, &["c".to_string()].into());
            let finite_side = certify_finite_traces_via_qe(&bound, &state, "x", 4).unwrap()
                == SafetyVerdict::Finite(Some(3));
            let (q2, s2) = halting_instance(&builders::looper(), "1");
            let b2 = fq_logic::bind_constants(&q2, &["c".to_string()].into());
            let divergent_side = certify_finite_traces_via_qe(&b2, &s2, "x", 3).unwrap()
                == SafetyVerdict::Unknown { budget_spent: 3 };
            (
                format!("halting instance certified Finite(3) = {finite_side}; divergent instance Unknown = {divergent_side}"),
                finite_side && divergent_side,
            )
        },
    );

    // ------------------------------------------------------------------
    println!(
        "\n{} experiments, {} failures",
        report.results.len(),
        report.failures()
    );
    if std::env::args().any(|a| a == "--json") {
        println!("{}", report.to_json());
    }
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", report.to_markdown());
    }
    if report.failures() > 0 {
        std::process::exit(1);
    }
}
