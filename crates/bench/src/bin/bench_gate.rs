//! Bench regression gate: compare a fresh `BENCH_*.json` run against a
//! committed baseline and fail when the median per-experiment slowdown
//! exceeds 30%.
//!
//! Usage: `bench_gate <baseline.json> <fresh.json> [<baseline> <fresh> ...]`
//!
//! Experiments are matched by id; rows whose baseline took under 2 ms
//! are skipped (their timings are dominated by noise). The gate passes
//! trivially when no row is comparable — a baseline of all-fast
//! experiments should not block CI.

use fq_bench::report::ExperimentReport;
use std::process::ExitCode;

/// The slowdown the gate tolerates: fresh may take up to 1.3× baseline.
const MAX_MEDIAN_RATIO: f64 = 1.3;

/// Baselines faster than this are too noisy to compare.
const MIN_BASELINE_MILLIS: u128 = 2;

/// Per-experiment slowdown ratios (fresh / baseline), matched by id and
/// restricted to rows with a trustworthy baseline.
fn ratios(baseline: &ExperimentReport, fresh: &ExperimentReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for b in &baseline.results {
        if b.millis < MIN_BASELINE_MILLIS {
            continue;
        }
        if let Some(f) = fresh.results.iter().find(|f| f.id == b.id) {
            out.push((b.id.clone(), f.millis as f64 / b.millis as f64));
        }
    }
    out
}

/// The median of the slowdown ratios, `None` when nothing is comparable.
fn median_ratio(ratios: &[(String, f64)]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    let mut rs: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
    rs.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    Some(rs[rs.len() / 2])
}

fn load(path: &str) -> Result<ExperimentReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("`{path}`: {e}"))?;
    fq_json::from_str(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [<baseline> <fresh> ...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for pair in args.chunks(2) {
        let (bpath, fpath) = (&pair[0], &pair[1]);
        let (baseline, fresh) = match (load(bpath), load(fpath)) {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rs = ratios(&baseline, &fresh);
        for (id, r) in &rs {
            println!("  {r:>6.2}x  {id}");
        }
        match median_ratio(&rs) {
            None => println!("{bpath} vs {fpath}: no comparable rows, skipping"),
            Some(m) if m > MAX_MEDIAN_RATIO => {
                eprintln!(
                    "{bpath} vs {fpath}: median slowdown {m:.2}x exceeds {MAX_MEDIAN_RATIO}x"
                );
                failed = true;
            }
            Some(m) => {
                println!("{bpath} vs {fpath}: median ratio {m:.2}x within {MAX_MEDIAN_RATIO}x, ok")
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_bench::report::ExperimentResult;

    fn report(rows: &[(&str, u128)]) -> ExperimentReport {
        ExperimentReport {
            results: rows
                .iter()
                .map(|(id, millis)| ExperimentResult {
                    id: id.to_string(),
                    reference: String::new(),
                    claim: String::new(),
                    observed: String::new(),
                    pass: true,
                    millis: *millis,
                })
                .collect(),
        }
    }

    #[test]
    fn noisy_and_unmatched_rows_are_skipped() {
        let baseline = report(&[("fast", 1), ("slow", 100), ("gone", 50)]);
        let fresh = report(&[("fast", 500), ("slow", 110)]);
        let rs = ratios(&baseline, &fresh);
        assert_eq!(rs.len(), 1, "only `slow` is comparable: {rs:?}");
        assert_eq!(rs[0].0, "slow");
        assert!((rs[0].1 - 1.1).abs() < 1e-9);
    }

    #[test]
    fn median_gates_at_thirty_percent() {
        let baseline = report(&[("a", 100), ("b", 100), ("c", 100)]);
        let ok = report(&[("a", 125), ("b", 90), ("c", 129)]);
        let m = median_ratio(&ratios(&baseline, &ok)).unwrap();
        assert!(m <= MAX_MEDIAN_RATIO, "{m}");
        let bad = report(&[("a", 200), ("b", 90), ("c", 150)]);
        let m = median_ratio(&ratios(&baseline, &bad)).unwrap();
        assert!(m > MAX_MEDIAN_RATIO, "{m}");
    }

    #[test]
    fn empty_comparison_passes() {
        let baseline = report(&[("fast", 1)]);
        let fresh = report(&[("fast", 1000)]);
        assert_eq!(median_ratio(&ratios(&baseline, &fresh)), None);
    }
}
