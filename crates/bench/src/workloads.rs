//! Deterministic workload generators.
//!
//! All generators take an explicit seed so benches and experiments are
//! reproducible run to run.

use fq_logic::{Formula, Term};
use fq_relational::state::Tuple;
use fq_relational::{Schema, State, StateBuilder, Value};
use fq_turing::{builders, encode_machine, run_bounded, trace_string, Machine, RunOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random genealogy state: a forest over `0 .. population` where each
/// person has at most one father and fathers precede sons.
pub fn genealogy_state(population: u64, edges: usize, seed: u64) -> State {
    let schema = Schema::new().with_relation("F", 2);
    let mut b = StateBuilder::new(schema);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..edges {
        let son = rng.gen_range(1..population.max(2));
        let father = rng.gen_range(0..son);
        b.row("F", vec![Value::Nat(father), Value::Nat(son)]);
    }
    b.finish()
}

/// The paper's Section 1 queries over the genealogy scheme.
pub fn genealogy_queries() -> Vec<(&'static str, Formula)> {
    let parse = |s: &str| fq_logic::parse_formula(s).expect("workload query parses");
    vec![
        (
            "M(x): more than one son",
            parse("exists y z. y != z & F(x, y) & F(x, z)"),
        ),
        ("G(x,z): grandfather", parse("exists y. F(x, y) & F(y, z)")),
        (
            "M or G (unsafe)",
            parse(
                "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))",
            ),
        ),
    ]
}

/// Random Presburger sentences with `depth` quantifier alternations over
/// small linear atoms — the Cooper-elimination workload.
pub fn presburger_sentence(depth: usize, seed: u64) -> Formula {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..depth).map(|i| format!("v{i}")).collect();
    let mut atoms = Vec::new();
    for i in 0..depth {
        for j in 0..depth {
            if i == j {
                continue;
            }
            let k: u64 = rng.gen_range(0..4);
            let a = Term::var(vars[i].clone());
            let b = Term::app2("+", Term::var(vars[j].clone()), Term::Nat(k));
            atoms.push(if rng.gen_bool(0.5) {
                Formula::lt(a, b)
            } else {
                Formula::eq(a, b)
            });
        }
    }
    let mut body = Formula::or(atoms);
    for (i, v) in vars.iter().enumerate().rev() {
        body = if i % 2 == 0 {
            Formula::exists(v.clone(), body)
        } else {
            Formula::forall(v.clone(), body)
        };
    }
    body
}

/// Machines with parameterized runtime for the trace workloads.
pub fn machine_zoo() -> Vec<(&'static str, Machine)> {
    vec![
        ("halter", builders::halter()),
        ("scanner", builders::scan_right_halt_on_blank()),
        ("eraser", builders::erase_and_halt()),
        ("increment", builders::unary_increment()),
        ("run_exactly(8)", builders::run_exactly(8)),
        ("bouncer", builders::bouncer()),
        ("looper", builders::looper()),
    ]
}

/// A word of `n` unary digits.
pub fn ones(n: usize) -> String {
    "1".repeat(n)
}

/// Random words over `{1, &}`.
pub fn random_word(len: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| if rng.gen_bool(0.5) { '1' } else { '&' })
        .collect()
}

/// The scheme of the storage workload: a database of computational
/// experiments over the trace domain **T** (the application the paper's
/// conclusion suggests). `Run(machine, word, trace)` holds every logged
/// trace keyed by the machine encoding and its input word — all three
/// columns are strings over the trace alphabet; `Halted(machine, word)`
/// marks completed runs; `Looping(machine)` marks machines that blew
/// the step budget.
pub fn trace_db_schema() -> Schema {
    Schema::new()
        .with_relation("Run", 3)
        .with_relation("Halted", 2)
        .with_relation("Looping", 1)
}

/// Generate `target` rows of the trace-database workload, in a shuffled
/// arrival order (so per-row insertion cannot free-ride on sorted
/// input) with naturally occurring duplicates, exactly as a log
/// ingestion pipeline would deliver them. Deterministic in `seed`.
///
/// Each draw picks a machine from [`machine_zoo`] and a random word
/// over `{1, &}`, stores the traces with 1–4 snapshots via
/// [`fq_turing::trace_string`] (the Section 3 trace encoding), and tags
/// the pair `Halted` or the machine `Looping` by bounded simulation.
pub fn trace_db_rows(target: usize, seed: u64) -> Vec<(&'static str, Tuple)> {
    let machines: Vec<(String, Machine)> = machine_zoo()
        .into_iter()
        .map(|(_, m)| (encode_machine(&m), m))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows: Vec<(&'static str, Tuple)> = Vec::with_capacity(target + 8);
    while rows.len() < target {
        let (enc, machine) = &machines[rng.gen_range(0..machines.len())];
        let len = rng.gen_range(4..=14usize);
        let word: String = (0..len)
            .map(|_| if rng.gen_bool(0.5) { '1' } else { '&' })
            .collect();
        for k in 1..=4usize {
            match trace_string(machine, &word, k) {
                Some(trace) => rows.push((
                    "Run",
                    vec![
                        Value::Str(enc.clone()),
                        Value::Str(word.clone()),
                        Value::Str(trace),
                    ],
                )),
                None => break,
            }
        }
        match run_bounded(machine, &word, 64) {
            RunOutcome::Halted { .. } => rows.push((
                "Halted",
                vec![Value::Str(enc.clone()), Value::Str(word.clone())],
            )),
            RunOutcome::StillRunning => rows.push(("Looping", vec![Value::Str(enc.clone())])),
        }
    }
    rows.truncate(target);
    // Fisher–Yates (the vendored `rand` has no `shuffle`).
    for i in (1..rows.len()).rev() {
        rows.swap(i, rng.gen_range(0..=i));
    }
    rows
}

/// Bulk-load workload rows into a state through the batch path.
pub fn trace_db_state(rows: &[(&'static str, Tuple)]) -> State {
    let mut b = StateBuilder::new(trace_db_schema());
    for (rel, t) in rows {
        b.row_ref(rel, t);
    }
    b.finish()
}

/// Lemma A.2 constraint systems of a given size, built greedily so the
/// result is always satisfiable: each randomly drawn constraint is kept
/// only if the system stays consistent.
pub fn de_system(constraints: usize, seed: u64) -> fq_domains::traces::DESystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sys = fq_domains::traces::DESystem::default();
    let mut draws = 0u64;
    while sys.at_least.len() + sys.exactly.len() < constraints && draws < 10_000 {
        draws += 1;
        let word = random_word(6, seed.wrapping_mul(31).wrapping_add(draws));
        let idx = rng.gen_range(1..=4usize);
        // Trial-insert in place and pop on inconsistency, instead of
        // cloning the whole system per draw (which made the build
        // quadratic in the number of accepted constraints).
        if draws.is_multiple_of(2) {
            sys.at_least.push((word, idx));
            if !sys.satisfiable() {
                sys.at_least.pop();
            }
        } else {
            sys.exactly.push((word, idx));
            if !sys.satisfiable() {
                sys.exactly.pop();
            }
        }
    }
    sys
}

/// Reach-theory sentences of increasing size for the QE workload:
/// `∃p (P(M, w, p) ∧ p ≠ t₁ ∧ … ∧ p ≠ t_n)` over a halting machine.
pub fn trace_qe_sentence(excluded: usize) -> Formula {
    let m = builders::scan_right_halt_on_blank();
    let enc = fq_turing::encode_machine(&m);
    let word = ones(excluded + 2);
    let mut conjuncts = vec![Formula::pred(
        "P",
        vec![Term::Str(enc), Term::Str(word.clone()), Term::var("p")],
    )];
    for k in 1..=excluded {
        let t = fq_turing::trace::trace_string(&m, &word, k).expect("trace exists");
        conjuncts.push(Formula::neq(Term::var("p"), Term::Str(t)));
    }
    Formula::exists("p", Formula::and(conjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_domains::{DecidableTheory, Presburger, TraceDomain};

    #[test]
    fn genealogy_state_is_reproducible() {
        let a = genealogy_state(50, 30, 7);
        let b = genealogy_state(50, 30, 7);
        assert_eq!(a, b);
        assert!(a.size() <= 30);
    }

    #[test]
    fn genealogy_queries_parse_and_typecheck() {
        let schema = Schema::new().with_relation("F", 2);
        for (_, q) in genealogy_queries() {
            let sig = schema.extend_signature(fq_logic::Signature::new());
            assert!(sig.check(&q).is_ok());
        }
    }

    #[test]
    fn presburger_workload_is_decidable() {
        for depth in 1..=3 {
            let s = presburger_sentence(depth, 42);
            assert!(s.is_sentence());
            assert!(Presburger.decide(&s).is_ok(), "depth {depth}");
        }
    }

    #[test]
    fn trace_db_rows_are_reproducible_and_string_heavy() {
        let a = trace_db_rows(500, 13);
        let b = trace_db_rows(500, 13);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a
            .iter()
            .flat_map(|(_, t)| t)
            .all(|v| matches!(v, Value::Str(_))));
        let state = trace_db_state(&a);
        assert!(state.size() > 0 && state.size() <= 500);
        // Bulk load ≡ per-row load on the exact same arrival order.
        let mut per_row = State::new(trace_db_schema());
        for (rel, t) in &a {
            per_row.insert(rel, t.clone());
        }
        assert_eq!(state, per_row);
        // Stored traces validate against the machine/word columns.
        for t in state.tuples("Run").take(20) {
            let (Value::Str(m), Value::Str(w), Value::Str(p)) = (&t[0], &t[1], &t[2]) else {
                panic!("Run rows are strings");
            };
            assert!(fq_turing::trace::p_predicate(m, w, p));
        }
    }

    #[test]
    fn de_systems_are_satisfiable() {
        for n in 1..=6 {
            let sys = de_system(n, 11);
            assert!(sys.satisfiable(), "n = {n}");
            assert!(sys.witness().is_some());
        }
    }

    #[test]
    fn trace_qe_sentences_decide_true() {
        // Excluding n of the n+3 traces always leaves one.
        for n in 0..3 {
            let s = trace_qe_sentence(n);
            assert!(TraceDomain.decide(&s).unwrap(), "n = {n}");
        }
    }
}
