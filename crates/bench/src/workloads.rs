//! Deterministic workload generators.
//!
//! All generators take an explicit seed so benches and experiments are
//! reproducible run to run.

use fq_logic::{Formula, Term};
use fq_relational::{Schema, State, Value};
use fq_turing::{builders, Machine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random genealogy state: a forest over `0 .. population` where each
/// person has at most one father and fathers precede sons.
pub fn genealogy_state(population: u64, edges: usize, seed: u64) -> State {
    let schema = Schema::new().with_relation("F", 2);
    let mut state = State::new(schema);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..edges {
        let son = rng.gen_range(1..population.max(2));
        let father = rng.gen_range(0..son);
        state.insert("F", vec![Value::Nat(father), Value::Nat(son)]);
    }
    state
}

/// The paper's Section 1 queries over the genealogy scheme.
pub fn genealogy_queries() -> Vec<(&'static str, Formula)> {
    let parse = |s: &str| fq_logic::parse_formula(s).expect("workload query parses");
    vec![
        (
            "M(x): more than one son",
            parse("exists y z. y != z & F(x, y) & F(x, z)"),
        ),
        ("G(x,z): grandfather", parse("exists y. F(x, y) & F(y, z)")),
        (
            "M or G (unsafe)",
            parse(
                "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))",
            ),
        ),
    ]
}

/// Random Presburger sentences with `depth` quantifier alternations over
/// small linear atoms — the Cooper-elimination workload.
pub fn presburger_sentence(depth: usize, seed: u64) -> Formula {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..depth).map(|i| format!("v{i}")).collect();
    let mut atoms = Vec::new();
    for i in 0..depth {
        for j in 0..depth {
            if i == j {
                continue;
            }
            let k: u64 = rng.gen_range(0..4);
            let a = Term::var(vars[i].clone());
            let b = Term::app2("+", Term::var(vars[j].clone()), Term::Nat(k));
            atoms.push(if rng.gen_bool(0.5) {
                Formula::lt(a, b)
            } else {
                Formula::eq(a, b)
            });
        }
    }
    let mut body = Formula::or(atoms);
    for (i, v) in vars.iter().enumerate().rev() {
        body = if i % 2 == 0 {
            Formula::exists(v.clone(), body)
        } else {
            Formula::forall(v.clone(), body)
        };
    }
    body
}

/// Machines with parameterized runtime for the trace workloads.
pub fn machine_zoo() -> Vec<(&'static str, Machine)> {
    vec![
        ("halter", builders::halter()),
        ("scanner", builders::scan_right_halt_on_blank()),
        ("eraser", builders::erase_and_halt()),
        ("increment", builders::unary_increment()),
        ("run_exactly(8)", builders::run_exactly(8)),
        ("bouncer", builders::bouncer()),
        ("looper", builders::looper()),
    ]
}

/// A word of `n` unary digits.
pub fn ones(n: usize) -> String {
    "1".repeat(n)
}

/// Random words over `{1, &}`.
pub fn random_word(len: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| if rng.gen_bool(0.5) { '1' } else { '&' })
        .collect()
}

/// Lemma A.2 constraint systems of a given size, built greedily so the
/// result is always satisfiable: each randomly drawn constraint is kept
/// only if the system stays consistent.
pub fn de_system(constraints: usize, seed: u64) -> fq_domains::traces::DESystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sys = fq_domains::traces::DESystem::default();
    let mut draws = 0u64;
    while sys.at_least.len() + sys.exactly.len() < constraints && draws < 10_000 {
        draws += 1;
        let word = random_word(6, seed.wrapping_mul(31).wrapping_add(draws));
        let idx = rng.gen_range(1..=4usize);
        // Trial-insert in place and pop on inconsistency, instead of
        // cloning the whole system per draw (which made the build
        // quadratic in the number of accepted constraints).
        if draws.is_multiple_of(2) {
            sys.at_least.push((word, idx));
            if !sys.satisfiable() {
                sys.at_least.pop();
            }
        } else {
            sys.exactly.push((word, idx));
            if !sys.satisfiable() {
                sys.exactly.pop();
            }
        }
    }
    sys
}

/// Reach-theory sentences of increasing size for the QE workload:
/// `∃p (P(M, w, p) ∧ p ≠ t₁ ∧ … ∧ p ≠ t_n)` over a halting machine.
pub fn trace_qe_sentence(excluded: usize) -> Formula {
    let m = builders::scan_right_halt_on_blank();
    let enc = fq_turing::encode_machine(&m);
    let word = ones(excluded + 2);
    let mut conjuncts = vec![Formula::pred(
        "P",
        vec![Term::Str(enc), Term::Str(word.clone()), Term::var("p")],
    )];
    for k in 1..=excluded {
        let t = fq_turing::trace::trace_string(&m, &word, k).expect("trace exists");
        conjuncts.push(Formula::neq(Term::var("p"), Term::Str(t)));
    }
    Formula::exists("p", Formula::and(conjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_domains::{DecidableTheory, Presburger, TraceDomain};

    #[test]
    fn genealogy_state_is_reproducible() {
        let a = genealogy_state(50, 30, 7);
        let b = genealogy_state(50, 30, 7);
        assert_eq!(a, b);
        assert!(a.size() <= 30);
    }

    #[test]
    fn genealogy_queries_parse_and_typecheck() {
        let schema = Schema::new().with_relation("F", 2);
        for (_, q) in genealogy_queries() {
            let sig = schema.extend_signature(fq_logic::Signature::new());
            assert!(sig.check(&q).is_ok());
        }
    }

    #[test]
    fn presburger_workload_is_decidable() {
        for depth in 1..=3 {
            let s = presburger_sentence(depth, 42);
            assert!(s.is_sentence());
            assert!(Presburger.decide(&s).is_ok(), "depth {depth}");
        }
    }

    #[test]
    fn de_systems_are_satisfiable() {
        for n in 1..=6 {
            let sys = de_system(n, 11);
            assert!(sys.satisfiable(), "n = {n}");
            assert!(sys.witness().is_some());
        }
    }

    #[test]
    fn trace_qe_sentences_decide_true() {
        // Excluding n of the n+3 traces always leaves one.
        for n in 0..3 {
            let s = trace_qe_sentence(n);
            assert!(TraceDomain.decide(&s).unwrap(), "n = {n}");
        }
    }
}
