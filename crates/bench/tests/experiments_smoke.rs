//! Smoke test: the experiments binary must pass all rows.

use std::process::Command;

#[test]
fn experiments_binary_reports_zero_failures() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .output()
        .expect("experiments binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "experiments failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 failures"), "{stdout}");
    // Every experiment id appears.
    for id in 1..=19 {
        assert!(
            stdout.contains(&format!("[E{id:02}]")),
            "missing experiment E{id:02}"
        );
    }
}
