//! Property-based tests for the Turing substrate.

use fq_turing::builders::{trie_machine, TrieSpec};
use fq_turing::encode::{decode_machine, encode_machine};
use fq_turing::exec::run_bounded;
use fq_turing::machine::{Machine, Move, Trans};
use fq_turing::sym::{classify, Sort, Sym};
use fq_turing::trace::{
    count_traces, has_at_least_traces, has_exactly_traces, p_predicate, trace_string,
    validate_trace, TraceCount,
};
use proptest::prelude::*;

/// Random machines with 1–3 states and arbitrary transition tables.
fn arb_machine() -> impl Strategy<Value = Machine> {
    (1u32..=3).prop_flat_map(|n| {
        let slot = prop_oneof![
            Just(None),
            (0u32..n, any::<bool>(), 0u8..3).prop_map(move |(next, wr, mv)| {
                Some(Trans {
                    write: if wr { Sym::I } else { Sym::B },
                    mv: match mv {
                        0 => Move::Left,
                        1 => Move::Right,
                        _ => Move::Stay,
                    },
                    next: next + 1,
                })
            }),
        ];
        proptest::collection::vec(slot, 2 * n as usize).prop_map(move |slots| {
            let mut m = Machine::new(n);
            for (i, s) in slots.into_iter().enumerate() {
                if let Some(t) = s {
                    let state = (i / 2) as u32 + 1;
                    let sym = if i % 2 == 0 { Sym::I } else { Sym::B };
                    m.set_transition(state, sym, t);
                }
            }
            m
        })
    })
}

/// Random input words over {1,&} of length 0–8.
fn arb_word() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('1'), Just('&')], 0..8)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encoding_round_trips(m in arb_machine()) {
        let enc = encode_machine(&m);
        prop_assert_eq!(decode_machine(&enc), Some(m));
    }

    #[test]
    fn encoded_machines_classify_as_machines(m in arb_machine()) {
        prop_assert_eq!(classify(&encode_machine(&m)), Sort::Machine);
    }

    #[test]
    fn generated_traces_validate_and_round_trip(m in arb_machine(), w in arb_word(), k in 1usize..6) {
        if let Some(t) = trace_string(&m, &w, k) {
            let info = validate_trace(&t).expect("generated trace must validate");
            prop_assert_eq!(&info.word, &w);
            prop_assert_eq!(info.snapshots, k);
            prop_assert_eq!(info.machine, m.clone());
            prop_assert_eq!(classify(&t), Sort::Trace);
            prop_assert!(p_predicate(&encode_machine(&m), &w, &t));
        }
    }

    #[test]
    fn trace_exists_iff_d_predicate(m in arb_machine(), w in arb_word(), k in 1usize..6) {
        prop_assert_eq!(
            trace_string(&m, &w, k).is_some(),
            has_at_least_traces(&m, &w, k)
        );
    }

    #[test]
    fn e_is_boundary_of_d(m in arb_machine(), w in arb_word(), j in 1usize..6) {
        let e = has_exactly_traces(&m, &w, j);
        let d = has_at_least_traces(&m, &w, j) && !has_at_least_traces(&m, &w, j + 1);
        prop_assert_eq!(e, d);
    }

    #[test]
    fn trace_count_matches_run(m in arb_machine(), w in arb_word()) {
        match count_traces(&m, &w, 64) {
            TraceCount::Exactly(n) => {
                prop_assert!(n >= 1);
                prop_assert_eq!(run_bounded(&m, &w, 64).steps(), Some(n - 1));
                prop_assert!(trace_string(&m, &w, n).is_some());
                prop_assert!(trace_string(&m, &w, n + 1).is_none());
            }
            TraceCount::AtLeast(n) => {
                prop_assert!(trace_string(&m, &w, n - 1).is_some());
            }
        }
    }

    #[test]
    fn words_always_classify_as_words(w in arb_word()) {
        prop_assert_eq!(classify(&w), Sort::Word);
    }

    #[test]
    fn classification_is_total_and_single_sorted(s in "[1&*#]{0,12}") {
        // classify returns exactly one sort and never panics on domain
        // alphabet strings.
        let _ = classify(&s);
    }

    #[test]
    fn trace_validation_rejects_word_swaps(m in arb_machine(), w in arb_word(), v in arb_word()) {
        if let Some(t) = trace_string(&m, &w, 2) {
            let enc = encode_machine(&m);
            // P with the wrong word must fail unless the words coincide.
            prop_assert_eq!(p_predicate(&enc, &v, &t), v == w);
        }
    }

    #[test]
    fn trie_machine_satisfies_its_spec(
        words in proptest::collection::vec((arb_word(), 1usize..5), 1..4),
        split in 0usize..4,
    ) {
        let split = split.min(words.len());
        let spec = TrieSpec {
            at_least: words[..split].to_vec(),
            exactly: words[split..].to_vec(),
        };
        if let Ok(m) = trie_machine(&spec) {
            for (v, i) in &spec.at_least {
                prop_assert!(has_at_least_traces(&m, v, *i), "D_{i}({v}) violated");
            }
            for (u, j) in &spec.exactly {
                prop_assert!(has_exactly_traces(&m, u, *j), "E_{j}({u}) violated");
            }
        }
    }

    #[test]
    fn junk_states_never_change_behaviour(m in arb_machine(), w in arb_word(), extra in 1u32..4) {
        let j = m.with_junk_states(extra);
        prop_assert_eq!(run_bounded(&m, &w, 64), run_bounded(&j, &w, 64));
        prop_assert_ne!(encode_machine(&m), encode_machine(&j));
    }
}
