//! Single-tape Turing machines over the work alphabet `{1, &}`.
//!
//! States are numbered from 1 (the paper's first snapshot "1 ⋆ w ⋆" shows
//! the machine in internal state 1). A machine halts when no transition is
//! defined for its current (state, symbol) pair.

use crate::sym::Sym;

/// Head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Move {
    Left,
    Right,
    Stay,
}

impl Move {
    /// Offset applied to the head position.
    pub fn offset(self) -> isize {
        match self {
            Move::Left => -1,
            Move::Right => 1,
            Move::Stay => 0,
        }
    }
}

/// A transition: write a symbol, move the head, enter the next state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Trans {
    pub write: Sym,
    pub mv: Move,
    pub next: u32,
}

/// A Turing machine: a transition table indexed by (state, symbol).
///
/// Invariants (checked by [`Machine::new`] and the builder methods):
/// * there is at least one state;
/// * every transition's `next` state exists.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Machine {
    n_states: u32,
    /// `delta[(q-1) * 2 + sym.index()]`.
    delta: Vec<Option<Trans>>,
}

impl Machine {
    /// Create a machine with `n_states` states and no transitions
    /// (it halts immediately on every input).
    ///
    /// # Panics
    ///
    /// Panics if `n_states == 0`.
    pub fn new(n_states: u32) -> Self {
        assert!(n_states >= 1, "a machine needs at least one state");
        Machine {
            n_states,
            delta: vec![None; n_states as usize * 2],
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Look up the transition for (state, symbol). States are 1-based.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transition(&self, state: u32, sym: Sym) -> Option<Trans> {
        assert!(
            state >= 1 && state <= self.n_states,
            "state {state} out of range"
        );
        self.delta[(state as usize - 1) * 2 + sym.index()]
    }

    /// Define the transition for (state, symbol).
    ///
    /// # Panics
    ///
    /// Panics if `state` or `trans.next` is out of range.
    pub fn set_transition(&mut self, state: u32, sym: Sym, trans: Trans) {
        assert!(
            state >= 1 && state <= self.n_states,
            "state {state} out of range"
        );
        assert!(
            trans.next >= 1 && trans.next <= self.n_states,
            "next state {} out of range",
            trans.next
        );
        self.delta[(state as usize - 1) * 2 + sym.index()] = Some(trans);
    }

    /// Remove the transition for (state, symbol), making it a halt point.
    pub fn clear_transition(&mut self, state: u32, sym: Sym) {
        assert!(
            state >= 1 && state <= self.n_states,
            "state {state} out of range"
        );
        self.delta[(state as usize - 1) * 2 + sym.index()] = None;
    }

    /// Fluent transition definition for building machines in tests and the
    /// builders module.
    pub fn with_transition(
        mut self,
        state: u32,
        sym: Sym,
        write: Sym,
        mv: Move,
        next: u32,
    ) -> Self {
        self.set_transition(state, sym, Trans { write, mv, next });
        self
    }

    /// Iterate over all defined transitions as `(state, sym, trans)`.
    pub fn transitions(&self) -> impl Iterator<Item = (u32, Sym, Trans)> + '_ {
        self.delta.iter().enumerate().filter_map(|(i, t)| {
            t.map(|t| {
                let state = (i / 2) as u32 + 1;
                let sym = if i % 2 == 0 { Sym::I } else { Sym::B };
                (state, sym, t)
            })
        })
    }

    /// Number of defined transitions.
    pub fn n_transitions(&self) -> usize {
        self.delta.iter().filter(|t| t.is_some()).count()
    }

    /// Append `extra` fresh, unreachable states (each with a self-loop).
    ///
    /// The resulting machine is behaviourally equivalent but has a
    /// different encoding — the paper's "there are infinitely many
    /// behaviorally equivalent but syntactically different machines"
    /// (proof of Theorem A.3, Case T−1).
    pub fn with_junk_states(&self, extra: u32) -> Machine {
        let mut m = Machine::new(self.n_states + extra);
        for (q, s, t) in self.transitions() {
            m.set_transition(q, s, t);
        }
        for q in self.n_states + 1..=self.n_states + extra {
            m.set_transition(
                q,
                Sym::I,
                Trans {
                    write: Sym::I,
                    mv: Move::Stay,
                    next: q,
                },
            );
        }
        m
    }
}

impl std::fmt::Display for Machine {
    /// Render the transition table, one row per (state, symbol) pair.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "machine with {} state(s):", self.n_states)?;
        for state in 1..=self.n_states {
            for sym in [Sym::I, Sym::B] {
                match self.transition(state, sym) {
                    None => writeln!(f, "  δ({state}, {}) = HALT", sym.to_char())?,
                    Some(t) => writeln!(
                        f,
                        "  δ({state}, {}) = ({}, {}, {})",
                        sym.to_char(),
                        t.write.to_char(),
                        match t.mv {
                            Move::Left => "L",
                            Move::Right => "R",
                            Move::Stay => "S",
                        },
                        t.next
                    )?,
                }
            }
        }
        Ok(())
    }
}

impl Machine {
    /// Sequential composition: run `self`; wherever `self` would halt,
    /// continue as `other` from its start state (one extra bridging step
    /// is taken at each junction, leaving the tape and head unchanged).
    ///
    /// The composed machine halts on `w` iff `self` halts on `w` **and**
    /// `other` halts on the configuration `self` leaves behind — a handy
    /// generator of total machines with composite running times.
    pub fn then(&self, other: &Machine) -> Machine {
        let offset = self.n_states;
        let mut m = Machine::new(offset + other.n_states);
        for (q, s, t) in self.transitions() {
            m.set_transition(q, s, t);
        }
        // Bridge self's halt points into other's start state.
        for q in 1..=self.n_states {
            for s in [Sym::I, Sym::B] {
                if self.transition(q, s).is_none() {
                    m.set_transition(
                        q,
                        s,
                        Trans {
                            write: s,
                            mv: Move::Stay,
                            next: offset + 1,
                        },
                    );
                }
            }
        }
        for (q, s, t) in other.transitions() {
            m.set_transition(
                q + offset,
                s,
                Trans {
                    write: t.write,
                    mv: t.mv,
                    next: t.next + offset,
                },
            );
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_machine_has_no_transitions() {
        let m = Machine::new(2);
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.n_transitions(), 0);
        assert!(m.transition(1, Sym::I).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_panics() {
        let _ = Machine::new(0);
    }

    #[test]
    fn set_and_get_transition() {
        let m = Machine::new(2).with_transition(1, Sym::I, Sym::B, Move::Right, 2);
        let t = m.transition(1, Sym::I).unwrap();
        assert_eq!(t.write, Sym::B);
        assert_eq!(t.mv, Move::Right);
        assert_eq!(t.next, 2);
        assert!(m.transition(1, Sym::B).is_none());
    }

    #[test]
    #[should_panic(expected = "next state")]
    fn next_state_out_of_range_panics() {
        let _ = Machine::new(1).with_transition(1, Sym::I, Sym::I, Move::Right, 2);
    }

    #[test]
    fn transitions_iterator_lists_all() {
        let m = Machine::new(2)
            .with_transition(1, Sym::I, Sym::I, Move::Right, 1)
            .with_transition(2, Sym::B, Sym::I, Move::Left, 1);
        let listed: Vec<_> = m.transitions().collect();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].0, 1);
        assert_eq!(listed[1].0, 2);
    }

    #[test]
    fn junk_states_preserve_original_transitions() {
        let m = Machine::new(1).with_transition(1, Sym::I, Sym::I, Move::Right, 1);
        let j = m.with_junk_states(3);
        assert_eq!(j.n_states(), 4);
        assert_eq!(j.transition(1, Sym::I), m.transition(1, Sym::I));
        // The junk states self-loop.
        assert_eq!(j.transition(3, Sym::I).unwrap().next, 3);
    }

    #[test]
    fn clear_transition_creates_halt_point() {
        let mut m = Machine::new(1).with_transition(1, Sym::B, Sym::B, Move::Right, 1);
        m.clear_transition(1, Sym::B);
        assert!(m.transition(1, Sym::B).is_none());
    }

    #[test]
    fn display_lists_every_row() {
        let m = Machine::new(1).with_transition(1, Sym::I, Sym::B, Move::Right, 1);
        let text = m.to_string();
        assert!(text.contains("δ(1, 1) = (&, R, 1)"));
        assert!(text.contains("δ(1, &) = HALT"));
    }

    #[test]
    fn move_offsets() {
        assert_eq!(Move::Left.offset(), -1);
        assert_eq!(Move::Right.offset(), 1);
        assert_eq!(Move::Stay.offset(), 0);
    }
}
