//! # fq-turing — the Turing-machine substrate of the trace domain
//!
//! Section 3 of Stolboushkin & Taitslin builds its counterexample domain
//! **T** out of Turing-machine computations:
//!
//! * machines are single-tape TMs over the work alphabet `{1, &}` (where
//!   `&` is the blank), starting in state 1 on the leftmost character of an
//!   input word `w ∈ {1,&}*`;
//! * machines are *themselves* strings over `{1, &, *}` (with `*` a
//!   delimiter; every machine contains at least one `*`) — see [`encode`];
//! * a *trace* of machine `M` in word `w` is `M`, followed by the snapshots
//!   of a partial computation, separated by a fourth letter (rendered `#`
//!   here); `M` has finitely many traces in `w` iff it halts on `w` — see
//!   [`trace`].
//!
//! This crate provides machines, the string encoding, a step-bounded
//! executor, trace generation/validation, the classification of arbitrary
//! strings into the paper's four sorts (machine / input word / trace /
//! other), an exhaustive machine enumerator (Theorem 3.1 needs "a recursive
//! enumeration of all, total or not, Turing machines"), and a library of
//! machine builders, including the Lemma A.2 trie witness.
//!
//! ## Example
//!
//! ```
//! use fq_turing::{builders, trace};
//!
//! // A machine that scans right over 1s and halts at the first blank.
//! let m = builders::scan_right_halt_on_blank();
//! // On input "111" it halts after 3 steps, so it has exactly 4 traces.
//! assert_eq!(trace::count_traces(&m, "111", 100), trace::TraceCount::Exactly(4));
//! ```

pub mod builders;
pub mod encode;
pub mod enumerate;
pub mod exec;
pub mod machine;
pub mod sym;
pub mod tape;
pub mod trace;

pub use encode::{decode_machine, encode_machine};
pub use enumerate::MachineEnumerator;
pub use exec::{run_bounded, Configuration, RunOutcome};
pub use machine::{Machine, Move, Trans};
pub use sym::{classify, Sort, Sym};
pub use trace::{count_traces, trace_string, validate_trace, TraceCount};
