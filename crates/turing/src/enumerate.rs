//! Exhaustive enumeration of all Turing machines.
//!
//! Theorem 3.1 uses "a recursive enumeration of all, total or not, Turing
//! machines, M₁, M₂, …". [`MachineEnumerator`] provides it: machines are
//! listed by state count, and within a fixed state count by a mixed-radix
//! counter over the transition table (each of the `2n` table slots ranges
//! over `undefined` plus the `6n` possible transitions).

use crate::machine::{Machine, Move, Trans};
use crate::sym::Sym;

/// Lazy enumeration of every Turing machine, smallest first.
#[derive(Clone, Debug)]
pub struct MachineEnumerator {
    n_states: u32,
    /// Mixed-radix counter: one digit per (state, symbol) slot, each in
    /// `0 ..= 6 * n_states` (0 = undefined).
    counter: Vec<usize>,
    exhausted_current: bool,
}

impl MachineEnumerator {
    /// Start the enumeration at the one-state machines.
    pub fn new() -> Self {
        MachineEnumerator {
            n_states: 1,
            counter: vec![0; 2],
            exhausted_current: false,
        }
    }

    /// Number of machines with exactly `n` states: `(6n + 1)^(2n)`.
    pub fn count_with_states(n: u32) -> u128 {
        let base = 6 * n as u128 + 1;
        base.pow(2 * n)
    }

    fn decode_digit(digit: usize, n_states: u32) -> Option<Trans> {
        if digit == 0 {
            return None;
        }
        let d = digit - 1;
        let next = (d % n_states as usize) as u32 + 1;
        let rest = d / n_states as usize;
        let write = if rest.is_multiple_of(2) {
            Sym::I
        } else {
            Sym::B
        };
        let mv = match rest / 2 {
            0 => Move::Left,
            1 => Move::Right,
            _ => Move::Stay,
        };
        Some(Trans { write, mv, next })
    }

    fn current_machine(&self) -> Machine {
        let mut m = Machine::new(self.n_states);
        for (slot, &digit) in self.counter.iter().enumerate() {
            if let Some(t) = Self::decode_digit(digit, self.n_states) {
                let state = (slot / 2) as u32 + 1;
                let sym = if slot % 2 == 0 { Sym::I } else { Sym::B };
                m.set_transition(state, sym, t);
            }
        }
        m
    }

    fn advance(&mut self) {
        let radix = 6 * self.n_states as usize + 1;
        for digit in self.counter.iter_mut() {
            *digit += 1;
            if *digit < radix {
                return;
            }
            *digit = 0;
        }
        // Carried past the last digit: move to the next state count.
        self.n_states += 1;
        self.counter = vec![0; 2 * self.n_states as usize];
        self.exhausted_current = false;
    }
}

impl Default for MachineEnumerator {
    fn default() -> Self {
        Self::new()
    }
}

impl Iterator for MachineEnumerator {
    type Item = Machine;

    fn next(&mut self) -> Option<Machine> {
        let m = self.current_machine();
        self.advance();
        Some(m)
    }
}

/// The `k`-th machine of the enumeration (0-based). Convenience for tests
/// and experiments; prefer iterating for bulk use.
pub fn nth_machine(k: usize) -> Machine {
    MachineEnumerator::new()
        .nth(k)
        .expect("the enumeration is infinite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_machine;
    use std::collections::BTreeSet;

    #[test]
    fn first_machine_is_the_empty_one_state_machine() {
        let m = nth_machine(0);
        assert_eq!(m.n_states(), 1);
        assert_eq!(m.n_transitions(), 0);
    }

    #[test]
    fn one_state_machines_counted() {
        assert_eq!(MachineEnumerator::count_with_states(1), 49);
        let machines: Vec<_> = MachineEnumerator::new().take(49).collect();
        assert!(machines.iter().all(|m| m.n_states() == 1));
        // The 50th machine has two states.
        assert_eq!(nth_machine(49).n_states(), 2);
    }

    #[test]
    fn enumeration_has_no_duplicates_in_prefix() {
        let encodings: BTreeSet<String> = MachineEnumerator::new()
            .take(2000)
            .map(|m| encode_machine(&m))
            .collect();
        assert_eq!(encodings.len(), 2000);
    }

    #[test]
    fn enumeration_hits_known_machines() {
        // The looper and the scanner are 1-state machines, so they appear
        // among the first 49.
        let first: Vec<_> = MachineEnumerator::new().take(49).collect();
        assert!(first.contains(&crate::builders::looper()));
        assert!(first.contains(&crate::builders::scan_right_halt_on_blank()));
        assert!(first.contains(&crate::builders::halter()));
        assert!(first.contains(&crate::builders::erase_and_halt()));
    }

    #[test]
    fn every_enumerated_machine_is_well_formed() {
        for m in MachineEnumerator::new().take(500) {
            for (_, _, t) in m.transitions() {
                assert!(t.next >= 1 && t.next <= m.n_states());
            }
            // Round-trips through the encoding.
            assert_eq!(crate::encode::decode_machine(&encode_machine(&m)), Some(m));
        }
    }

    #[test]
    fn digit_decoding_covers_all_transitions() {
        let mut seen = BTreeSet::new();
        for d in 0..=6 {
            if let Some(t) = MachineEnumerator::decode_digit(d, 1) {
                seen.insert((t.write, t.mv, t.next));
            }
        }
        assert_eq!(seen.len(), 6);
    }
}
