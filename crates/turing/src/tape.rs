//! The bi-infinite tape.
//!
//! The tape initially holds the input word at cells `0 .. |w|` and blanks
//! everywhere else. Cells are stored in a growable `Vec` with an origin
//! offset so that leftward excursions stay O(1) amortized.

use crate::sym::Sym;

/// A bi-infinite tape of `{1, &}` cells, blank by default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tape {
    /// Stored cells; cell `i` of the tape lives at `cells[(i + origin)]`.
    cells: Vec<Sym>,
    /// Offset of tape cell 0 within `cells`.
    origin: isize,
}

impl Tape {
    /// A tape holding `word` at positions `0 .. word.len()`.
    pub fn from_word(word: &[Sym]) -> Self {
        Tape {
            cells: word.to_vec(),
            origin: 0,
        }
    }

    /// Read the symbol at `pos` (blank outside the stored span).
    pub fn read(&self, pos: isize) -> Sym {
        let idx = pos + self.origin;
        if idx < 0 || idx as usize >= self.cells.len() {
            Sym::B
        } else {
            self.cells[idx as usize]
        }
    }

    /// Write a symbol at `pos`, growing the stored span if needed.
    pub fn write(&mut self, pos: isize, sym: Sym) {
        let mut idx = pos + self.origin;
        if idx < 0 {
            let grow = (-idx) as usize;
            let mut new_cells = Vec::with_capacity(self.cells.len() + grow);
            new_cells.extend(std::iter::repeat_n(Sym::B, grow));
            new_cells.extend_from_slice(&self.cells);
            self.cells = new_cells;
            self.origin += grow as isize;
            idx = 0;
        }
        let idx = idx as usize;
        if idx >= self.cells.len() {
            if sym == Sym::B {
                // Writing blank beyond the span is a no-op.
                return;
            }
            self.cells.resize(idx + 1, Sym::B);
        }
        self.cells[idx] = sym;
    }

    /// The positions of the leftmost and rightmost non-blank cells, if any.
    pub fn nonblank_span(&self) -> Option<(isize, isize)> {
        let first = self.cells.iter().position(|&s| s == Sym::I)?;
        let last = self
            .cells
            .iter()
            .rposition(|&s| s == Sym::I)
            .expect("first exists");
        Some((first as isize - self.origin, last as isize - self.origin))
    }

    /// The symbols in `lo ..= hi` as a vector.
    pub fn window(&self, lo: isize, hi: isize) -> Vec<Sym> {
        (lo..=hi).map(|p| self.read(p)).collect()
    }

    /// The paper's *result of the computation*: the leftmost maximal run of
    /// `1`s on the tape, or the empty word if the tape is all blank.
    pub fn output(&self) -> Vec<Sym> {
        match self.nonblank_span() {
            None => Vec::new(),
            Some((lo, _)) => {
                let mut out = Vec::new();
                let mut p = lo;
                while self.read(p) == Sym::I {
                    out.push(Sym::I);
                    p += 1;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::parse_word;

    fn tape(s: &str) -> Tape {
        Tape::from_word(&parse_word(s).unwrap())
    }

    #[test]
    fn reads_word_and_blanks() {
        let t = tape("1&1");
        assert_eq!(t.read(0), Sym::I);
        assert_eq!(t.read(1), Sym::B);
        assert_eq!(t.read(2), Sym::I);
        assert_eq!(t.read(-1), Sym::B);
        assert_eq!(t.read(3), Sym::B);
    }

    #[test]
    fn write_right_of_span() {
        let mut t = tape("1");
        t.write(4, Sym::I);
        assert_eq!(t.read(4), Sym::I);
        assert_eq!(t.read(2), Sym::B);
    }

    #[test]
    fn write_left_of_span() {
        let mut t = tape("1");
        t.write(-3, Sym::I);
        assert_eq!(t.read(-3), Sym::I);
        assert_eq!(t.read(0), Sym::I);
        assert_eq!(t.read(-1), Sym::B);
    }

    #[test]
    fn blank_write_outside_span_is_noop() {
        let mut t = tape("1");
        t.write(100, Sym::B);
        assert_eq!(t.read(100), Sym::B);
    }

    #[test]
    fn nonblank_span_tracks_ones_only() {
        let t = tape("&1&&1&");
        assert_eq!(t.nonblank_span(), Some((1, 4)));
        assert_eq!(tape("&&&").nonblank_span(), None);
        assert_eq!(tape("").nonblank_span(), None);
    }

    #[test]
    fn window_extraction() {
        let t = tape("1&1");
        assert_eq!(t.window(-1, 3), parse_word("&1&1&").unwrap());
    }

    #[test]
    fn output_is_leftmost_run_of_ones() {
        assert_eq!(tape("&&11&111").output(), parse_word("11").unwrap());
        assert_eq!(tape("&&&").output(), Vec::new());
        let mut t = tape("1");
        t.write(-2, Sym::I);
        // Leftmost run is the isolated 1 at -2.
        assert_eq!(t.output(), parse_word("1").unwrap());
    }

    #[test]
    fn overwrite_in_place() {
        let mut t = tape("111");
        t.write(1, Sym::B);
        assert_eq!(t.window(0, 2), parse_word("1&1").unwrap());
    }
}
