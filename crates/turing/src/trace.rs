//! Traces of partial computations — the heart of the domain **T**.
//!
//! A trace of machine `M` in word `w` with `k ≥ 1` snapshots is the string
//!
//! ```text
//! enc(M) # q₁ # t₁ # p₁ # q₂ # t₂ # p₂ # … # q_k # t_k # p_k
//! ```
//!
//! where snapshot `i` records the configuration after `i − 1` steps:
//! internal state `qᵢ` in unary, the tape window `tᵢ`, and the head
//! position `pᵢ` within the window in unary. Following the paper, the first
//! snapshot is always `1 # w # ` — state 1, the input word **verbatim**,
//! head position 0 — so a trace determines its input word exactly
//! (`w(x)` of the Reach theory); later snapshots use the minimal window
//! covering the non-blank cells and the head.
//!
//! `M` has one trace in `w` for every `k` such that the computation reaches
//! `k` configurations, hence:
//!
//! * if `M` halts on `w` after `h` steps — exactly `h + 1` traces;
//! * if `M` runs forever — infinitely many traces.
//!
//! This is the pivot of every Section 3 theorem: the finiteness of the
//! query `P(M, c, x)` in a state is the halting of `M` on the state's word.

use crate::encode::{decode_machine, encode_machine, unary};
use crate::exec::{run_bounded, Configuration, RunOutcome};
use crate::machine::Machine;
use crate::sym::parse_word;

/// A parsed, validated trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceInfo {
    /// The machine whose computation the trace records.
    pub machine: Machine,
    /// The canonical machine string (the trace's first segment).
    pub machine_str: String,
    /// The input word, recovered verbatim from the first snapshot.
    pub word: String,
    /// Number of snapshots (≥ 1).
    pub snapshots: usize,
}

/// Build the trace of `m` in `word` with exactly `snapshots` snapshots.
///
/// Returns `None` if the computation has fewer than `snapshots`
/// configurations (i.e. the machine halts too early) or if `snapshots == 0`.
///
/// # Panics
///
/// Panics if `word` is not over `{1, &}`.
pub fn trace_string(m: &Machine, word: &str, snapshots: usize) -> Option<String> {
    if snapshots == 0 {
        return None;
    }
    let w = parse_word(word).expect("input word must be over {1, &}");
    let mut out = encode_machine(m);
    // First snapshot: state 1, the word verbatim, position 0.
    out.push('#');
    out.push('1');
    out.push('#');
    out.push_str(word);
    out.push('#');
    let mut config = Configuration::initial(&w);
    for _ in 1..snapshots {
        if !config.step(m) {
            return None;
        }
        out.push('#');
        out.push_str(&config.snapshot());
    }
    Some(out)
}

/// Validate a string as a trace; on success return its parsed content.
///
/// This is the recursive membership test for sort **T** and (together with
/// the machine/word checks) the paper's ternary predicate:
/// `P(M, w, p)` holds iff `validate_trace(p)` succeeds with machine string
/// `M` and word `w`.
pub fn validate_trace(s: &str) -> Option<TraceInfo> {
    let segments: Vec<&str> = s.split('#').collect();
    // 1 machine segment + 3 per snapshot.
    if segments.len() < 4 || !(segments.len() - 1).is_multiple_of(3) {
        return None;
    }
    let machine_str = segments[0];
    let machine = decode_machine(machine_str)?;
    let n_snapshots = (segments.len() - 1) / 3;

    // First snapshot: state 1, word verbatim, position 0.
    if unary(segments[1]) != Some(1) {
        return None;
    }
    let word_str = segments[2];
    let word = parse_word(word_str)?;
    if !segments[3].is_empty() {
        return None;
    }

    // Later snapshots must replay the computation.
    let mut config = Configuration::initial(&word);
    for i in 1..n_snapshots {
        if !config.step(&machine) {
            return None;
        }
        let expected = config.snapshot();
        let actual = format!(
            "{}#{}#{}",
            segments[1 + 3 * i],
            segments[2 + 3 * i],
            segments[3 + 3 * i]
        );
        if expected != actual {
            return None;
        }
    }

    Some(TraceInfo {
        machine,
        machine_str: machine_str.to_string(),
        word: word_str.to_string(),
        snapshots: n_snapshots,
    })
}

/// The paper's predicate `P(M, w, p)`: `p` is a trace of machine-string `M`
/// in word `w`. All three arguments are plain strings; the predicate is
/// false whenever any argument has the wrong shape.
pub fn p_predicate(machine_str: &str, word: &str, trace: &str) -> bool {
    match validate_trace(trace) {
        Some(info) => info.machine_str == machine_str && info.word == word,
        None => false,
    }
}

/// A bounded count of the traces of a machine in a word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCount {
    /// The machine halts; it has exactly this many traces.
    Exactly(usize),
    /// The machine was still running after the step budget; it has at
    /// least this many traces (and, if it never halts, infinitely many).
    AtLeast(usize),
}

/// Count the traces of `m` in `word`, simulating at most `budget` steps.
pub fn count_traces(m: &Machine, word: &str, budget: usize) -> TraceCount {
    match run_bounded(m, word, budget) {
        RunOutcome::Halted { steps, .. } => TraceCount::Exactly(steps + 1),
        RunOutcome::StillRunning => TraceCount::AtLeast(budget + 2),
    }
}

/// The Reach-theory predicate `D_i(M, w)`: machine `m` has **at least**
/// `i` different traces in `word`. Decided by simulating `i − 1` steps.
///
/// `D_0` is vacuously true; `D_1` holds for every machine/word pair (the
/// one-snapshot trace always exists).
pub fn has_at_least_traces(m: &Machine, word: &str, i: usize) -> bool {
    if i <= 1 {
        return true;
    }
    match run_bounded(m, word, i - 1) {
        RunOutcome::Halted { steps, .. } => steps + 1 >= i,
        RunOutcome::StillRunning => true,
    }
}

/// The Reach-theory predicate `E_j(M, w)`: machine `m` has **exactly** `j`
/// traces in `word`, i.e. halts after exactly `j − 1` steps. `E_0` is
/// always false (there is always at least one trace).
pub fn has_exactly_traces(m: &Machine, word: &str, j: usize) -> bool {
    if j == 0 {
        return false;
    }
    matches!(run_bounded(m, word, j - 1), RunOutcome::Halted { steps, .. } if steps == j - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn single_snapshot_trace_always_exists() {
        let m = Machine::new(1);
        let t = trace_string(&m, "11", 1).unwrap();
        assert_eq!(t, "*#1#11#");
        let info = validate_trace(&t).unwrap();
        assert_eq!(info.word, "11");
        assert_eq!(info.snapshots, 1);
    }

    #[test]
    fn trace_of_halted_machine_is_bounded() {
        let m = builders::scan_right_halt_on_blank();
        // Halts on "11" after 2 steps: traces with 1, 2, 3 snapshots exist.
        for k in 1..=3 {
            assert!(trace_string(&m, "11", k).is_some(), "k = {k}");
        }
        assert!(trace_string(&m, "11", 4).is_none());
        assert!(trace_string(&m, "11", 0).is_none());
    }

    #[test]
    fn looper_has_unboundedly_many_traces() {
        let m = builders::looper();
        for k in [1, 5, 50] {
            let t = trace_string(&m, "1", k).unwrap();
            let info = validate_trace(&t).unwrap();
            assert_eq!(info.snapshots, k);
        }
    }

    #[test]
    fn generated_traces_validate() {
        let m = builders::scan_right_halt_on_blank();
        for w in ["", "1", "111", "1&1", "&11"] {
            let steps = run_bounded(&m, w, 100).steps().unwrap();
            for k in 1..=steps + 1 {
                let t = trace_string(&m, w, k).unwrap();
                let info = validate_trace(&t).unwrap_or_else(|| panic!("trace invalid: {t}"));
                assert_eq!(info.word, w);
                assert_eq!(info.snapshots, k);
                assert_eq!(info.machine, m);
            }
        }
    }

    #[test]
    fn word_recovered_verbatim_even_with_trailing_blanks() {
        // "1&" and "1" give identical computations but distinct traces.
        let m = builders::looper();
        let t1 = trace_string(&m, "1&", 3).unwrap();
        let t2 = trace_string(&m, "1", 3).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(validate_trace(&t1).unwrap().word, "1&");
        assert_eq!(validate_trace(&t2).unwrap().word, "1");
    }

    #[test]
    fn mutated_trace_rejected() {
        let m = builders::scan_right_halt_on_blank();
        let t = trace_string(&m, "11", 3).unwrap();
        // Flip the final position digit count.
        let mutated = format!("{t}1");
        assert!(validate_trace(&mutated).is_none());
        // Truncate a segment.
        let truncated = &t[..t.len() - 1];
        // (May still be valid if the last segment tolerated it — check
        // against the generator instead.)
        if let Some(info) = validate_trace(truncated) {
            assert_eq!(
                trace_string(&m, &info.word, info.snapshots).as_deref(),
                Some(truncated)
            );
        }
    }

    #[test]
    fn trace_claiming_to_continue_past_halt_rejected() {
        let m = builders::scan_right_halt_on_blank();
        // Valid 3-snapshot trace on "11" (halts after 2 steps)…
        let t = trace_string(&m, "11", 3).unwrap();
        // …forging a 4th snapshot must fail validation.
        let forged = format!("{t}#1#11&#11");
        assert!(validate_trace(&forged).is_none());
    }

    #[test]
    fn p_predicate_checks_all_three_arguments() {
        let m = builders::scan_right_halt_on_blank();
        let enc = encode_machine(&m);
        let t = trace_string(&m, "11", 2).unwrap();
        assert!(p_predicate(&enc, "11", &t));
        assert!(!p_predicate(&enc, "1", &t));
        let other = encode_machine(&builders::looper());
        assert!(!p_predicate(&other, "11", &t));
        assert!(!p_predicate(&enc, "11", "garbage"));
    }

    #[test]
    fn count_traces_halting() {
        let m = builders::scan_right_halt_on_blank();
        assert_eq!(count_traces(&m, "111", 100), TraceCount::Exactly(4));
        assert_eq!(count_traces(&m, "", 100), TraceCount::Exactly(1));
    }

    #[test]
    fn count_traces_budget_exhausted() {
        let m = builders::looper();
        assert_eq!(count_traces(&m, "1", 10), TraceCount::AtLeast(12));
    }

    #[test]
    fn d_predicate_matches_trace_existence() {
        let m = builders::scan_right_halt_on_blank();
        // 3 traces on "11".
        for i in 0..=3 {
            assert!(has_at_least_traces(&m, "11", i), "D_{i} should hold");
        }
        assert!(!has_at_least_traces(&m, "11", 4));
        // Looper: D_i for all i.
        assert!(has_at_least_traces(&builders::looper(), "1", 1000));
    }

    #[test]
    fn e_predicate_is_exact() {
        let m = builders::scan_right_halt_on_blank();
        assert!(has_exactly_traces(&m, "11", 3));
        for j in [0, 1, 2, 4, 5] {
            assert!(!has_exactly_traces(&m, "11", j), "E_{j} should fail");
        }
        assert!(!has_exactly_traces(&builders::looper(), "1", 5));
    }

    #[test]
    fn d_and_e_are_consistent() {
        let m = builders::scan_right_halt_on_blank();
        for w in ["", "1", "11", "1&11"] {
            for j in 1..8 {
                let e = has_exactly_traces(&m, w, j);
                let d = has_at_least_traces(&m, w, j) && !has_at_least_traces(&m, w, j + 1);
                assert_eq!(e, d, "w={w}, j={j}");
            }
        }
    }

    #[test]
    fn trace_count_agrees_with_enumeration() {
        let m = builders::scan_right_halt_on_blank();
        let TraceCount::Exactly(n) = count_traces(&m, "1&1", 100) else {
            panic!("must halt")
        };
        let enumerated = (1..=n + 2)
            .filter(|&k| trace_string(&m, "1&1", k).is_some())
            .count();
        assert_eq!(enumerated, n);
    }
}
