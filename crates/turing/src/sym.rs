//! The tape alphabet and the four-sort classification of domain strings.
//!
//! The domain of the Theory of Traces is the set of **all** strings over the
//! four-letter alphabet `{1, &, *, #}`:
//!
//! * `1` — the unary digit (the only non-blank work symbol);
//! * `&` — the blank / white-space marker;
//! * `*` — the delimiter inside machine encodings;
//! * `#` — the snapshot separator inside traces (the paper prints this
//!   fourth letter as a star-like glyph; we use `#`).
//!
//! Every string falls into exactly one of the paper's four classes
//! ([`Sort`]): input **W**ords, **M**achines, **T**races, and **O**ther
//! words. All four classes are recursive, which is what makes the
//! quantifier elimination of the Appendix effective.

use crate::encode::decode_machine;
use crate::trace::validate_trace;

/// A work-tape symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// The unary digit `1`.
    I,
    /// The blank `&`.
    B,
}

impl Sym {
    /// The character rendering of the symbol.
    pub fn to_char(self) -> char {
        match self {
            Sym::I => '1',
            Sym::B => '&',
        }
    }

    /// Parse a character.
    pub fn from_char(c: char) -> Option<Sym> {
        match c {
            '1' => Some(Sym::I),
            '&' => Some(Sym::B),
            _ => None,
        }
    }

    /// Index used for transition-table lookup.
    pub fn index(self) -> usize {
        match self {
            Sym::I => 0,
            Sym::B => 1,
        }
    }
}

/// Parse an input word over `{1, &}`. Returns `None` if any other
/// character occurs.
pub fn parse_word(s: &str) -> Option<Vec<Sym>> {
    s.chars().map(Sym::from_char).collect()
}

/// Render a word over `{1, &}` as a string.
pub fn word_to_string(w: &[Sym]) -> String {
    w.iter().map(|s| s.to_char()).collect()
}

/// Whether the string belongs to the full domain alphabet `{1,&,*,#}`.
pub fn in_domain_alphabet(s: &str) -> bool {
    s.chars().all(|c| matches!(c, '1' | '&' | '*' | '#'))
}

/// The paper's four sorts of domain element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// A Turing machine: a string over `{1,&,*}` with at least one `*`
    /// that decodes to a valid transition table.
    Machine,
    /// An input word: any string over `{1,&}` (including the empty word ε).
    Word,
    /// A trace: a string containing `#` that validates as a trace of its
    /// embedded machine.
    Trace,
    /// Everything else.
    Other,
}

/// Classify a string into the four sorts. Strings containing characters
/// outside the domain alphabet are classified as [`Sort::Other`]; callers
/// that want to reject them outright should check
/// [`in_domain_alphabet`] first.
pub fn classify(s: &str) -> Sort {
    if s.chars().all(|c| matches!(c, '1' | '&')) {
        return Sort::Word;
    }
    if s.contains('#') {
        if validate_trace(s).is_some() {
            return Sort::Trace;
        }
        return Sort::Other;
    }
    if s.contains('*') && in_domain_alphabet(s) && decode_machine(s).is_some() {
        return Sort::Machine;
    }
    Sort::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::encode::encode_machine;
    use crate::trace::trace_string;

    #[test]
    fn word_round_trip() {
        let w = parse_word("1&&1").unwrap();
        assert_eq!(word_to_string(&w), "1&&1");
    }

    #[test]
    fn invalid_word_chars_rejected() {
        assert!(parse_word("1*1").is_none());
        assert!(parse_word("abc").is_none());
    }

    #[test]
    fn empty_string_is_a_word() {
        assert_eq!(classify(""), Sort::Word);
    }

    #[test]
    fn plain_words_classify_as_words() {
        assert_eq!(classify("111"), Sort::Word);
        assert_eq!(classify("1&1&"), Sort::Word);
    }

    #[test]
    fn encoded_machine_classifies_as_machine() {
        let m = builders::scan_right_halt_on_blank();
        assert_eq!(classify(&encode_machine(&m)), Sort::Machine);
    }

    #[test]
    fn garbage_with_star_is_other() {
        // "**" has three (odd) blocks; "1*" has a malformed block.
        assert_eq!(classify("**"), Sort::Other);
        assert_eq!(classify("1*"), Sort::Other);
        // "***" is the canonical two-state machine with no transitions.
        assert_eq!(classify("***"), Sort::Machine);
    }

    #[test]
    fn valid_trace_classifies_as_trace() {
        let m = builders::scan_right_halt_on_blank();
        let t = trace_string(&m, "11", 1).unwrap();
        assert_eq!(classify(&t), Sort::Trace);
    }

    #[test]
    fn corrupted_trace_is_other() {
        let m = builders::scan_right_halt_on_blank();
        let t = trace_string(&m, "11", 1).unwrap();
        let corrupted = format!("{t}#");
        assert_eq!(classify(&corrupted), Sort::Other);
    }

    #[test]
    fn foreign_characters_are_other() {
        assert_eq!(classify("abc"), Sort::Other);
        assert!(!in_domain_alphabet("abc"));
        assert!(in_domain_alphabet("1&*#"));
    }

    #[test]
    fn sorts_are_mutually_exclusive_on_samples() {
        let m = builders::scan_right_halt_on_blank();
        let enc = encode_machine(&m);
        let t = trace_string(&m, "1", 1).unwrap();
        // A word has neither * nor #; a machine has * but no #; a trace has #.
        assert!(!enc.contains('#'));
        assert!(t.contains('#'));
    }
}
