//! A library of concrete machines used throughout the experiments.
//!
//! Includes the two machine families the paper's proofs construct
//! explicitly:
//!
//! * [`reader`] — the machine witnessing first-order expressibility of the
//!   prefix predicate `B_w` ("a constant Turing machine that reads w and
//!   then goes into an infinite loop (and that, however, stops if the
//!   attempt to read w fails), has at least |w| different traces");
//! * [`trie_machine`] — the Lemma A.2 witness ("this machine (that can
//!   actually be written as a finite automaton) stops at exactly the
//!   specified words in the specified numbers of steps").

use crate::machine::{Machine, Move, Trans};
use crate::sym::{parse_word, Sym};
use std::collections::BTreeMap;

/// One state, both transitions loop moving right: never halts on any input.
pub fn looper() -> Machine {
    Machine::new(1)
        .with_transition(1, Sym::I, Sym::I, Move::Right, 1)
        .with_transition(1, Sym::B, Sym::B, Move::Right, 1)
}

/// One state, no transitions: halts immediately on every input. Total.
pub fn halter() -> Machine {
    Machine::new(1)
}

/// Scans right over `1`s, halting at the first blank. Total; on input `w`
/// it halts after exactly (length of the leading run of `1`s) steps.
pub fn scan_right_halt_on_blank() -> Machine {
    Machine::new(1).with_transition(1, Sym::I, Sym::I, Move::Right, 1)
}

/// Erases the leading run of `1`s, then halts. Total.
pub fn erase_and_halt() -> Machine {
    Machine::new(1).with_transition(1, Sym::I, Sym::B, Move::Right, 1)
}

/// Scans right over `1`s, writes one more `1` at the first blank, and
/// halts. Total: computes unary successor of the leading run.
pub fn unary_increment() -> Machine {
    Machine::new(2)
        .with_transition(1, Sym::I, Sym::I, Move::Right, 1)
        .with_transition(1, Sym::B, Sym::I, Move::Stay, 2)
}

/// Halts after exactly `k` steps on **every** input (a chain of `k + 1`
/// states moving right). Total; has exactly `k + 1` traces in every word.
pub fn run_exactly(k: u32) -> Machine {
    let mut m = Machine::new(k + 1);
    for q in 1..=k {
        for sym in [Sym::I, Sym::B] {
            m.set_transition(
                q,
                sym,
                Trans {
                    write: sym,
                    mv: Move::Right,
                    next: q + 1,
                },
            );
        }
    }
    m
}

/// The `B_w` witness: reads `w` moving right; on the first mismatch it
/// halts, and after reading all of `w` it loops forever. Hence on input
/// `x` it runs forever iff `w` is a prefix of `x·&^ω` (the padded-prefix
/// semantics of `B_w`), and otherwise halts within `|w| − 1` steps, so
/// `B_w(x) ⟺ D_{|w|+1}(reader(w), x)`.
///
/// # Panics
///
/// Panics if `w` is not over `{1, &}`.
pub fn reader(w: &str) -> Machine {
    let word = parse_word(w).expect("reader word must be over {1, &}");
    let n = word.len() as u32;
    if n == 0 {
        return looper();
    }
    // States 1..=n walk the word; state n+1 is the loop state.
    let mut m = Machine::new(n + 1);
    for (t, &expected) in word.iter().enumerate() {
        let q = t as u32 + 1;
        m.set_transition(
            q,
            expected,
            Trans {
                write: expected,
                mv: Move::Right,
                next: q + 1,
            },
        );
        // The mismatching symbol stays undefined: halt.
    }
    for sym in [Sym::I, Sym::B] {
        m.set_transition(
            n + 1,
            sym,
            Trans {
                write: sym,
                mv: Move::Right,
                next: n + 1,
            },
        );
    }
    m
}

/// Scans right to the first blank, then back left to the first blank,
/// then halts. Total with running time 2·(leading ones) + 2 on unary
/// inputs — a quadratic-feeling workload without leaving O(n).
pub fn bouncer() -> Machine {
    Machine::new(2)
        .with_transition(1, Sym::I, Sym::I, Move::Right, 1)
        .with_transition(1, Sym::B, Sym::B, Move::Left, 2)
        .with_transition(2, Sym::I, Sym::I, Move::Left, 2)
    // State 2 on blank: halt.
}

/// Halts iff the padded input starts with `w`; loops otherwise — the
/// complement of [`reader`]. Useful for Theorem 3.3 instance families
/// whose halting set is a prefix cylinder.
///
/// # Panics
///
/// Panics if `w` is not over `{1, &}`.
pub fn halt_on_prefix(w: &str) -> Machine {
    let word = parse_word(w).expect("prefix word must be over {1, &}");
    let n = word.len() as u32;
    if n == 0 {
        return halter();
    }
    // States 1..=n walk the word; a match at depth n halts (no state
    // n+1 transition on anything). A mismatch diverges via the sink.
    let sink = n + 2;
    let mut m = Machine::new(sink);
    for (t, &expected) in word.iter().enumerate() {
        let q = t as u32 + 1;
        let next = if t + 1 == word.len() { n + 1 } else { q + 1 };
        m.set_transition(
            q,
            expected,
            Trans {
                write: expected,
                mv: Move::Right,
                next,
            },
        );
        let other = if expected == Sym::I { Sym::B } else { Sym::I };
        m.set_transition(
            q,
            other,
            Trans {
                write: other,
                mv: Move::Right,
                next: sink,
            },
        );
    }
    // State n+1: all matched — halt (no transitions).
    // Sink: loop forever.
    for sym in [Sym::I, Sym::B] {
        m.set_transition(
            sink,
            sym,
            Trans {
                write: sym,
                mv: Move::Right,
                next: sink,
            },
        );
    }
    m
}

/// A Lemma A.2 constraint system: `at_least` entries `(v, i)` demand
/// `D_i(x, v)` (at least `i` traces in `v`); `exactly` entries `(u, j)`
/// demand `E_j(x, u)` (exactly `j` traces in `u`, i.e. halt after exactly
/// `j − 1` steps).
#[derive(Clone, Debug, Default)]
pub struct TrieSpec {
    pub at_least: Vec<(String, usize)>,
    pub exactly: Vec<(String, usize)>,
}

/// Why a [`TrieSpec`] is unsatisfiable: two constraints force the same
/// (prefix, symbol) decision both ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrieConflict {
    /// The prefix read when the conflict arises.
    pub prefix: String,
    /// The symbol under the head.
    pub symbol: char,
}

/// Build the Lemma A.2 witness machine for a constraint system, or report
/// the conflict that makes it unsatisfiable.
///
/// The machine walks rightwards along a trie of the constraint words
/// (reading padded symbols — positions beyond a word's end read as `&`),
/// halting exactly at the prescribed depths and diverging into a loop
/// state everywhere else. Unlike the lemma, which assumes every word is
/// longer than every index, this builder accepts arbitrary lengths by
/// using the padded symbols; [`crate::trace`]'s `D`/`E` predicates see
/// exactly the same padded cells, so the constraints still come out
/// correct.
///
/// The conflict test reported here coincides with the lemma's arithmetic
/// condition ("for no pair r, q … i_r > j_q and the prefixes of v_r and
/// u_q of length j_q coincide") whenever the lemma's length hypothesis
/// holds; `fq-domains::traces::lemma_a2` property-tests the equivalence.
pub fn trie_machine(spec: &TrieSpec) -> Result<Machine, TrieConflict> {
    // Padded symbol access.
    fn padded(word: &[Sym], t: usize) -> Sym {
        word.get(t).copied().unwrap_or(Sym::B)
    }
    let parse = |w: &str| parse_word(w).expect("constraint word must be over {1, &}");

    // Defined points: (prefix, symbol) pairs where a transition must exist.
    // Halt points: pairs where it must not.
    let mut defined: BTreeMap<(Vec<Sym>, Sym), ()> = BTreeMap::new();
    let mut halts: BTreeMap<(Vec<Sym>, Sym), ()> = BTreeMap::new();

    for (v, i) in &spec.at_least {
        let w = parse(v);
        // Run at least i-1 steps: transitions at depths 0 .. i-2.
        for t in 0..i.saturating_sub(1) {
            let prefix: Vec<Sym> = (0..t).map(|k| padded(&w, k)).collect();
            defined.insert((prefix, padded(&w, t)), ());
        }
    }
    for (u, j) in &spec.exactly {
        let w = parse(u);
        if *j == 0 {
            // E_0 is unsatisfiable: every machine has at least one trace.
            return Err(TrieConflict {
                prefix: String::new(),
                symbol: padded(&w, 0).to_char(),
            });
        }
        for t in 0..j - 1 {
            let prefix: Vec<Sym> = (0..t).map(|k| padded(&w, k)).collect();
            defined.insert((prefix, padded(&w, t)), ());
        }
        let prefix: Vec<Sym> = (0..j - 1).map(|k| padded(&w, k)).collect();
        halts.insert((prefix, padded(&w, j - 1)), ());
    }

    if let Some(((prefix, sym), ())) = halts
        .iter()
        .find(|(k, _)| defined.contains_key(k))
        .map(|(k, v)| (k.clone(), *v))
    {
        return Err(TrieConflict {
            prefix: crate::sym::word_to_string(&prefix),
            symbol: sym.to_char(),
        });
    }

    // States: one per distinct prefix occurring in any point, plus a sink.
    let mut prefixes: Vec<Vec<Sym>> = defined
        .keys()
        .chain(halts.keys())
        .flat_map(|(p, s)| {
            let mut extended = p.clone();
            extended.push(*s);
            [p.clone(), extended]
        })
        .collect();
    prefixes.push(Vec::new());
    prefixes.sort();
    prefixes.dedup();

    let mut state_of: BTreeMap<Vec<Sym>, u32> = BTreeMap::new();
    for (idx, p) in prefixes.iter().enumerate() {
        state_of.insert(p.clone(), idx as u32 + 1);
    }
    let sink = prefixes.len() as u32 + 1;
    let mut m = Machine::new(sink);

    for p in &prefixes {
        let q = state_of[p];
        for sym in [Sym::I, Sym::B] {
            let key = (p.clone(), sym);
            if halts.contains_key(&key) {
                continue; // halt point: leave undefined
            }
            let mut next_prefix = p.clone();
            next_prefix.push(sym);
            let next = state_of.get(&next_prefix).copied().unwrap_or(sink);
            m.set_transition(
                q,
                sym,
                Trans {
                    write: sym,
                    mv: Move::Right,
                    next,
                },
            );
        }
    }
    // Sink loops forever.
    for sym in [Sym::I, Sym::B] {
        m.set_transition(
            sink,
            sym,
            Trans {
                write: sym,
                mv: Move::Right,
                next: sink,
            },
        );
    }
    // The start state must be the empty prefix's state; our state numbering
    // assigned 1 to the lexicographically least prefix, which is the empty
    // one (BTreeMap order on Vec<Sym>), so state 1 is correct.
    debug_assert_eq!(state_of[&Vec::new()], 1);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{halts_within, run_bounded, RunOutcome};
    use crate::trace::{has_at_least_traces, has_exactly_traces};

    #[test]
    fn looper_loops_and_halter_halts() {
        assert!(!halts_within(&looper(), "1&1", 500));
        assert!(halts_within(&halter(), "1&1", 0));
    }

    #[test]
    fn run_exactly_is_input_independent() {
        let m = run_exactly(5);
        for w in ["", "1", "111111111", "&&&"] {
            assert_eq!(run_bounded(&m, w, 100).steps(), Some(5), "w={w}");
            assert!(has_exactly_traces(&m, w, 6));
        }
    }

    #[test]
    fn unary_increment_appends_a_one() {
        match run_bounded(&unary_increment(), "111", 100) {
            RunOutcome::Halted { output, .. } => assert_eq!(output, "1111"),
            _ => panic!("must halt"),
        }
        match run_bounded(&unary_increment(), "", 100) {
            RunOutcome::Halted { output, .. } => assert_eq!(output, "1"),
            _ => panic!("must halt"),
        }
    }

    #[test]
    fn reader_loops_exactly_on_prefix_matches() {
        let m = reader("1&1");
        // Padded-prefix matches: runs forever.
        for x in ["1&1", "1&11", "1&1&&&"] {
            assert!(!halts_within(&m, x, 200), "x={x}");
        }
        // "1&" pads to 1&&&…, mismatching at position 2.
        for x in ["1&", "11", "&", ""] {
            assert!(halts_within(&m, x, 200), "x={x}");
        }
    }

    #[test]
    fn reader_witnesses_b_w_via_d_predicate() {
        // B_w(x) iff D_{|w|+1}(reader(w), x).
        let w = "11&";
        let m = reader(w);
        let cases = [
            ("11&", true),
            ("11&1", true),
            ("11", true), // "11" pads to 11&&&… which starts with 11&
            ("1&", false),
            ("&11", false),
            ("111", false),
        ];
        for (x, expect) in cases {
            assert_eq!(
                has_at_least_traces(&m, x, w.len() + 1),
                expect,
                "B_{{{w}}}({x})"
            );
        }
    }

    #[test]
    fn empty_reader_is_looper() {
        assert_eq!(reader(""), looper());
    }

    #[test]
    fn bouncer_round_trip_runtime() {
        let m = bouncer();
        // On 1^n: n steps right, 1 step onto the blank→left, n steps back
        // over the ones, halt on the left blank: 2n + 2… measured exactly:
        for n in 0..5usize {
            let w = "1".repeat(n);
            let steps = run_bounded(&m, &w, 1000).steps().expect("total");
            assert_eq!(steps, 2 * n + 1, "n = {n}");
        }
    }

    #[test]
    fn halt_on_prefix_halts_exactly_on_the_cylinder() {
        let m = halt_on_prefix("1&1");
        for x in ["1&1", "1&11", "1&1&&"] {
            assert!(halts_within(&m, x, 1000), "should halt on {x}");
        }
        // "1&" pads to 1&&…, matching at the padded position 2? No:
        // padded char 2 is '&' ≠ '1' → mismatch → diverge.
        for x in ["1&", "11", "&", ""] {
            assert!(!halts_within(&m, x, 1000), "should diverge on {x}");
        }
        // Complementarity with reader on concrete inputs.
        let r = reader("1&1");
        for x in ["1&1", "1&", "111", ""] {
            assert_ne!(
                halts_within(&m, x, 1000),
                halts_within(&r, x, 1000),
                "reader and halt_on_prefix must complement on {x}"
            );
        }
    }

    #[test]
    fn halt_on_empty_prefix_is_halter() {
        assert_eq!(halt_on_prefix(""), halter());
    }

    #[test]
    fn composition_runs_both_stages() {
        // scanner then eraser: scan the ones (n steps), bridge (1 step),
        // then erase from the head position — which sits on the blank
        // after the ones, so the eraser halts immediately (1 more step?
        // no: it reads blank → HALT with 0 steps). Total: n + 1 steps.
        let m = scan_right_halt_on_blank().then(&erase_and_halt());
        for n in 0..4usize {
            let w = "1".repeat(n);
            let steps = run_bounded(&m, &w, 1000).steps().expect("total");
            assert_eq!(steps, n + 1, "n = {n}");
        }
        // The composed machine of two total machines is total on samples.
        for w in ["", "1&1", "&&11"] {
            assert!(halts_within(&m, w, 1000));
        }
    }

    #[test]
    fn composition_with_divergent_tail_diverges_after_head_halts() {
        let m = halter().then(&looper());
        assert!(!halts_within(&m, "1", 500));
    }

    #[test]
    fn composition_preserves_tape_effects() {
        // eraser then increment: erase the ones, then write a single 1.
        let m = erase_and_halt().then(&unary_increment());
        match run_bounded(&m, "111", 1000) {
            RunOutcome::Halted { output, .. } => assert_eq!(output, "1"),
            other => panic!("expected halt, got {other:?}"),
        }
    }

    #[test]
    fn trie_machine_meets_exact_constraints() {
        let spec = TrieSpec {
            at_least: vec![],
            exactly: vec![("111111".into(), 3), ("1&1111".into(), 5)],
        };
        let m = trie_machine(&spec).expect("satisfiable");
        assert!(has_exactly_traces(&m, "111111", 3));
        assert!(has_exactly_traces(&m, "1&1111", 5));
    }

    #[test]
    fn trie_machine_meets_at_least_constraints() {
        let spec = TrieSpec {
            at_least: vec![("111111".into(), 4), ("&11111".into(), 2)],
            exactly: vec![("11&111".into(), 4)],
        };
        let m = trie_machine(&spec).expect("satisfiable");
        assert!(has_at_least_traces(&m, "111111", 4));
        assert!(has_at_least_traces(&m, "&11111", 2));
        assert!(has_exactly_traces(&m, "11&111", 4));
    }

    #[test]
    fn trie_machine_detects_lemma_conflict_case_1() {
        // i_r > j_q with coinciding prefixes of length j_q:
        // demand ≥ 5 traces in v but exactly 3 in u where v,u share a
        // 3-prefix.
        let spec = TrieSpec {
            at_least: vec![("111111".into(), 5)],
            exactly: vec![("111&&&".into(), 3)],
        };
        assert!(trie_machine(&spec).is_err());
    }

    #[test]
    fn trie_machine_detects_lemma_conflict_case_2() {
        // j_r > j_q with coinciding prefixes of length j_q.
        let spec = TrieSpec {
            at_least: vec![],
            exactly: vec![("111111".into(), 5), ("111&&&".into(), 3)],
        };
        assert!(trie_machine(&spec).is_err());
    }

    #[test]
    fn trie_machine_no_conflict_when_prefixes_diverge() {
        let spec = TrieSpec {
            at_least: vec![("1&&&&&".into(), 6)],
            exactly: vec![("&11111".into(), 4), ("11&&&&".into(), 3)],
        };
        let m = trie_machine(&spec).expect("satisfiable");
        assert!(has_at_least_traces(&m, "1&&&&&", 6));
        assert!(has_exactly_traces(&m, "&11111", 4));
        assert!(has_exactly_traces(&m, "11&&&&", 3));
    }

    #[test]
    fn trie_machine_e0_unsatisfiable() {
        let spec = TrieSpec {
            at_least: vec![],
            exactly: vec![("11".into(), 0)],
        };
        assert!(trie_machine(&spec).is_err());
    }

    #[test]
    fn trie_machine_duplicate_constraints_ok() {
        let spec = TrieSpec {
            at_least: vec![("1111".into(), 3), ("1111".into(), 3)],
            exactly: vec![("&&&&".into(), 2), ("&&&&".into(), 2)],
        };
        let m = trie_machine(&spec).expect("satisfiable");
        assert!(has_at_least_traces(&m, "1111", 3));
        assert!(has_exactly_traces(&m, "&&&&", 2));
    }

    #[test]
    fn trie_machine_short_words_use_padding() {
        // Word shorter than the index: "1" with E_4 means the machine halts
        // after 3 steps, reading 1, &, & (padded).
        let spec = TrieSpec {
            at_least: vec![],
            exactly: vec![("1".into(), 4)],
        };
        let m = trie_machine(&spec).expect("satisfiable");
        assert!(has_exactly_traces(&m, "1", 4));
        // "1&&" reads identically for the first 3 cells.
        assert!(has_exactly_traces(&m, "1&&", 4));
    }

    #[test]
    fn junk_states_preserve_trie_behaviour() {
        let spec = TrieSpec {
            at_least: vec![("111".into(), 2)],
            exactly: vec![("&&&".into(), 2)],
        };
        let m = trie_machine(&spec).unwrap();
        for extra in 1..4 {
            let j = m.with_junk_states(extra);
            assert!(has_at_least_traces(&j, "111", 2));
            assert!(has_exactly_traces(&j, "&&&", 2));
        }
    }
}
