//! String encoding of Turing machines over `{1, &, *}`.
//!
//! The paper only requires that machines "can be represented as strings in
//! the alphabet `{1, &, *}` with `*` being a delimiter (we require that
//! every machine contain at least one `*`). The details of a particular
//! representation are not otherwise important." This module fixes one:
//!
//! A machine with `n` states is the join, with `*` separators, of `2n`
//! *blocks* — one per (state, symbol) pair in the order
//! `(1,1), (1,&), (2,1), (2,&), …`:
//!
//! * an **empty** block means the transition is undefined (a halt point);
//! * a defined transition `write w, move m, next q` is the block
//!   `1^q & c(w) & c(m)` with `c(1) = 11`, `c(&) = 1`,
//!   `c(L) = 1`, `c(R) = 11`, `c(S) = 111`.
//!
//! With `n ≥ 1` states there are `2n − 1 ≥ 1` separators, satisfying the
//! paper's "at least one `*`" requirement; the one-state machine with no
//! transitions encodes as the single character `*`. Encoding and decoding
//! are mutually inverse, so the set of machine strings is recursive and
//! each machine has exactly one canonical string — behaviourally
//! equivalent machines with extra junk states still get distinct strings,
//! which is what the proof of Theorem A.3 (Case M) needs.

use crate::machine::{Machine, Move, Trans};
use crate::sym::Sym;

/// Encode a machine as its canonical string over `{1, &, *}`.
pub fn encode_machine(m: &Machine) -> String {
    let mut blocks = Vec::with_capacity(m.n_states() as usize * 2);
    for state in 1..=m.n_states() {
        for sym in [Sym::I, Sym::B] {
            match m.transition(state, sym) {
                None => blocks.push(String::new()),
                Some(t) => {
                    let mut b = String::new();
                    for _ in 0..t.next {
                        b.push('1');
                    }
                    b.push('&');
                    b.push_str(match t.write {
                        Sym::I => "11",
                        Sym::B => "1",
                    });
                    b.push('&');
                    b.push_str(match t.mv {
                        Move::Left => "1",
                        Move::Right => "11",
                        Move::Stay => "111",
                    });
                    blocks.push(b);
                }
            }
        }
    }
    blocks.join("*")
}

/// Decode a machine string. Returns `None` unless the string is the
/// canonical encoding of some machine.
pub fn decode_machine(s: &str) -> Option<Machine> {
    if !s.contains('*') || !s.chars().all(|c| matches!(c, '1' | '&' | '*')) {
        return None;
    }
    let blocks: Vec<&str> = s.split('*').collect();
    if blocks.len() < 2 || !blocks.len().is_multiple_of(2) {
        return None;
    }
    let n_states = (blocks.len() / 2) as u32;
    let mut m = Machine::new(n_states);
    for (i, block) in blocks.iter().enumerate() {
        if block.is_empty() {
            continue;
        }
        let state = (i / 2) as u32 + 1;
        let sym = if i % 2 == 0 { Sym::I } else { Sym::B };
        let t = decode_block(block, n_states)?;
        m.set_transition(state, sym, t);
    }
    Some(m)
}

fn decode_block(block: &str, n_states: u32) -> Option<Trans> {
    let parts: Vec<&str> = block.split('&').collect();
    if parts.len() != 3 {
        return None;
    }
    let next = unary(parts[0])?;
    if next < 1 || next > n_states as usize {
        return None;
    }
    let write = match unary(parts[1])? {
        2 => Sym::I,
        1 => Sym::B,
        _ => return None,
    };
    let mv = match unary(parts[2])? {
        1 => Move::Left,
        2 => Move::Right,
        3 => Move::Stay,
        _ => return None,
    };
    Some(Trans {
        write,
        mv,
        next: next as u32,
    })
}

/// Parse a non-negative unary numeral (a possibly empty run of `1`s).
/// Returns `None` if any other character occurs.
pub fn unary(s: &str) -> Option<usize> {
    if s.chars().all(|c| c == '1') {
        Some(s.len())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn minimal_machine_encodes_as_star() {
        let m = Machine::new(1);
        assert_eq!(encode_machine(&m), "*");
        assert_eq!(decode_machine("*"), Some(m));
    }

    #[test]
    fn encode_contains_at_least_one_star() {
        for m in [
            Machine::new(1),
            builders::scan_right_halt_on_blank(),
            builders::looper(),
        ] {
            assert!(encode_machine(&m).contains('*'));
        }
    }

    #[test]
    fn round_trip_decode_encode() {
        let machines = [
            Machine::new(3),
            builders::scan_right_halt_on_blank(),
            builders::looper(),
            builders::reader("11&1"),
            builders::looper().with_junk_states(4),
        ];
        for m in machines {
            let enc = encode_machine(&m);
            let dec = decode_machine(&enc).expect("canonical encoding must decode");
            assert_eq!(dec, m);
            assert_eq!(encode_machine(&dec), enc);
        }
    }

    #[test]
    fn junk_states_change_encoding() {
        let m = builders::looper();
        assert_ne!(encode_machine(&m), encode_machine(&m.with_junk_states(1)));
        assert_ne!(
            encode_machine(&m.with_junk_states(1)),
            encode_machine(&m.with_junk_states(2))
        );
    }

    #[test]
    fn rejects_no_star() {
        assert!(decode_machine("111").is_none());
        assert!(decode_machine("").is_none());
    }

    #[test]
    fn rejects_odd_block_count() {
        // Two stars → three blocks, odd.
        assert!(decode_machine("**").is_none());
    }

    #[test]
    fn rejects_bad_block() {
        // Block with only two fields.
        assert!(decode_machine("1&1*").is_none());
        // Next state 2 in a 1-state machine.
        assert!(decode_machine("11&1&1*").is_none());
        // Write field of 3 ones.
        assert!(decode_machine("1&111&1*").is_none());
        // Move field of 4 ones.
        assert!(decode_machine("1&1&1111*").is_none());
    }

    #[test]
    fn rejects_foreign_characters() {
        assert!(decode_machine("1#1*").is_none());
        assert!(decode_machine("a*b").is_none());
    }

    #[test]
    fn unary_parser() {
        assert_eq!(unary(""), Some(0));
        assert_eq!(unary("111"), Some(3));
        assert_eq!(unary("1&1"), None);
    }

    #[test]
    fn three_star_string_decodes_as_two_state_machine() {
        // Four empty blocks: two states, no transitions.
        let m = decode_machine("***").unwrap();
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.n_transitions(), 0);
        assert_eq!(encode_machine(&m), "***");
    }
}
