//! Step-bounded execution of Turing machines.

use crate::machine::Machine;
use crate::sym::{parse_word, word_to_string, Sym};
use crate::tape::Tape;

/// A machine configuration: state, tape, and head position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    pub state: u32,
    pub tape: Tape,
    pub head: isize,
}

impl Configuration {
    /// The initial configuration of a machine on input `word`: state 1,
    /// the word at cells `0 .. |w|`, head on cell 0 (the paper: "machines
    /// always start by reading the leftmost character of the word w").
    pub fn initial(word: &[Sym]) -> Self {
        Configuration {
            state: 1,
            tape: Tape::from_word(word),
            head: 0,
        }
    }

    /// Perform one step. Returns `false` if the machine halts (no
    /// transition defined for the current state/symbol).
    pub fn step(&mut self, m: &Machine) -> bool {
        let sym = self.tape.read(self.head);
        match m.transition(self.state, sym) {
            None => false,
            Some(t) => {
                self.tape.write(self.head, t.write);
                self.head += t.mv.offset();
                self.state = t.next;
                true
            }
        }
    }

    /// The snapshot window: the minimal tape segment covering all non-blank
    /// cells **and** the head (see DESIGN.md — the paper's "minimal part of
    /// it that covers all non-& characters", extended to keep the head
    /// position representable when the head sits outside the non-blank
    /// span).
    pub fn snapshot_window(&self) -> (isize, Vec<Sym>) {
        let (lo, hi) = match self.tape.nonblank_span() {
            Some((lo, hi)) => (lo.min(self.head), hi.max(self.head)),
            None => (self.head, self.head),
        };
        (lo, self.tape.window(lo, hi))
    }

    /// Render the snapshot `state # window # head-pos` (unary state and
    /// position, `#` the trace separator).
    pub fn snapshot(&self) -> String {
        let (lo, window) = self.snapshot_window();
        let pos = (self.head - lo) as usize;
        let mut out = String::new();
        for _ in 0..self.state {
            out.push('1');
        }
        out.push('#');
        out.push_str(&word_to_string(&window));
        out.push('#');
        for _ in 0..pos {
            out.push('1');
        }
        out
    }
}

/// The outcome of a bounded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The machine halted after exactly `steps` steps; `output` is the
    /// paper's result word (leftmost run of `1`s on the final tape).
    Halted { steps: usize, output: String },
    /// The machine was still running after `max_steps` steps.
    StillRunning,
}

impl RunOutcome {
    /// The number of steps if halted.
    pub fn steps(&self) -> Option<usize> {
        match self {
            RunOutcome::Halted { steps, .. } => Some(*steps),
            RunOutcome::StillRunning => None,
        }
    }
}

/// Run machine `m` on `word` for at most `max_steps` steps.
///
/// # Panics
///
/// Panics if `word` contains characters outside `{1, &}`.
pub fn run_bounded(m: &Machine, word: &str, max_steps: usize) -> RunOutcome {
    let w = parse_word(word).expect("input word must be over {1, &}");
    let mut config = Configuration::initial(&w);
    for steps in 0..=max_steps {
        let sym = config.tape.read(config.head);
        if m.transition(config.state, sym).is_none() {
            return RunOutcome::Halted {
                steps,
                output: word_to_string(&config.tape.output()),
            };
        }
        if steps == max_steps {
            break;
        }
        let progressed = config.step(m);
        debug_assert!(progressed, "transition was checked above");
    }
    RunOutcome::StillRunning
}

/// Whether `m` halts on `word` within `max_steps` steps.
pub fn halts_within(m: &Machine, word: &str, max_steps: usize) -> bool {
    matches!(run_bounded(m, word, max_steps), RunOutcome::Halted { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::machine::{Machine, Move};

    #[test]
    fn empty_machine_halts_immediately() {
        let m = Machine::new(1);
        assert_eq!(
            run_bounded(&m, "111", 10),
            RunOutcome::Halted {
                steps: 0,
                output: "111".into()
            }
        );
    }

    #[test]
    fn scan_right_halts_after_prefix_of_ones() {
        let m = builders::scan_right_halt_on_blank();
        assert_eq!(run_bounded(&m, "111", 10).steps(), Some(3));
        assert_eq!(run_bounded(&m, "11&1", 10).steps(), Some(2));
        assert_eq!(run_bounded(&m, "", 10).steps(), Some(0));
    }

    #[test]
    fn looper_never_halts() {
        let m = builders::looper();
        assert_eq!(run_bounded(&m, "1", 1000), RunOutcome::StillRunning);
        assert_eq!(run_bounded(&m, "", 1000), RunOutcome::StillRunning);
    }

    #[test]
    fn bound_is_exact() {
        let m = builders::scan_right_halt_on_blank();
        // Halts after exactly 3 steps; a bound of 2 misses it, 3 catches it.
        assert_eq!(run_bounded(&m, "111", 2), RunOutcome::StillRunning);
        assert_eq!(run_bounded(&m, "111", 3).steps(), Some(3));
    }

    #[test]
    fn eraser_produces_empty_output() {
        // State 1: on 1 write & and move right; on & halt.
        let m = Machine::new(1).with_transition(1, Sym::I, Sym::B, Move::Right, 1);
        match run_bounded(&m, "111", 10) {
            RunOutcome::Halted { steps, output } => {
                assert_eq!(steps, 3);
                assert_eq!(output, "");
            }
            _ => panic!("should halt"),
        }
    }

    #[test]
    fn initial_snapshot_window_is_trimmed_word() {
        let c = Configuration::initial(&crate::sym::parse_word("11").unwrap());
        assert_eq!(c.snapshot(), "1#11#");
    }

    #[test]
    fn snapshot_of_all_blank_tape_is_single_blank_cell() {
        let c = Configuration::initial(&[]);
        assert_eq!(c.snapshot(), "1#&#");
    }

    #[test]
    fn snapshot_includes_head_outside_nonblank_span() {
        // Move left from the word: head at -1, window extends to cover it.
        let mut c = Configuration::initial(&crate::sym::parse_word("1").unwrap());
        let m = Machine::new(1).with_transition(1, Sym::I, Sym::I, Move::Left, 1);
        assert!(c.step(&m));
        assert_eq!(c.head, -1);
        // Window covers cells -1..=0: "&1", head at offset 0.
        assert_eq!(c.snapshot(), "1#&1#");
    }

    #[test]
    fn snapshot_records_state_and_position_in_unary() {
        let m = Machine::new(2).with_transition(1, Sym::I, Sym::I, Move::Right, 2);
        let mut c = Configuration::initial(&crate::sym::parse_word("11").unwrap());
        assert!(c.step(&m));
        // State 2, window "11", head at offset 1.
        assert_eq!(c.snapshot(), "11#11#1");
    }

    #[test]
    #[should_panic(expected = "over {1, &}")]
    fn run_rejects_bad_word() {
        let _ = run_bounded(&Machine::new(1), "1*1", 10);
    }

    #[test]
    fn halts_within_helper() {
        let m = builders::scan_right_halt_on_blank();
        assert!(halts_within(&m, "11", 2));
        assert!(!halts_within(&m, "11", 1));
        assert!(!halts_within(&builders::looper(), "1", 100));
    }
}
