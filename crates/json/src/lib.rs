//! Dependency-free JSON for the finite-queries workspace.
//!
//! This crate replaces `serde`/`serde_json` so the workspace builds
//! with no external dependencies. It keeps the exact wire format the
//! serde derives produced — structs as objects with fields in
//! declaration order, enums externally tagged (`{"Nat": 1}`), maps as
//! objects, sequences as arrays — so existing files under
//! `examples/data/` parse unchanged.
//!
//! The surface is three parts: the [`Value`] model with a parser
//! ([`parse`]) and printers, and the [`ToJson`] / [`FromJson`] traits
//! with blanket impls for the std collections the workspace stores.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON document.
///
/// Objects preserve insertion order (like `serde_json`'s default
/// struct serialization) rather than sorting keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers the workspace stores are integers (`u64` values,
    /// arities, millisecond counts); `i128` covers them all.
    Int(i128),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering (the `serde_json::to_string_pretty`
    /// layout).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Parse or conversion failure, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: Option<usize>,
}

impl JsonError {
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {}", self.message, o),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::at("trailing characters", pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(format!("expected `{}`", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(JsonError::at("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(JsonError::at("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(format!("expected `{word}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == start || (bytes[start] == b'-' && *pos == start + 1) {
        return Err(JsonError::at("expected a value", start));
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(JsonError::at(
            "non-integer numbers are not used by this workspace",
            start,
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    text.parse::<i128>()
        .map(Value::Int)
        .map_err(|_| JsonError::at("integer out of range", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at("expected a string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| JsonError::at("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| JsonError::at("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed for the trace
                        // alphabet; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the maximal run of unescaped bytes and
                // validate it as UTF-8 once — validating from `*pos` to
                // the end of the document per character would make
                // parsing quadratic in the document size.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| JsonError::at("invalid utf-8", start))?;
                out.push_str(run);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Conversion traits.
// ---------------------------------------------------------------------

/// Types renderable as JSON.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Types reconstructible from JSON.
pub trait FromJson: Sized {
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

/// Parse text straight into a `FromJson` type (the `serde_json::from_str`
/// entry point).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Compact rendering of a `ToJson` type.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Pretty rendering of a `ToJson` type.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_pretty()
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Value) -> Result<Self, JsonError> {
                let n = value
                    .as_int()
                    .ok_or_else(|| JsonError::new(concat!("expected a ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| JsonError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected a bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected a string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_object()
            .ok_or_else(|| JsonError::new("expected an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

/// Build an object value from `(key, value)` pairs in order.
pub fn object<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Fetch a required object member.
pub fn member<'v>(value: &'v Value, key: &str) -> Result<&'v Value, JsonError> {
    value
        .get(key)
        .ok_or_else(|| JsonError::new(format!("missing member `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"schema":{"relations":{"F":2},"constants":[]},"relations":{"F":[[{"Nat":1},{"Nat":2}]]},"constants":{}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(
            v.get("schema")
                .and_then(|s| s.get("relations"))
                .and_then(|r| r.get("F")),
            Some(&Value::Int(2))
        );
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = object([("pass", Value::Bool(false)), ("n", Value::Int(3))]);
        assert_eq!(v.to_pretty(), "{\n  \"pass\": false,\n  \"n\": 3\n}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\té—🙂".to_string();
        let v = s.to_json();
        assert_eq!(
            String::from_json(&parse(&v.to_compact()).unwrap()).unwrap(),
            s
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".to_string()));
    }

    #[test]
    fn numbers_parse_with_sign() {
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Int(u64::MAX as i128)
        );
        assert!(parse("1.5").is_err());
    }

    #[test]
    fn collections_round_trip() {
        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        m.insert("b".into(), vec![]);
        let back: BTreeMap<String, Vec<u64>> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back, m);
        let s: BTreeSet<u64> = [3, 1, 2].into_iter().collect();
        let back: BTreeSet<u64> = from_str(&to_string(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} junk").is_err());
    }

    /// Large string-heavy documents must parse in linear time; the
    /// per-character path used to re-validate the whole remaining
    /// document as UTF-8, which made multi-megabyte state files hang.
    /// 4 MB of mixed escapes/multi-byte content parses well inside the
    /// test timeout iff parsing is linear (quadratic would need ~10¹³
    /// byte scans), and round-trips exactly.
    #[test]
    fn megabyte_strings_parse_in_linear_time() {
        let chunk = "trace#1#11&é🙂\"\\\n".repeat(1 << 12);
        let doc = Value::Array((0..64).map(|_| chunk.to_json()).collect());
        let text = doc.to_compact();
        assert!(text.len() > 4_000_000);
        let start = std::time::Instant::now();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "string parsing is no longer linear: {:?}",
            start.elapsed()
        );
    }
}
