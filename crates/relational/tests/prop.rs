//! Property tests for the relational layer: Codd-compilation agrees with
//! active-domain evaluation on random safe-range queries, and the
//! Section 1.1 translation preserves answers.

use fq_logic::{Formula, Term};
use fq_relational::active_eval::{eval_query, NatOps, NoOps};
use fq_relational::algebra::compile;
use fq_relational::safe_range::is_safe_range;
use fq_relational::schema::Schema;
use fq_relational::state::{State, Value};
use fq_relational::translate::translate_to_domain_formula;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn schema() -> Schema {
    Schema::new().with_relation("R", 2).with_relation("S", 1)
}

fn arb_state() -> impl Strategy<Value = State> {
    (
        proptest::collection::btree_set((0u64..5, 0u64..5), 0..6),
        proptest::collection::btree_set(0u64..5, 0..4),
    )
        .prop_map(|(r, s)| {
            let mut state = State::new(schema());
            for (a, b) in r {
                state.insert("R", vec![Value::Nat(a), Value::Nat(b)]);
            }
            for a in s {
                state.insert("S", vec![Value::Nat(a)]);
            }
            state
        })
}

/// Random queries built from range-giving atoms, conjunction, disjunction
/// of compatible parts, safe negation, and existentials.
fn arb_query() -> impl Strategy<Value = Formula> {
    let v = || prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Term::var);
    let atom = prop_oneof![
        (v(), v()).prop_map(|(a, b)| Formula::pred("R", vec![a, b])),
        v().prop_map(|a| Formula::pred("S", vec![a])),
        (v(), 0u64..5).prop_map(|(a, k)| Formula::eq(a, Term::Nat(k))),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            1 => inner.clone().prop_map(|a| {
                // Same-variable union: a | a-variant keeps attributes equal.
                Formula::Or(vec![a.clone(), a])
            }),
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                // Safe negation: positive part conjoined with ¬b where
                // free(b) ⊆ free(a) is not guaranteed — the test filters
                // by is_safe_range instead.
                Formula::And(vec![a, Formula::Not(Box::new(b))])
            }),
            2 => (prop_oneof![Just("x"), Just("y"), Just("z")], inner.clone())
                .prop_map(|(v, b)| Formula::exists(v, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_algebra_agrees_with_calculus(state in arb_state(), q in arb_query()) {
        if !is_safe_range(state.schema(), &q) {
            return Ok(());
        }
        let Ok(expr) = compile(state.schema(), &q) else {
            // Some safe-range shapes fall outside the compilable fragment.
            return Ok(());
        };
        let vars: Vec<String> = q.free_vars().into_iter().collect();
        let reference: BTreeSet<Vec<Value>> =
            eval_query(&state, &NoOps, &q, &vars).unwrap().into_iter().collect();
        let algebra = expr.eval(&state).reorder(&vars).tuples;
        prop_assert_eq!(algebra, reference, "query: {}", q);
    }

    #[test]
    fn translation_preserves_answers(state in arb_state(), q in arb_query()) {
        // The §1.1 pure-domain translation has the same solutions over the
        // query's active domain.
        let vars: Vec<String> = q.free_vars().into_iter().collect();
        let translated = translate_to_domain_formula(&q, &state);
        let before = eval_query(&state, &NatOps, &q, &vars).unwrap();
        // Evaluate the translated formula over the same universe: use an
        // empty state with the same scheme (no relation atoms remain).
        let empty = State::new(schema());
        let universe: Vec<Value> = state.query_active_domain(&q).into_iter().collect();
        let interp = fq_relational::active_eval::QueryInterp::new(&empty, &NatOps);
        let after = fq_logic::eval::solutions(&interp, &universe, &vars, &translated).unwrap();
        prop_assert_eq!(before, after, "query: {}", q);
    }

    #[test]
    fn safe_range_queries_are_domain_independent(state in arb_state(), q in arb_query()) {
        // Enlarging the evaluation universe must not change the answer of
        // a safe-range query.
        if !is_safe_range(state.schema(), &q) {
            return Ok(());
        }
        let vars: Vec<String> = q.free_vars().into_iter().collect();
        let small = eval_query(&state, &NoOps, &q, &vars).unwrap();
        // Universe extended with fresh elements 100..105.
        let mut universe: Vec<Value> = state.query_active_domain(&q).into_iter().collect();
        universe.extend((100u64..105).map(Value::Nat));
        let interp = fq_relational::active_eval::QueryInterp::new(&state, &NoOps);
        let large = fq_logic::eval::solutions(&interp, &universe, &vars, &q).unwrap();
        prop_assert_eq!(
            small.into_iter().collect::<BTreeSet<_>>(),
            large.into_iter().collect::<BTreeSet<_>>(),
            "query: {}", q
        );
    }
}
