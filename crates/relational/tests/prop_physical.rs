//! Property tests for the optimized execution layer: the logical
//! rewriter and physical executor must be **bit-identical** to the naive
//! `AlgebraExpr::eval` backend (tuples *and* attribute order), and the
//! slot-compiled evaluator must match the string-keyed `solutions` —
//! including on the engine-parallel fan-out path.

use fq_engine::{Engine, EngineConfig};
use fq_logic::{Formula, Term};
use fq_relational::active_eval::{eval_query, eval_query_with, NoOps};
use fq_relational::algebra::{compile, AlgebraExpr, Condition};
use fq_relational::optimize::optimize;
use fq_relational::physical::{ExecOpts, PhysicalPlan};
use fq_relational::safe_range::is_safe_range;
use fq_relational::schema::Schema;
use fq_relational::state::{State, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new().with_relation("R", 2).with_relation("S", 1)
}

fn arb_state() -> impl Strategy<Value = State> {
    (
        proptest::collection::btree_set((0u64..5, 0u64..5), 0..6),
        proptest::collection::btree_set(0u64..5, 0..4),
    )
        .prop_map(|(r, s)| {
            let mut state = State::new(schema());
            for (a, b) in r {
                state.insert("R", vec![Value::Nat(a), Value::Nat(b)]);
            }
            for a in s {
                state.insert("S", vec![Value::Nat(a)]);
            }
            state
        })
}

/// Random queries in the style of the `prop.rs` generator: range-giving
/// atoms, conjunction, attribute-compatible disjunction, negation
/// (filtered through the safe-range check), and existentials.
fn arb_query() -> impl Strategy<Value = Formula> {
    let v = || prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Term::var);
    let atom = prop_oneof![
        (v(), v()).prop_map(|(a, b)| Formula::pred("R", vec![a, b])),
        v().prop_map(|a| Formula::pred("S", vec![a])),
        (v(), 0u64..5).prop_map(|(a, k)| Formula::eq(a, Term::Nat(k))),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            1 => inner.clone().prop_map(|a| Formula::Or(vec![a.clone(), a])),
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Formula::And(vec![a, Formula::Not(Box::new(b))])
            }),
            2 => (prop_oneof![Just("x"), Just("y"), Just("z")], inner.clone())
                .prop_map(|(v, b)| Formula::exists(v, b)),
        ]
    })
}

/// Random raw algebra expressions (not necessarily from the compiler),
/// to exercise rewriter/executor shapes the Codd translation never
/// produces — cross products, unions of reordered branches, extends.
fn arb_expr() -> impl Strategy<Value = AlgebraExpr> {
    let base = prop_oneof![
        Just(AlgebraExpr::Base {
            name: "R".into(),
            attrs: vec!["x".into(), "y".into()],
        }),
        Just(AlgebraExpr::Base {
            name: "R".into(),
            attrs: vec!["y".into(), "z".into()],
        }),
        Just(AlgebraExpr::Base {
            name: "S".into(),
            attrs: vec!["x".into()],
        }),
        Just(AlgebraExpr::Base {
            name: "S".into(),
            attrs: vec!["w".into()],
        }),
        (0u64..5).prop_map(|k| AlgebraExpr::Singleton(vec![("x".into(), Value::Nat(k))])),
    ];
    base.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| AlgebraExpr::Join(Box::new(a), Box::new(b))),
            1 => inner.clone().prop_map(|a| {
                // Union with itself keeps the attribute sets compatible.
                AlgebraExpr::Union(Box::new(a.clone()), Box::new(a))
            }),
            1 => inner.clone().prop_map(|a| {
                AlgebraExpr::Diff(Box::new(a.clone()), Box::new(a))
            }),
            2 => (inner.clone(), 0u64..5).prop_map(|(a, k)| {
                let attr = a.attrs().first().cloned().unwrap_or_else(|| "x".into());
                AlgebraExpr::Select(Box::new(a), Condition::EqConst(attr, Value::Nat(k)))
            }),
            1 => inner.clone().prop_map(|a| {
                let attrs = a.attrs();
                let keep: Vec<String> = attrs.iter().skip(attrs.len() / 2).cloned().collect();
                AlgebraExpr::Project(Box::new(a), keep)
            }),
            1 => inner.clone().prop_map(|a| {
                let src = a.attrs().first().cloned().unwrap_or_else(|| "x".into());
                let new = format!("{src}2");
                if a.attrs().contains(&new) {
                    a
                } else {
                    AlgebraExpr::Extend(Box::new(a), new, src)
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimized_physical_matches_naive_on_compiled_queries(
        state in arb_state(),
        q in arb_query(),
    ) {
        if !is_safe_range(state.schema(), &q) {
            return Ok(());
        }
        let Ok(expr) = compile(state.schema(), &q) else {
            return Ok(());
        };
        let naive = expr.eval(&state);
        let physical = PhysicalPlan::compile(&expr).execute(&state);
        prop_assert_eq!(&naive, &physical, "physical ≠ naive: {}", q);
        let opt = optimize(&expr, &state);
        prop_assert_eq!(opt.expr.attrs(), expr.attrs(), "rewrite changed attrs: {}", q);
        let optimized = PhysicalPlan::compile(&opt.expr).execute(&state);
        prop_assert_eq!(&naive, &optimized, "optimized ≠ naive: {} ({:?})", q, opt.rewrites);
    }

    #[test]
    fn optimized_physical_matches_naive_on_raw_expressions(
        state in arb_state(),
        expr in arb_expr(),
    ) {
        let naive = expr.eval(&state);
        let physical = PhysicalPlan::compile(&expr).execute(&state);
        prop_assert_eq!(&naive, &physical, "physical ≠ naive: {:?}", expr);
        let opt = optimize(&expr, &state);
        prop_assert_eq!(opt.expr.attrs(), expr.attrs(), "rewrite changed attrs");
        let optimized = PhysicalPlan::compile(&opt.expr).execute(&state);
        prop_assert_eq!(&naive, &optimized, "optimized ≠ naive: {:?} → {:?}", expr, opt.rewrites);
    }

    /// The morsel-driven parallel executor is bit-identical to the
    /// sequential path on arbitrary compiled queries, at arbitrary
    /// thread counts and morsel sizes. Tiny states (0–6 rows) under
    /// 1–4-row morsels cover the boundary shapes by construction: the
    /// empty relation, rows < morsel size, rows an exact multiple of
    /// the morsel size, and arity-2 stride alignment via `R`.
    #[test]
    fn parallel_physical_matches_sequential_on_compiled_queries(
        state in arb_state(),
        q in arb_query(),
        threads in 1usize..=8,
        morsel_rows in 1usize..=4,
    ) {
        if !is_safe_range(state.schema(), &q) {
            return Ok(());
        }
        let Ok(expr) = compile(state.schema(), &q) else {
            return Ok(());
        };
        let plan = PhysicalPlan::compile(&optimize(&expr, &state).expr);
        let sequential = plan.execute(&state);
        let engine = Engine::new(EngineConfig { threads, ..EngineConfig::default() });
        let parallel = plan
            .execute_with_stats_on(&state, &engine, ExecOpts { morsel_rows })
            .relation;
        prop_assert_eq!(&sequential, &parallel,
            "parallel ≠ sequential: {} ({} threads, morsel {})", q, threads, morsel_rows);
        prop_assert_eq!(&expr.eval(&state), &parallel, "parallel ≠ naive: {}", q);
    }

    /// The same contract over raw algebra shapes the compiler never
    /// emits — cross products, self-unions/diffs, extends.
    #[test]
    fn parallel_physical_matches_sequential_on_raw_expressions(
        state in arb_state(),
        expr in arb_expr(),
        threads in 1usize..=8,
        morsel_rows in 1usize..=4,
    ) {
        let plan = PhysicalPlan::compile(&expr);
        let sequential = plan.execute(&state);
        let engine = Engine::new(EngineConfig { threads, ..EngineConfig::default() });
        let parallel = plan
            .execute_with_stats_on(&state, &engine, ExecOpts { morsel_rows })
            .relation;
        prop_assert_eq!(&sequential, &parallel,
            "parallel ≠ sequential: {:?} ({} threads, morsel {})", expr, threads, morsel_rows);
    }

    #[test]
    fn slot_compiled_evaluation_matches_string_env(
        state in arb_state(),
        q in arb_query(),
        threads in 1usize..4,
    ) {
        let vars: Vec<String> = q.free_vars().into_iter().collect();
        let engine = Engine::new(EngineConfig { threads, ..EngineConfig::default() });
        let reference = eval_query(&state, &NoOps, &q, &vars);
        let slotted = eval_query_with(&state, &NoOps, &q, &vars, &engine);
        match (reference, slotted) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "rows differ: {}", q),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string(), "errors differ: {}", q),
            (a, b) => prop_assert!(false, "outcome mismatch on {}: {:?} vs {:?}", q, a, b),
        }
    }
}

/// Deterministic thread sweep on a join chain large enough for real
/// many-morsel schedules: the same plan at 1, 2, 4, and 8 threads
/// produces byte-identical answer relations.
#[test]
fn thread_sweep_is_byte_identical_on_a_join_chain() {
    use fq_relational::state::StateBuilder;
    let mut b = StateBuilder::new(schema());
    for i in 0..2_000u64 {
        b.row("R", vec![Value::Nat(i % 211), Value::Nat((i * 13) % 211)]);
        if i % 5 == 0 {
            b.row("S", vec![Value::Nat(i % 211)]);
        }
    }
    let state = b.finish();
    let f: Formula = Formula::exists(
        "y",
        Formula::And(vec![
            Formula::pred("R", vec![Term::var("x"), Term::var("y")]),
            Formula::pred("R", vec![Term::var("y"), Term::var("z")]),
            Formula::pred("S", vec![Term::var("y")]),
        ]),
    );
    let expr = compile(state.schema(), &f).expect("compiles");
    let plan = PhysicalPlan::compile(&optimize(&expr, &state).expr);
    let baseline = plan.execute(&state);
    for threads in [1, 2, 4, 8] {
        let engine = Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        });
        for morsel_rows in [32, 256, 4096] {
            let report = plan.execute_with_stats_on(&state, &engine, ExecOpts { morsel_rows });
            assert_eq!(
                report.relation, baseline,
                "drift at {threads} threads, morsel {morsel_rows}"
            );
        }
    }
}
