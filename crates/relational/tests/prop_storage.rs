//! Property tests for the columnar interned storage core: the word
//! representation must be observationally identical to the legacy
//! [`Value`] representation — ordering, equality, display, round-trips,
//! and the on-disk JSON shape of a whole [`State`].

use fq_relational::{Dict, OverlayDict, Schema, SharedOverlay, State, StateBuilder, VRel, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Mixed naturals (small, near the inline/interned boundary, and big)
/// and short strings — every representation class of [`Val`].
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u64..50).prop_map(Value::Nat),
        ((1u64 << 63) - 2..=u64::MAX).prop_map(Value::Nat),
        "[a-c&*#1]{0,4}".prop_map(Value::Str),
    ]
}

proptest! {
    /// Word comparison through the dictionary is exactly the derived
    /// `Value` order, word equality is semantic equality, and `display`
    /// matches `Value`'s `Display` — regardless of interning order.
    #[test]
    fn words_mirror_values(values in proptest::collection::vec(arb_value(), 0..12)) {
        let mut dict = Dict::default();
        let words: Vec<_> = values.iter().map(|v| dict.encode(v)).collect();
        for (w, v) in words.iter().zip(&values) {
            prop_assert_eq!(dict.decode(*w), v.clone());
            prop_assert_eq!(dict.display(*w), v.to_string());
        }
        let keys = dict.sort_keys();
        for (wa, a) in words.iter().zip(&values) {
            for (wb, b) in words.iter().zip(&values) {
                prop_assert_eq!(dict.cmp_vals(*wa, *wb), a.cmp(b), "{} vs {}", a, b);
                prop_assert_eq!(wa == wb, a == b, "{} vs {}", a, b);
                // The rank-key table reproduces the same total order.
                prop_assert_eq!(keys.key(*wa).cmp(&keys.key(*wb)), a.cmp(b), "{} vs {}", a, b);
            }
        }
    }

    /// Encoding is canonical and lossless through overlays too: the
    /// overlay agrees with the base on interned values and round-trips
    /// fresh ones, and the thread-safe wrapper behaves identically.
    #[test]
    fn overlays_round_trip(
        base_values in proptest::collection::vec(arb_value(), 0..8),
        extra_values in proptest::collection::vec(arb_value(), 0..8),
    ) {
        let mut dict = Dict::default();
        let base_words: Vec<_> = base_values.iter().map(|v| dict.encode(v)).collect();
        let mut overlay = OverlayDict::new(&dict);
        for (w, v) in base_words.iter().zip(&base_values) {
            prop_assert_eq!(overlay.encode(v), *w, "base words are preferred");
        }
        for v in &extra_values {
            let w = overlay.encode(v);
            prop_assert_eq!(overlay.encode(v), w, "interning is canonical");
            prop_assert_eq!(overlay.decode(w), v.clone());
        }
        let shared = SharedOverlay::new(&dict);
        for v in base_values.iter().chain(&extra_values) {
            let w = shared.encode(v);
            prop_assert_eq!(shared.encode(v), w);
            prop_assert_eq!(shared.decode(w), v.clone());
        }
    }

    /// The batch ingestion path is observationally identical to a
    /// repeated-`insert` loop at the `VRel` level: same rows in the
    /// same order, same column statistics — on unsorted, duplicate-laden
    /// mixed numeric/string batches, split at an arbitrary point into a
    /// pre-loaded store plus one merged batch.
    #[test]
    fn extend_from_sorted_equals_repeated_insert(
        rows in proptest::collection::vec((arb_value(), arb_value()), 0..24),
        dup_stride in 1usize..4,
        split in 0usize..24,
    ) {
        let mut corpus: Vec<Vec<Value>> = rows.iter()
            .map(|(a, b)| vec![a.clone(), b.clone()])
            .collect();
        // Re-inject every `dup_stride`-th row so duplicates are certain.
        let dups: Vec<Vec<Value>> = corpus.iter().step_by(dup_stride).cloned().collect();
        corpus.extend(dups);

        let mut dict = Dict::default();
        let mut by_insert = VRel::new(2);
        let mut flat: Vec<_> = Vec::new();
        for t in &corpus {
            let enc: Vec<_> = t.iter().map(|v| dict.encode(v)).collect();
            by_insert.insert(&enc, &dict);
            flat.extend_from_slice(&enc);
        }
        // One whole-corpus batch…
        let one_batch = VRel::from_rows(2, flat.clone(), &dict);
        prop_assert_eq!(one_batch.rows(), by_insert.rows());
        prop_assert_eq!(one_batch.data(), by_insert.data());
        prop_assert_eq!(one_batch.stats(&dict), by_insert.stats(&dict));
        // …and a merge of a batch into a non-empty store.
        let cut = (split.min(corpus.len())) * 2;
        let mut merged = VRel::from_rows(2, flat[..cut].to_vec(), &dict);
        merged.extend_from_sorted(flat[cut..].to_vec(), &dict);
        prop_assert_eq!(merged.data(), by_insert.data());
    }

    /// A `StateBuilder` bulk load equals the insert loop over the same
    /// arrival order at the `State` level too: equal states, identical
    /// serialized JSON, identical per-column statistics.
    #[test]
    fn bulk_loaded_state_equals_insert_loop(
        pairs in proptest::collection::vec((arb_value(), arb_value()), 0..16),
        singles in proptest::collection::vec(arb_value(), 0..10),
        c in prop_oneof![1 => Just(None), 2 => arb_value().prop_map(Some)],
    ) {
        let mut schema = Schema::new().with_relation("R", 2).with_relation("S", 1);
        if c.is_some() {
            schema = schema.with_constant("c");
        }
        let mut by_insert = State::new(schema.clone());
        let mut builder = StateBuilder::new(schema.clone());
        for (a, b) in &pairs {
            by_insert.insert("R", vec![a.clone(), b.clone()]);
            builder.row("R", vec![a.clone(), b.clone()]);
        }
        for a in &singles {
            // The borrowed-tuple spellings must stage/insert identically.
            by_insert.insert_ref("S", std::slice::from_ref(a));
            builder.row_ref("S", std::slice::from_ref(a));
        }
        if let Some(v) = &c {
            by_insert.set_constant("c", v.clone());
            builder.constant("c", v.clone());
        }
        let bulk = builder.finish();
        prop_assert_eq!(&bulk, &by_insert);
        prop_assert_eq!(fq_json::to_string(&bulk), fq_json::to_string(&by_insert));
        prop_assert_eq!(bulk.column_stats("R"), by_insert.column_stats("R"));
        prop_assert_eq!(bulk.column_stats("S"), by_insert.column_stats("S"));
        prop_assert_eq!(bulk.active_domain(), by_insert.active_domain());
        // And the batch path composes incrementally: extending the bulk
        // state with the same tuples again changes nothing.
        let mut again = bulk.clone();
        let added = again
            .extend_bulk("R", pairs.iter().map(|(a, b)| vec![a.clone(), b.clone()]))
            .unwrap();
        prop_assert_eq!(added, 0);
        prop_assert_eq!(&again, &by_insert);
    }

    /// The worker-pool `finish_with` produces a state equal to the
    /// sequential `finish` — same rows, stats, and serialized form — at
    /// any thread count: relations merge independently against the
    /// final dictionary and one shared rank table.
    #[test]
    fn parallel_finish_equals_sequential_finish(
        pairs in proptest::collection::vec((arb_value(), arb_value()), 0..16),
        singles in proptest::collection::vec(arb_value(), 0..10),
        threads in 1usize..=8,
    ) {
        let schema = Schema::new().with_relation("R", 2).with_relation("S", 1);
        let build = || {
            let mut b = StateBuilder::new(schema.clone());
            for (a, b_) in &pairs {
                b.row("R", vec![a.clone(), b_.clone()]);
            }
            for a in &singles {
                b.row_ref("S", std::slice::from_ref(a));
            }
            b
        };
        let sequential = build().finish();
        let engine = fq_engine::Engine::new(fq_engine::EngineConfig {
            threads,
            ..fq_engine::EngineConfig::default()
        });
        let parallel = build().finish_with(&engine);
        prop_assert_eq!(&parallel, &sequential);
        prop_assert_eq!(fq_json::to_string(&parallel), fq_json::to_string(&sequential));
        prop_assert_eq!(parallel.column_stats("R"), sequential.column_stats("R"));
        prop_assert_eq!(parallel.column_stats("S"), sequential.column_stats("S"));
    }

    /// A binary snapshot round-trips any state exactly: equal state,
    /// byte-identical JSON interchange form, per-column statistics
    /// equal to the lazily-computed ones, and the advertised
    /// `snapshot_len` equal to the written byte count.
    #[test]
    fn snapshot_round_trips_any_state(
        pairs in proptest::collection::vec((arb_value(), arb_value()), 0..16),
        singles in proptest::collection::vec(arb_value(), 0..10),
        c in prop_oneof![1 => Just(None), 2 => arb_value().prop_map(Some)],
    ) {
        let mut schema = Schema::new().with_relation("R", 2).with_relation("S", 1);
        if c.is_some() {
            schema = schema.with_constant("c");
        }
        let mut builder = StateBuilder::new(schema);
        for (a, b) in &pairs {
            builder.row("R", vec![a.clone(), b.clone()]);
        }
        for a in &singles {
            builder.row_ref("S", std::slice::from_ref(a));
        }
        if let Some(v) = &c {
            builder.constant("c", v.clone());
        }
        let state = builder.finish();
        let bytes = state.snapshot_bytes();
        prop_assert_eq!(fq_relational::format::snapshot_len(&state), bytes.len());
        prop_assert!(fq_relational::is_snapshot(&bytes));
        let loaded = State::read_snapshot(&bytes).unwrap();
        prop_assert_eq!(&loaded, &state);
        // JSON interchange stays byte-identical through the binary form.
        prop_assert_eq!(fq_json::to_string(&loaded), fq_json::to_string(&state));
        // The stats bulk-read from disk equal the lazily-computed ones.
        prop_assert_eq!(loaded.column_stats("R"), state.column_stats("R"));
        prop_assert_eq!(loaded.column_stats("S"), state.column_stats("S"));
        prop_assert_eq!(loaded.active_domain(), state.active_domain());
    }

    /// Damaged snapshots are always *diagnosed*: any truncation and any
    /// single-byte flip of a valid snapshot surfaces a `StateError`,
    /// never a panic and never a silently-wrong state.
    #[test]
    fn corrupted_snapshots_error_without_panicking(
        pairs in proptest::collection::vec((arb_value(), arb_value()), 1..12),
        cut_seed in 0usize..1_000_000,
        flip_seed in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let schema = Schema::new().with_relation("R", 2);
        let mut builder = StateBuilder::new(schema);
        for (a, b) in &pairs {
            builder.row("R", vec![a.clone(), b.clone()]);
        }
        let bytes = builder.finish().snapshot_bytes();
        // Truncation at an arbitrary cut point.
        let cut = cut_seed % bytes.len();
        prop_assert!(State::read_snapshot(&bytes[..cut]).is_err(), "cut at {}", cut);
        // A single byte flipped anywhere in the file.
        let mut flipped = bytes.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= mask;
        prop_assert!(
            State::read_snapshot(&flipped).is_err(),
            "flip at {} with mask {:#04x}", at, mask
        );
    }

    /// The parallel chunk-sort merge path is bit-identical to the
    /// sequential rank-key merge at any thread count and chunk size —
    /// same rows, same order, same statistics.
    #[test]
    fn parallel_chunk_sort_equals_sequential_merge(
        rows in proptest::collection::vec((arb_value(), arb_value()), 0..24),
        seed_split in 0usize..24,
        threads in 1usize..=4,
        chunk_rows in 1usize..32,
    ) {
        let mut dict = Dict::default();
        let mut flat: Vec<_> = Vec::new();
        for (a, b) in &rows {
            flat.push(dict.encode(a));
            flat.push(dict.encode(b));
        }
        let cut = seed_split.min(rows.len()) * 2;
        let keys = dict.sort_keys();
        let engine = fq_engine::Engine::new(fq_engine::EngineConfig {
            threads,
            ..fq_engine::EngineConfig::default()
        });
        let mut sequential = VRel::from_rows(2, flat[..cut].to_vec(), &dict);
        let mut parallel = sequential.clone();
        sequential.extend_from_sorted_with(flat[cut..].to_vec(), &keys);
        parallel.extend_from_sorted_parallel(flat[cut..].to_vec(), &keys, &engine, chunk_rows);
        prop_assert_eq!(parallel.data(), sequential.data());
        prop_assert_eq!(parallel.stats(&dict), sequential.stats(&dict));
    }

    /// A whole state serializes to **exactly** the JSON the legacy
    /// `BTreeMap<String, BTreeSet<Tuple>>` representation produced, and
    /// parses back to an equal state.
    #[test]
    fn state_json_matches_legacy_shape(
        r in proptest::collection::btree_set((arb_value(), arb_value()), 0..6),
        s in proptest::collection::btree_set(arb_value(), 0..4),
        c in prop_oneof![1 => Just(None), 2 => arb_value().prop_map(Some)],
    ) {
        let mut schema = Schema::new().with_relation("R", 2).with_relation("S", 1);
        if c.is_some() {
            schema = schema.with_constant("c");
        }
        let mut state = State::new(schema.clone());
        let mut rels: BTreeMap<String, BTreeSet<Vec<Value>>> = BTreeMap::new();
        rels.insert("R".into(), BTreeSet::new());
        rels.insert("S".into(), BTreeSet::new());
        for (a, b) in &r {
            state.insert("R", vec![a.clone(), b.clone()]);
            rels.get_mut("R").unwrap().insert(vec![a.clone(), b.clone()]);
        }
        for a in &s {
            state.insert("S", vec![a.clone()]);
            rels.get_mut("S").unwrap().insert(vec![a.clone()]);
        }
        let mut constants: BTreeMap<String, Value> = BTreeMap::new();
        if let Some(v) = &c {
            state.set_constant("c", v.clone());
            constants.insert("c".into(), v.clone());
        }
        let legacy = fq_json::object([
            ("schema", fq_json::ToJson::to_json(&schema)),
            ("relations", fq_json::ToJson::to_json(&rels)),
            ("constants", fq_json::ToJson::to_json(&constants)),
        ]);
        prop_assert_eq!(fq_json::to_string(&state), legacy.to_compact());
        let reparsed: State = fq_json::from_str(&fq_json::to_string(&state)).unwrap();
        prop_assert_eq!(reparsed, state);
    }
}

/// Every state file shipped under `examples/data/` parses and
/// re-serializes to the same compact JSON as the raw document — the
/// on-disk format is unchanged by the columnar store.
#[test]
fn examples_data_round_trips_byte_identically() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("examples/data exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let raw = fq_json::parse(&text).unwrap();
        let state: State = fq_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} must parse as a state: {e}", path.display()));
        assert_eq!(
            fq_json::to_string(&state),
            raw.to_compact(),
            "{} must re-serialize byte-identically",
            path.display()
        );
        checked += 1;
    }
    assert!(checked > 0, "corpus must not be empty");
}
