//! Snapshot-isolated shared states.
//!
//! A [`SharedState`] is the multi-reader ownership story for [`State`]:
//! readers take an immutable [`Snapshot`] (an `Arc`-shared state plus an
//! epoch number) and keep it for as long as a query runs; writers batch
//! mutations and *publish* — clone the current state (cheap, the
//! dictionary and columns are `Arc`-shared and copy-on-write), apply the
//! batch through the existing bulk-ingestion path, bump the epoch, and
//! atomically swap the pointer. In-flight readers are never blocked and
//! never observe a half-published batch: every snapshot is some state
//! that was published whole.
//!
//! The append-only storage design is what makes this cheap. `Dict` only
//! grows and `VRel` batches rewrite a relation's column in one merge
//! pass anyway, so copy-on-write publication adds no asymptotic cost
//! over single-owner mutation: a publishing batch deep-copies exactly
//! the dictionary and the relations it touches, and shares the rest.
//!
//! ```
//! use fq_relational::{Schema, SharedState, State, Value};
//!
//! let shared = SharedState::new(State::new(Schema::new().with_relation("R", 1)));
//! let before = shared.snapshot();
//! shared.ingest("R", vec![vec![Value::Nat(7)]]).unwrap();
//! let after = shared.snapshot();
//! assert_eq!(before.size(), 0); // pinned: publication is invisible
//! assert_eq!(after.size(), 1);
//! assert!(after.epoch() > before.epoch());
//! ```

use crate::state::{State, StateError, Tuple};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Process-wide store id allocator: snapshots from different
/// [`SharedState`]s (or detached snapshots) never share an identity.
static STORE_IDS: AtomicU64 = AtomicU64::new(1);

fn next_store_id() -> u64 {
    STORE_IDS.fetch_add(1, Ordering::Relaxed)
}

/// An immutable, cheaply clonable view of a [`State`] at one publication
/// epoch. Derefs to [`State`], so everything that reads a state runs
/// unchanged against a snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    store_id: u64,
    epoch: u64,
    state: Arc<State>,
}

impl Snapshot {
    /// A detached snapshot of a free-standing state (epoch 0, fresh
    /// store id). One-shot callers — the CLI, tests — use this to run
    /// the snapshot-borrowing execution path without a [`SharedState`].
    pub fn detached(state: State) -> Snapshot {
        Snapshot {
            store_id: next_store_id(),
            epoch: 0,
            state: Arc::new(state),
        }
    }

    /// The identity of the store this snapshot was taken from.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// The publication epoch: 0 for the initial state, bumped by one
    /// per published batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared state (for callers that need to hold an `Arc`).
    pub fn state(&self) -> &Arc<State> {
        &self.state
    }
}

impl Deref for Snapshot {
    type Target = State;

    fn deref(&self) -> &State {
        &self.state
    }
}

/// A multi-reader, single-writer-at-a-time shared [`State`] with
/// atomic snapshot publication.
///
/// * [`SharedState::snapshot`] — wait-free for practical purposes: a
///   read lock held just long enough to bump an `Arc`.
/// * [`SharedState::ingest`] / [`SharedState::ingest_batches`] — batch
///   mutation through the bulk path, then an atomic epoch-bumping swap.
///   Writers serialize on a dedicated mutex; the `current` write lock
///   is held only for the pointer swap itself.
#[derive(Debug)]
pub struct SharedState {
    store_id: u64,
    current: RwLock<Snapshot>,
    /// Writers serialize here so clone → mutate → swap is atomic
    /// without holding the readers' lock across the mutation.
    writer: Mutex<()>,
}

impl SharedState {
    /// Share a state, as epoch 0 of a fresh store.
    pub fn new(state: State) -> SharedState {
        let store_id = next_store_id();
        SharedState {
            store_id,
            current: RwLock::new(Snapshot {
                store_id,
                epoch: 0,
                state: Arc::new(state),
            }),
            writer: Mutex::new(()),
        }
    }

    /// The identity of this store.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("not poisoned").epoch
    }

    /// Pin the current snapshot. The caller keeps it — and every result
    /// computed from it stays bit-identical — no matter how many epochs
    /// are published afterwards.
    pub fn snapshot(&self) -> Snapshot {
        self.current.read().expect("not poisoned").clone()
    }

    /// Ingest one relation's batch of tuples and publish. Returns the
    /// number of genuinely new rows and the epoch now current (a batch
    /// of only duplicates changes nothing and publishes nothing).
    pub fn ingest(&self, relation: &str, rows: Vec<Tuple>) -> Result<(usize, u64), StateError> {
        self.ingest_batches([(relation.to_string(), rows)])
    }

    /// Ingest batches for several relations as **one** publication:
    /// readers either see none of the batch or all of it. Any scheme
    /// violation aborts the whole ingest with nothing published.
    pub fn ingest_batches<I>(&self, batches: I) -> Result<(usize, u64), StateError>
    where
        I: IntoIterator<Item = (String, Vec<Tuple>)>,
    {
        let _writing = self.writer.lock().expect("not poisoned");
        let base = self.snapshot();
        // Copy-on-write: pointer bumps now; the bulk path deep-copies
        // the dictionary and touched relations when it mutates them.
        let mut next = (*base.state).clone();
        let mut added = 0;
        for (relation, rows) in batches {
            added += next.extend_bulk(&relation, rows)?;
        }
        if added == 0 {
            return Ok((0, base.epoch));
        }
        let epoch = base.epoch + 1;
        *self.current.write().expect("not poisoned") = Snapshot {
            store_id: self.store_id,
            epoch,
            state: Arc::new(next),
        };
        Ok((added, epoch))
    }

    /// Replace the state wholesale (schema migrations, reloads) as the
    /// next epoch.
    pub fn publish(&self, state: State) -> u64 {
        let _writing = self.writer.lock().expect("not poisoned");
        let mut cur = self.current.write().expect("not poisoned");
        let epoch = cur.epoch + 1;
        *cur = Snapshot {
            store_id: self.store_id,
            epoch,
            state: Arc::new(state),
        };
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::state::Value;

    // The whole point: one store, many executors, scoped threads.
    const _: fn() = || {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SharedState>();
        assert_sync::<Snapshot>();
    };

    fn schema() -> Schema {
        Schema::new().with_relation("R", 1).with_relation("S", 2)
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let shared = SharedState::new(State::new(schema()));
        let s0 = shared.snapshot();
        let (added, e1) = shared.ingest("R", vec![vec![Value::Nat(1)]]).unwrap();
        assert_eq!((added, e1), (1, 1));
        let s1 = shared.snapshot();
        shared
            .ingest("R", vec![vec![Value::Str("x".into())]])
            .unwrap();
        assert_eq!(s0.size(), 0);
        assert_eq!(s1.size(), 1);
        assert_eq!(shared.snapshot().size(), 2);
        assert_eq!((s0.epoch(), s1.epoch(), shared.epoch()), (0, 1, 2));
        assert_eq!(s0.store_id(), shared.store_id());
    }

    #[test]
    fn duplicate_only_batches_publish_nothing() {
        let shared = SharedState::new(State::new(schema()).with_tuple("R", vec![Value::Nat(1)]));
        let (added, epoch) = shared.ingest("R", vec![vec![Value::Nat(1)]]).unwrap();
        assert_eq!((added, epoch), (0, 0));
        assert_eq!(shared.epoch(), 0);
    }

    #[test]
    fn multi_relation_ingest_is_atomic_on_error() {
        let shared = SharedState::new(State::new(schema()));
        let err = shared.ingest_batches([
            ("R".to_string(), vec![vec![Value::Nat(1)]]),
            ("Bogus".to_string(), vec![vec![Value::Nat(2)]]),
        ]);
        assert!(matches!(err, Err(StateError::UnknownRelation { .. })));
        assert_eq!(shared.epoch(), 0, "failed batches publish nothing");
        assert_eq!(shared.snapshot().size(), 0);
    }

    #[test]
    fn publication_shares_untouched_columns() {
        let mut base = State::new(schema());
        base.extend_bulk(
            "S",
            (0..100)
                .map(|i| vec![Value::Nat(i), Value::Nat(i + 1)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let shared = SharedState::new(base);
        let before = shared.snapshot();
        shared.ingest("R", vec![vec![Value::Nat(9)]]).unwrap();
        let after = shared.snapshot();
        // The untouched relation's column is the same allocation.
        assert!(std::ptr::eq(
            before.vrel("S").unwrap(),
            after.vrel("S").unwrap()
        ));
        assert!(!std::ptr::eq(
            before.vrel("R").unwrap(),
            after.vrel("R").unwrap()
        ));
    }

    #[test]
    fn detached_snapshots_have_distinct_stores() {
        let a = Snapshot::detached(State::new(schema()));
        let b = Snapshot::detached(State::new(schema()));
        assert_ne!(a.store_id(), b.store_id());
        assert_eq!(a.epoch(), 0);
    }

    #[test]
    fn publish_replaces_wholesale() {
        let shared = SharedState::new(State::new(schema()));
        let epoch = shared.publish(State::new(schema()).with_tuple("R", vec![Value::Nat(3)]));
        assert_eq!(epoch, 1);
        assert_eq!(shared.snapshot().size(), 1);
    }

    #[test]
    fn fingerprints_track_content_not_history() {
        let by_insert = State::new(schema())
            .with_tuple("R", vec![Value::Str("b".into())])
            .with_tuple("R", vec![Value::Str("a".into())]);
        let mut by_bulk = State::new(schema());
        by_bulk
            .extend_bulk(
                "R",
                vec![vec![Value::Str("a".into())], vec![Value::Str("b".into())]],
            )
            .unwrap();
        // Different interning order, equal content: equal fingerprints.
        assert_eq!(by_insert.fingerprint(), by_bulk.fingerprint());
        let mut grown = by_bulk.clone();
        grown.insert("R", vec![Value::Str("c".into())]);
        assert_ne!(grown.fingerprint(), by_bulk.fingerprint());
    }
}
