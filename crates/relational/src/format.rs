//! The on-disk binary columnar snapshot format.
//!
//! JSON stays the human-readable interchange format, but parsing it is
//! the cold-load bottleneck: every value re-parses and the dictionary
//! re-interns from scratch. A *snapshot* instead dumps the columnar
//! store as it sits in memory — the dictionary's entries in id order
//! (so reloading reconstructs the exact same id assignment and the
//! relation columns need no re-encoding) and each relation's flat
//! `u64` word column verbatim, with per-column statistics precomputed.
//! Loading is bounds-checked bulk reads: no per-value parsing, no
//! interning, stats ready before the first query.
//!
//! ## Layout (version 1)
//!
//! All integers are little-endian `u64` unless noted.
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------------------
//!      0     7  magic  b"FQSNAP\0"
//!      7     1  version byte (1)
//!      8    24  META section entry:  offset, length, checksum
//!     32    24  DICT section entry:  offset, length, checksum
//!     56    24  RELS section entry:  offset, length, checksum
//!     80     8  header checksum (over bytes 0..80)
//!     88     …  the three sections, consecutive
//! ```
//!
//! **META** — the schema and constants as one compact JSON object
//! (`{"schema":…,"constants":…}`); both are tiny and their JSON forms
//! are already pinned by round-trip tests.
//!
//! **DICT** — the interning dictionary, *in id order*:
//!
//! ```text
//! entry_count   u64
//! blob_length   u64
//! tags          entry_count × u8   (0 = big natural, 1 = string)
//! payloads      entry_count × u64  (the natural, or the string's byte length)
//! string blob   blob_length bytes  (all strings concatenated, id order)
//! ```
//!
//! **RELS** — one record per relation, in schema (name) order:
//!
//! ```text
//! relation_count  u64
//! per relation:
//!   name_length   u64, then the name's UTF-8 bytes
//!   arity         u64
//!   rows          u64
//!   words         rows × arity × u64   (the VRel column, verbatim)
//!   stats         arity × (distinct u64, min_word u64, max_word u64)
//! ```
//!
//! Stats min/max are stored as value *words* (they occur in the column,
//! so they decode through the dictionary just loaded); an empty
//! relation writes zeros and loads as `None` bounds.
//!
//! Every section carries an [`FxHasher`](crate::fx::FxHasher) checksum
//! and the header checksums itself, so truncated or bit-flipped files
//! surface as a diagnosed [`StateError`] — never a panic, never a
//! silently wrong state. (The checksums guard against *accidental*
//! corruption; sortedness of adopted columns is re-asserted in debug
//! builds only.)

use crate::schema::Schema;
use crate::state::{State, StateError, Value};
use crate::val::{ColStats, Dict, DictEntry, VRel, Val};
use fq_json::{FromJson, ToJson};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The canonical name of the current format, reported by `fq explain`
/// and the serve protocol's `snapshot-info`.
pub const FORMAT_ID: &str = "fqsnap-v1";

/// The id reported for states that arrived as JSON (or were built in
/// memory) rather than from a snapshot.
pub const JSON_FORMAT_ID: &str = "json";

const MAGIC: [u8; 7] = *b"FQSNAP\0";
const VERSION: u8 = 1;
const SECTIONS: usize = 3;
const SECTION_NAMES: [&str; SECTIONS] = ["meta", "dictionary", "relations"];
/// magic + version + 3 × (offset, len, checksum) + header checksum.
const HEADER_LEN: usize = 8 + SECTIONS * 24 + 8;

/// Do these bytes begin with the snapshot magic? The auto-detection
/// probe every load path runs before choosing a parser.
pub fn is_snapshot(bytes: &[u8]) -> bool {
    // Magic plus the version byte: anything shorter is not a snapshot.
    bytes.len() > MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

fn checksum(bytes: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fx::FxHasher::default();
    h.write(bytes);
    h.finish()
}

fn corrupt(detail: impl Into<String>) -> StateError {
    StateError::SnapshotCorrupt {
        detail: detail.into(),
    }
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn section_meta(state: &State) -> Vec<u8> {
    fq_json::object([
        ("schema", state.schema().to_json()),
        ("constants", state.constants().to_json()),
    ])
    .to_compact()
    .into_bytes()
}

fn section_dict(dict: &Dict) -> Vec<u8> {
    let entries = dict.raw_entries();
    let blob_len = dict.string_bytes();
    let mut out = Vec::with_capacity(16 + entries.len() * 9 + blob_len);
    put_u64(&mut out, entries.len() as u64);
    put_u64(&mut out, blob_len as u64);
    for e in entries {
        out.push(match e {
            DictEntry::Big(_) => 0,
            DictEntry::Str(_) => 1,
        });
    }
    for e in entries {
        match e {
            DictEntry::Big(n) => put_u64(&mut out, *n),
            DictEntry::Str(s) => put_u64(&mut out, s.len() as u64),
        }
    }
    for e in entries {
        if let DictEntry::Str(s) = e {
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

fn section_rels(state: &State) -> Vec<u8> {
    let dict = state.dict();
    let mut out = Vec::new();
    put_u64(&mut out, state.schema().relations().count() as u64);
    for (name, _) in state.schema().relations() {
        let rel = state.vrel(name).expect("declared relations are stored");
        put_u64(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        put_u64(&mut out, rel.arity() as u64);
        put_u64(&mut out, rel.rows() as u64);
        out.reserve(rel.data().len() * 8);
        for &v in rel.data() {
            put_u64(&mut out, v.raw());
        }
        // Writing stats forces their computation, so loaders get them
        // for free — cold start pays zero stats passes.
        for st in rel.stats(dict) {
            let word =
                |v: &Option<Value>| v.as_ref().and_then(|v| dict.lookup(v)).map_or(0, Val::raw);
            put_u64(&mut out, st.distinct as u64);
            put_u64(&mut out, word(&st.min));
            put_u64(&mut out, word(&st.max));
        }
    }
    out
}

fn assemble(sections: [Vec<u8>; SECTIONS]) -> Vec<u8> {
    let total = HEADER_LEN + sections.iter().map(Vec::len).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let mut offset = HEADER_LEN as u64;
    for s in &sections {
        put_u64(&mut out, offset);
        put_u64(&mut out, s.len() as u64);
        put_u64(&mut out, checksum(s));
        offset += s.len() as u64;
    }
    let head = checksum(&out);
    put_u64(&mut out, head);
    debug_assert_eq!(out.len(), HEADER_LEN);
    for s in sections {
        out.extend_from_slice(&s);
    }
    out
}

/// Serialize a state into snapshot bytes.
pub fn write(state: &State) -> Vec<u8> {
    assemble([
        section_meta(state),
        section_dict(state.dict()),
        section_rels(state),
    ])
}

/// The exact byte length [`write()`] would produce, without building the
/// word sections — O(dictionary) work, so `snapshot-info` can report
/// on-disk size per request even for multi-million-row states.
pub fn snapshot_len(state: &State) -> usize {
    let dict = state.dict();
    let dict_len = 16 + dict.len() * 9 + dict.string_bytes();
    let rels_len = 8 + state
        .schema()
        .relations()
        .map(|(name, _)| {
            let rel = state.vrel(name).expect("declared relations are stored");
            24 + name.len() + rel.data().len() * 8 + rel.arity() * 24
        })
        .sum::<usize>();
    HEADER_LEN + section_meta(state).len() + dict_len + rels_len
}

/// A bounds-checked reader over one section's bytes: every overrun is a
/// truncation diagnostic naming the section, never a slice panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("{} section truncated", self.section)))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// A `u64` that must fit a `usize` (a count or length).
    fn len_of(&mut self, what: &str) -> Result<usize, StateError> {
        let section = self.section;
        usize::try_from(self.u64()?)
            .map_err(|_| corrupt(format!("{section} section: implausible {what}")))
    }

    fn done(&self) -> Result<(), StateError> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(format!(
                "{} section has {} trailing byte(s)",
                self.section,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Validate the header and return the three checksummed sections.
fn split_sections(bytes: &[u8]) -> Result<[&[u8]; SECTIONS], StateError> {
    if !is_snapshot(bytes) {
        return Err(StateError::SnapshotMagic);
    }
    let version = bytes[MAGIC.len()];
    if version != VERSION {
        return Err(StateError::SnapshotVersion { found: version });
    }
    if bytes.len() < HEADER_LEN {
        return Err(corrupt("header truncated"));
    }
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8B"));
    if checksum(&bytes[..HEADER_LEN - 8]) != u64_at(HEADER_LEN - 8) {
        return Err(corrupt("header checksum mismatch"));
    }
    let mut out = [&bytes[..0]; SECTIONS];
    for (i, name) in SECTION_NAMES.iter().enumerate() {
        let entry = 8 + i * 24;
        let start = usize::try_from(u64_at(entry))
            .map_err(|_| corrupt(format!("{name} section: implausible offset")))?;
        let len = usize::try_from(u64_at(entry + 8))
            .map_err(|_| corrupt(format!("{name} section: implausible length")))?;
        let end = start
            .checked_add(len)
            .filter(|&e| start >= HEADER_LEN && e <= bytes.len())
            .ok_or_else(|| corrupt(format!("{name} section out of bounds (truncated file?)")))?;
        let data = &bytes[start..end];
        if checksum(data) != u64_at(entry + 16) {
            return Err(corrupt(format!("{name} section checksum mismatch")));
        }
        out[i] = data;
    }
    Ok(out)
}

fn read_meta(bytes: &[u8]) -> Result<(Schema, BTreeMap<String, Value>), StateError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| corrupt("meta section is not valid UTF-8"))?;
    let json = fq_json::parse(text).map_err(|e| corrupt(format!("meta section: {e}")))?;
    let field = |key| fq_json::member(&json, key).map_err(|e| corrupt(format!("meta: {e}")));
    let schema =
        Schema::from_json(field("schema")?).map_err(|e| corrupt(format!("meta schema: {e}")))?;
    let constants = BTreeMap::<String, Value>::from_json(field("constants")?)
        .map_err(|e| corrupt(format!("meta constants: {e}")))?;
    Ok((schema, constants))
}

fn read_dict(bytes: &[u8]) -> Result<Dict, StateError> {
    let mut c = Cursor::new(bytes, "dictionary");
    let count = c.len_of("entry count")?;
    let blob_len = c.len_of("string blob length")?;
    let tags = c.take(count)?;
    let payload_len = count
        .checked_mul(8)
        .ok_or_else(|| corrupt("dictionary section: implausible entry count"))?;
    let payloads = c.take(payload_len)?;
    let blob = c.take(blob_len)?;
    c.done()?;
    let mut entries = Vec::with_capacity(count);
    let mut at = 0usize;
    for (id, (&tag, chunk)) in tags.iter().zip(payloads.chunks_exact(8)).enumerate() {
        let payload = u64::from_le_bytes(chunk.try_into().expect("8B"));
        match tag {
            0 => entries.push(DictEntry::Big(payload)),
            1 => {
                let len = usize::try_from(payload).map_err(|_| {
                    corrupt(format!("implausible length for dictionary entry {id}"))
                })?;
                let end = at
                    .checked_add(len)
                    .filter(|&e| e <= blob.len())
                    .ok_or_else(|| {
                        corrupt(format!("dictionary entry {id} overruns the string blob"))
                    })?;
                let s = std::str::from_utf8(&blob[at..end])
                    .map_err(|_| corrupt(format!("dictionary entry {id} is not valid UTF-8")))?;
                at = end;
                entries.push(DictEntry::Str(Arc::from(s)));
            }
            other => {
                return Err(corrupt(format!(
                    "unknown tag {other} for dictionary entry {id}"
                )))
            }
        }
    }
    if at != blob.len() {
        return Err(corrupt(
            "dictionary string blob length disagrees with the entry lengths",
        ));
    }
    Dict::from_raw_entries(entries).map_err(corrupt)
}

fn read_rels(
    bytes: &[u8],
    schema: &Schema,
    dict: &Dict,
) -> Result<BTreeMap<String, Arc<VRel>>, StateError> {
    let mut c = Cursor::new(bytes, "relations");
    let count = c.len_of("relation count")?;
    let declared = schema.relations().count();
    if count != declared {
        return Err(corrupt(format!(
            "snapshot stores {count} relation(s), the scheme declares {declared}"
        )));
    }
    let check_word = |v: Val, name: &str| -> Result<Val, StateError> {
        match v.id() {
            Some(id) if id >= dict.len() => Err(corrupt(format!(
                "relation `{name}` references dictionary id {id}, but only {} entries exist",
                dict.len()
            ))),
            _ => Ok(v),
        }
    };
    let mut out = BTreeMap::new();
    for _ in 0..count {
        let name_len = c.len_of("relation name length")?;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| corrupt("relation name is not valid UTF-8"))?
            .to_string();
        let arity = c.len_of("arity")?;
        match schema.arity(&name) {
            None => return Err(StateError::UnknownRelation { relation: name }),
            Some(a) if a != arity => {
                return Err(StateError::ArityMismatch {
                    relation: name,
                    expected: a,
                    got: arity,
                })
            }
            Some(_) => {}
        }
        let rows = c.len_of("row count")?;
        if arity == 0 && rows > 1 {
            return Err(corrupt(format!(
                "zero-arity relation `{name}` claims {rows} rows"
            )));
        }
        // The declared row count must tile into whole arity-strided
        // rows of the remaining bytes — a bad stride is corruption,
        // not a smaller relation.
        let words = rows
            .checked_mul(arity)
            .and_then(|w| w.checked_mul(8))
            .ok_or_else(|| corrupt(format!("relation `{name}`: implausible row count")))?;
        let raw = c.take(words)?;
        let mut data = Vec::with_capacity(rows * arity);
        for chunk in raw.chunks_exact(8) {
            let v = Val::from_raw(u64::from_le_bytes(chunk.try_into().expect("8B")));
            data.push(check_word(v, &name)?);
        }
        let mut stats = Vec::with_capacity(arity);
        for _ in 0..arity {
            let distinct = c.len_of("distinct count")?;
            if distinct > rows || (distinct == 0) != (rows == 0) {
                return Err(corrupt(format!(
                    "relation `{name}`: {distinct} distinct values in a column of {rows} row(s)"
                )));
            }
            let min = c.u64()?;
            let max = c.u64()?;
            let bound = |w: u64| -> Result<Option<Value>, StateError> {
                if rows == 0 {
                    return Ok(None);
                }
                Ok(Some(dict.decode(check_word(Val::from_raw(w), &name)?)))
            };
            stats.push(ColStats {
                distinct,
                min: bound(min)?,
                max: bound(max)?,
            });
        }
        let rel = VRel::assemble(arity, rows, data, stats, dict);
        if out.insert(name.clone(), Arc::new(rel)).is_some() {
            return Err(corrupt(format!("duplicate relation `{name}`")));
        }
    }
    c.done()?;
    Ok(out)
}

/// Deserialize snapshot bytes back into a [`State`].
///
/// Every structural defect — wrong magic, unsupported version,
/// truncation, checksum mismatch, dangling dictionary ids, bad arity
/// strides — is a diagnosed [`StateError`]; this function does not
/// panic on untrusted input.
pub fn read(bytes: &[u8]) -> Result<State, StateError> {
    let [meta, dict_bytes, rels_bytes] = split_sections(bytes)?;
    let (schema, constants) = read_meta(meta)?;
    for name in constants.keys() {
        if !schema.constants().iter().any(|c| c == name) {
            return Err(StateError::UnknownConstant { name: name.clone() });
        }
    }
    let dict = read_dict(dict_bytes)?;
    let relations = read_rels(rels_bytes, &schema, &dict)?;
    Ok(State::from_parts(schema, dict, relations, constants))
}

/// Read only the schema (and header validation) from snapshot bytes —
/// the cheap path behind schema auto-detection in CLI loads.
pub fn read_schema(bytes: &[u8]) -> Result<Schema, StateError> {
    let [meta, _, _] = split_sections(bytes)?;
    Ok(read_meta(meta)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateBuilder;

    fn sample_state() -> State {
        let schema = Schema::new()
            .with_relation("Run", 3)
            .with_relation("Halted", 2)
            .with_relation("Empty", 1)
            .with_relation("Flag", 0)
            .with_constant("c")
            .with_constant("d");
        let mut b = StateBuilder::new(schema);
        for i in 0..40u64 {
            b.row(
                "Run",
                vec![
                    Value::Str(format!("machine#{:02}", i % 7)),
                    Value::Nat(i),
                    Value::Str(format!("tape&{}", i % 3)),
                ],
            );
            b.row("Halted", vec![Value::Nat(i % 5), Value::Nat((1 << 63) + i)]);
        }
        b.row("Flag", Vec::<Value>::new());
        b.constant("c", 7u64);
        b.constant("d", "trace#0");
        b.finish()
    }

    #[test]
    fn round_trip_preserves_state_stats_and_json() {
        let state = sample_state();
        let bytes = write(&state);
        assert!(is_snapshot(&bytes));
        assert!(!is_snapshot(b"{\"schema\""));
        let loaded = read(&bytes).unwrap();
        assert_eq!(loaded, state);
        assert_eq!(fq_json::to_string(&loaded), fq_json::to_string(&state));
        for rel in ["Run", "Halted", "Empty", "Flag"] {
            assert_eq!(loaded.column_stats(rel), state.column_stats(rel), "{rel}");
        }
        assert_eq!(loaded.fingerprint(), state.fingerprint());
        assert_eq!(read_schema(&bytes).unwrap(), *state.schema());
    }

    #[test]
    fn snapshot_len_matches_write() {
        for state in [sample_state(), State::new(Schema::new())] {
            assert_eq!(write(&state).len(), snapshot_len(&state));
        }
    }

    #[test]
    fn empty_state_round_trips() {
        let state = State::new(Schema::new().with_relation("R", 2));
        let loaded = read(&write(&state)).unwrap();
        assert_eq!(loaded, state);
        assert_eq!(loaded.column_stats("R").unwrap().len(), 2);
        assert_eq!(loaded.column_stats("R").unwrap()[0].min, None);
    }

    #[test]
    fn wrong_magic_and_future_version_are_diagnosed() {
        assert_eq!(read(b"").unwrap_err(), StateError::SnapshotMagic);
        assert_eq!(
            read(b"{\"schema\": {}}").unwrap_err(),
            StateError::SnapshotMagic
        );
        let mut bytes = write(&sample_state());
        bytes[7] = 9;
        assert_eq!(
            read(&bytes).unwrap_err(),
            StateError::SnapshotVersion { found: 9 }
        );
    }

    #[test]
    fn every_truncation_is_diagnosed() {
        let bytes = write(&sample_state());
        for len in 0..bytes.len() {
            let err = read(&bytes[..len]).expect_err("truncated snapshots must not load");
            assert!(
                matches!(
                    err,
                    StateError::SnapshotMagic | StateError::SnapshotCorrupt { .. }
                ),
                "truncation at {len}: {err}"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_diagnosed() {
        let bytes = write(&sample_state());
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x40;
            read(&flipped).expect_err("bit-flipped snapshots must not load");
        }
    }

    /// Re-checksummed structural damage (an attacker, or a buggy
    /// writer) still diagnoses: the row count must tile the section.
    #[test]
    fn bad_arity_stride_is_diagnosed() {
        let state = sample_state();
        let mut rels = section_rels(&state);
        // First record: count u64, name_len u64, "Empty"... — schema
        // order puts "Empty" first; bump its row count from 0 to 2.
        let rows_at = 8 + 8 + "Empty".len() + 8;
        rels[rows_at..rows_at + 8].copy_from_slice(&2u64.to_le_bytes());
        let bytes = assemble([section_meta(&state), section_dict(state.dict()), rels]);
        let err = read(&bytes).unwrap_err();
        assert!(
            matches!(err, StateError::SnapshotCorrupt { .. }),
            "bad stride: {err}"
        );
    }

    #[test]
    fn schema_mismatches_are_diagnosed() {
        let state = sample_state();
        // A snapshot whose META declares a different scheme than its
        // RELS section stores.
        let other = State::new(Schema::new().with_relation("Other", 1));
        let bytes = assemble([
            section_meta(&other),
            section_dict(state.dict()),
            section_rels(&state),
        ]);
        assert!(matches!(
            read(&bytes).unwrap_err(),
            StateError::SnapshotCorrupt { .. }
        ));
    }
}
