//! A fast, non-cryptographic hasher for the storage and executor hot
//! paths (the multiply-rotate hash rustc itself uses for its interning
//! tables).
//!
//! The std `HashMap` default (SipHash) is keyed and DoS-resistant but
//! processes long keys slowly; dictionary interning hashes every
//! arriving string (hundreds of bytes each on trace workloads) and hash
//! joins hash millions of one-word keys, and neither table is exposed
//! to adversarial key choice — the keys come from the state the caller
//! already controls. Swapping the hasher is purely an optimization:
//! iteration order of the affected maps is never observable (the
//! dictionary is id-addressed, join outputs are re-sorted).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using [`FxHasher`].
pub type FxMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` alias using [`FxHasher`].
pub type FxSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// An [`FxMap`] with preallocated capacity.
pub fn map_with_capacity<K, V>(capacity: usize) -> FxMap<K, V> {
    FxMap::with_capacity_and_hasher(capacity, Default::default())
}

/// An [`FxSet`] with preallocated capacity.
pub fn set_with_capacity<T>(capacity: usize) -> FxSet<T> {
    FxSet::with_capacity_and_hasher(capacity, Default::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc "Fx" hash: one rotate + xor + multiply per word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_tails_are_length_tagged() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abcdefgh-run"), hash(b"abcdefgh-run"));
        // A shorter key padded with zeros must not collide with the
        // padding bytes spelled out (the tail mixes in its length).
        assert_ne!(hash(b"ab"), hash(b"ab\0\0\0\0\0\0"));
        assert_ne!(hash(b""), hash(b"\0"));
    }

    #[test]
    fn fxmap_behaves_like_a_map() {
        let mut m: FxMap<String, u32> = FxMap::default();
        for i in 0..1000u32 {
            m.insert(format!("trace#{i}#11&"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("trace#617#11&"), Some(&617));
    }
}
