//! The *safe-range* (range-restriction) test — the classic effective
//! syntax for domain-independent queries.
//!
//! Section 1.4: "Ullman in \[Ull82\] (and somewhat more clearly in \[Ull88\])
//! shows that a recursive syntax for domain-independent queries exists."
//! This module implements the standard check: convert to safe-range
//! normal form (no `∀`, no `→`/`↔`, negation only over atoms or
//! subformulas), then compute the set `rr(φ)` of *range-restricted*
//! variables; the formula is safe-range iff the computation never fails
//! and `rr(φ)` equals the free variables.
//!
//! Only database relation atoms and equalities with constants restrict
//! ranges; infinite domain predicates (such as `<` or the trace predicate
//! `P`) do **not** — precisely why the safety problem is interesting over
//! richer domains.

use crate::schema::Schema;
use fq_logic::Formula;
use std::collections::BTreeSet;

/// Why a formula failed the safe-range test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotSafeRange {
    /// An existential variable is not range-restricted in its scope.
    UnrestrictedQuantifier { var: String },
    /// The final range-restricted set misses some free variables.
    UnrestrictedFree { vars: Vec<String> },
}

impl std::fmt::Display for NotSafeRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotSafeRange::UnrestrictedQuantifier { var } => {
                write!(f, "quantified variable `{var}` is not range-restricted")
            }
            NotSafeRange::UnrestrictedFree { vars } => {
                write!(f, "free variables {vars:?} are not range-restricted")
            }
        }
    }
}

impl std::error::Error for NotSafeRange {}

/// Safe-range normal form: expand `→`/`↔`, replace `∀x φ` by `¬∃x ¬φ`,
/// and push negations through `∧`/`∨` by De Morgan so that `¬` appears
/// only in front of atoms and existential subformulas.
pub fn srnf(f: &Formula) -> Formula {
    srnf_signed(f, true)
}

fn srnf_signed(f: &Formula, sign: bool) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => {
            if sign {
                f.clone()
            } else {
                Formula::not(f.clone())
            }
        }
        Formula::Not(g) => srnf_signed(g, !sign),
        Formula::And(gs) => {
            let parts = gs.iter().map(|g| srnf_signed(g, sign));
            if sign {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Or(gs) => {
            let parts = gs.iter().map(|g| srnf_signed(g, sign));
            if sign {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Implies(a, b) => {
            let expanded = Formula::or([Formula::not(a.as_ref().clone()), b.as_ref().clone()]);
            srnf_signed(&expanded, sign)
        }
        Formula::Iff(a, b) => {
            let expanded = Formula::or([
                Formula::and([a.as_ref().clone(), b.as_ref().clone()]),
                Formula::and([
                    Formula::not(a.as_ref().clone()),
                    Formula::not(b.as_ref().clone()),
                ]),
            ]);
            srnf_signed(&expanded, sign)
        }
        Formula::Exists(v, g) => {
            let inner = Formula::exists(v.clone(), srnf_signed(g, true));
            if sign {
                inner
            } else {
                Formula::not(inner)
            }
        }
        Formula::Forall(v, g) => {
            // ∀x φ ⟺ ¬∃x ¬φ; under a negative sign this is ∃x ¬φ.
            let inner = Formula::exists(v.clone(), srnf_signed(g, false));
            if sign {
                Formula::not(inner)
            } else {
                inner
            }
        }
    }
}

/// The range-restricted variables of an SRNF formula, or the reason the
/// computation fails.
pub fn range_restricted(schema: &Schema, f: &Formula) -> Result<BTreeSet<String>, NotSafeRange> {
    match f {
        Formula::True | Formula::False => Ok(BTreeSet::new()),
        Formula::Pred(name, args) => {
            if schema.arity(name).is_some() {
                // A finite database relation bounds its variable arguments.
                let mut out = BTreeSet::new();
                for t in args {
                    if let fq_logic::Term::Var(v) = t {
                        out.insert(v.to_string());
                    }
                }
                Ok(out)
            } else {
                // An infinite domain predicate bounds nothing.
                Ok(BTreeSet::new())
            }
        }
        Formula::Eq(a, b) => {
            let mut out = BTreeSet::new();
            match (a, b) {
                (fq_logic::Term::Var(v), t) | (t, fq_logic::Term::Var(v)) if t.is_ground() => {
                    out.insert(v.to_string());
                }
                _ => {}
            }
            Ok(out)
        }
        Formula::Not(g) => {
            // The subformula must itself be well-formed, but contributes
            // no restricted variables.
            range_restricted(schema, g)?;
            Ok(BTreeSet::new())
        }
        Formula::And(gs) => {
            let mut out = BTreeSet::new();
            for g in gs {
                out.extend(range_restricted(schema, g)?);
            }
            // Propagate through equality conjuncts: x = y with y
            // restricted restricts x.
            loop {
                let mut changed = false;
                for g in gs {
                    if let Formula::Eq(fq_logic::Term::Var(x), fq_logic::Term::Var(y)) = g {
                        if out.contains(x.as_str()) && out.insert(y.to_string()) {
                            changed = true;
                        }
                        if out.contains(y.as_str()) && out.insert(x.to_string()) {
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            Ok(out)
        }
        Formula::Or(gs) => {
            let mut iter = gs.iter();
            let mut out = match iter.next() {
                Some(g) => range_restricted(schema, g)?,
                None => return Ok(BTreeSet::new()),
            };
            for g in iter {
                let r = range_restricted(schema, g)?;
                out = out.intersection(&r).cloned().collect();
            }
            Ok(out)
        }
        Formula::Exists(v, g) => {
            let inner = range_restricted(schema, g)?;
            if !inner.contains(v) {
                return Err(NotSafeRange::UnrestrictedQuantifier { var: v.clone() });
            }
            let mut out = inner;
            out.remove(v);
            Ok(out)
        }
        Formula::Forall(..) | Formula::Implies(..) | Formula::Iff(..) => {
            unreachable!("srnf removes ∀, →, ↔")
        }
    }
}

/// Whether a query is safe-range with respect to a scheme.
pub fn is_safe_range(schema: &Schema, query: &Formula) -> bool {
    check_safe_range(schema, query).is_ok()
}

/// Safe-range check with a diagnostic.
pub fn check_safe_range(schema: &Schema, query: &Formula) -> Result<(), NotSafeRange> {
    let normal = srnf(query);
    let rr = range_restricted(schema, &normal)?;
    let free = normal.free_vars();
    let missing: Vec<String> = free.difference(&rr).cloned().collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(NotSafeRange::UnrestrictedFree { vars: missing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn fathers() -> Schema {
        Schema::new().with_relation("F", 2)
    }

    fn safe(s: &str) -> bool {
        is_safe_range(&fathers(), &parse_formula(s).unwrap())
    }

    #[test]
    fn papers_queries_are_safe_range() {
        // M(x) and G(x, z) from Section 1.
        assert!(safe("exists y z. y != z & F(x, y) & F(x, z)"));
        assert!(safe("exists y. F(x, y) & F(y, z)"));
    }

    #[test]
    fn negated_relation_is_unsafe() {
        // ¬F(x, y) may have an infinite answer.
        assert!(!safe("!F(x, y)"));
    }

    #[test]
    fn papers_unsafe_disjunction() {
        // M(x) ∨ G(x, z): z is unrestricted in the first disjunct — the
        // paper's example of a formula that "may give an infinite answer".
        assert!(!safe(
            "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))"
        ));
    }

    #[test]
    fn equality_with_constant_restricts() {
        assert!(safe("x = 5"));
        assert!(!safe("x = y"));
        assert!(safe("x = 5 & y = x"));
    }

    #[test]
    fn equality_propagation_through_conjunction() {
        assert!(safe("F(x, y) & z = y"));
        assert!(safe("F(x, y) & z = y & w = z"));
        assert!(!safe("F(x, y) & z = w"));
    }

    #[test]
    fn disjunction_needs_both_sides() {
        assert!(safe("F(x, y) | (x = 1 & y = 2)"));
        assert!(!safe("F(x, y) | x = 1"));
    }

    #[test]
    fn quantifier_over_unrestricted_var_fails() {
        let err = check_safe_range(
            &fathers(),
            &parse_formula("exists y. x = x & y != 0").unwrap(),
        );
        assert!(matches!(
            err,
            Err(NotSafeRange::UnrestrictedQuantifier { .. })
        ));
    }

    #[test]
    fn forall_is_rewritten() {
        // ∀y (F(x,y) → y = 0): safe-range? SRNF: ¬∃y ¬(¬F ∨ y=0) =
        // ¬∃y (F(x,y) ∧ y ≠ 0) — the ∃y body restricts y via F. But x is
        // only under negation: not restricted. Conjoin a range for x.
        assert!(safe("(exists y. F(x, y)) & forall y. F(x, y) -> y = 3"));
        assert!(!safe("forall y. F(x, y) -> y = 3"));
    }

    #[test]
    fn domain_predicates_do_not_restrict() {
        assert!(!safe("x < 5"));
        assert!(safe("F(x, y) & x < 5"));
        assert!(!safe("P(m0, w0, p)"));
    }

    #[test]
    fn safe_negation_inside_conjunction() {
        assert!(safe("F(x, y) & !F(y, x)"));
    }

    #[test]
    fn constants_in_relation_atoms() {
        assert!(safe("F(1, y)"));
    }

    #[test]
    fn boolean_sentences_are_safe() {
        assert!(safe("exists x y. F(x, y)"));
        assert!(safe("true"));
    }
}
