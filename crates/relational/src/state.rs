//! Database states and the active domain.

use crate::schema::Schema;
use fq_json::{FromJson, JsonError, ToJson};
use fq_logic::{Formula, Term};
use std::collections::{BTreeMap, BTreeSet};

/// A domain element stored in a database: a natural number (numeric
/// domains of Section 2) or a string over the trace alphabet (domain
/// **T** of Section 3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Nat(u64),
    Str(String),
}

impl Value {
    /// The ground term denoting this value.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Nat(n) => Term::Nat(*n),
            Value::Str(s) => Term::Str(s.clone()),
        }
    }

    /// Parse a ground term.
    pub fn from_term(t: &Term) -> Option<Value> {
        match t {
            Term::Nat(n) => Some(Value::Nat(*n)),
            Term::Str(s) => Some(Value::Str(s.clone())),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Nat(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Nat(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

// Keep the serde externally-tagged enum format (`{"Nat": 1}`) that the
// files under `examples/data/` already use.
impl ToJson for Value {
    fn to_json(&self) -> fq_json::Value {
        match self {
            Value::Nat(n) => fq_json::object([("Nat", n.to_json())]),
            Value::Str(s) => fq_json::object([("Str", s.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(value: &fq_json::Value) -> Result<Self, JsonError> {
        match value.as_object() {
            Some([(tag, payload)]) if tag == "Nat" => Ok(Value::Nat(u64::from_json(payload)?)),
            Some([(tag, payload)]) if tag == "Str" => Ok(Value::Str(String::from_json(payload)?)),
            _ => Err(JsonError::new("expected {\"Nat\": …} or {\"Str\": …}")),
        }
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

/// A database state: finite relations plus values for scheme constants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct State {
    schema: Schema,
    relations: BTreeMap<String, BTreeSet<Tuple>>,
    constants: BTreeMap<String, Value>,
}

impl State {
    /// The empty state of a scheme.
    pub fn new(schema: Schema) -> Self {
        let mut relations = BTreeMap::new();
        for (name, _) in schema.relations() {
            relations.insert(name.to_string(), BTreeSet::new());
        }
        State {
            schema,
            relations,
            constants: BTreeMap::new(),
        }
    }

    /// The scheme of the state.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the relation is not in the scheme or the tuple has the
    /// wrong arity.
    pub fn insert(&mut self, relation: &str, tuple: impl Into<Tuple>) {
        let tuple = tuple.into();
        let arity = self
            .schema
            .arity(relation)
            .unwrap_or_else(|| panic!("relation `{relation}` not in the scheme"));
        assert_eq!(tuple.len(), arity, "tuple arity mismatch for `{relation}`");
        self.relations
            .get_mut(relation)
            .expect("initialized in new()")
            .insert(tuple);
    }

    /// Fluent insertion.
    pub fn with_tuple(mut self, relation: &str, tuple: impl Into<Tuple>) -> Self {
        self.insert(relation, tuple);
        self
    }

    /// Set the value of a scheme constant.
    ///
    /// # Panics
    ///
    /// Panics if the constant is not declared in the scheme.
    pub fn set_constant(&mut self, name: &str, value: impl Into<Value>) {
        assert!(
            self.schema.constants().iter().any(|c| c == name),
            "constant `{name}` not in the scheme"
        );
        self.constants.insert(name.to_string(), value.into());
    }

    /// Fluent constant assignment.
    pub fn with_constant(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.set_constant(name, value);
        self
    }

    /// The value of a scheme constant.
    pub fn constant(&self, name: &str) -> Option<&Value> {
        self.constants.get(name)
    }

    /// The tuples of a relation (empty for undeclared names).
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.relations.get(relation).into_iter().flatten()
    }

    /// Whether a tuple is present. Takes a slice so hot loops (the
    /// active-domain evaluator's predicate checks) need no `Vec`
    /// allocation per membership test.
    pub fn contains(&self, relation: &str, tuple: &[Value]) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(tuple))
    }

    /// Total number of stored tuples.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Number of tuples stored in one relation (0 for undeclared names).
    /// The optimizer's cardinality estimates start from these counts.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, |r| r.len())
    }

    /// The **active domain of the state**: every value stored in a
    /// relation or assigned to a scheme constant.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for rel in self.relations.values() {
            for tuple in rel {
                out.extend(tuple.iter().cloned());
            }
        }
        out.extend(self.constants.values().cloned());
        out
    }

    /// The active domain of a *query in this state*: the state's active
    /// domain plus all constants used in the formula ("the set of all
    /// constants used in the querying formula and/or elements contained
    /// in the database relations").
    pub fn query_active_domain(&self, query: &Formula) -> BTreeSet<Value> {
        let mut out = self.active_domain();
        let (nats, strs) = query.literal_constants();
        out.extend(nats.into_iter().map(Value::Nat));
        out.extend(strs.into_iter().map(Value::Str));
        out
    }
}

impl ToJson for State {
    fn to_json(&self) -> fq_json::Value {
        fq_json::object([
            ("schema", self.schema.to_json()),
            ("relations", self.relations.to_json()),
            ("constants", self.constants.to_json()),
        ])
    }
}

impl FromJson for State {
    fn from_json(value: &fq_json::Value) -> Result<Self, JsonError> {
        Ok(State {
            schema: FromJson::from_json(fq_json::member(value, "schema")?)?,
            relations: FromJson::from_json(fq_json::member(value, "relations")?)?,
            constants: FromJson::from_json(fq_json::member(value, "constants")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
    }

    #[test]
    fn insert_and_contains() {
        let s = fathers();
        assert!(s.contains("F", &[Value::Nat(1), Value::Nat(2)]));
        assert!(!s.contains("F", &[Value::Nat(2), Value::Nat(1)]));
        assert_eq!(s.size(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = fathers();
        s.insert("F", vec![Value::Nat(1), Value::Nat(2)]);
        assert_eq!(s.size(), 2);
    }

    #[test]
    #[should_panic(expected = "not in the scheme")]
    fn unknown_relation_panics() {
        let mut s = fathers();
        s.insert("G", vec![Value::Nat(1)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut s = fathers();
        s.insert("F", vec![Value::Nat(1)]);
    }

    #[test]
    fn active_domain_collects_everything() {
        let schema = Schema::new().with_relation("F", 2).with_constant("c");
        let s = State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_constant("c", 9u64);
        let ad = s.active_domain();
        assert_eq!(
            ad.into_iter().collect::<Vec<_>>(),
            vec![Value::Nat(1), Value::Nat(2), Value::Nat(9)]
        );
    }

    #[test]
    fn query_active_domain_adds_formula_constants() {
        let s = fathers();
        let q = parse_formula("F(x, 7) | x = \"1&\"").unwrap();
        let ad = s.query_active_domain(&q);
        assert!(ad.contains(&Value::Nat(7)));
        assert!(ad.contains(&Value::Str("1&".into())));
        assert!(ad.contains(&Value::Nat(1)));
    }

    #[test]
    fn constants_in_state() {
        let schema = Schema::new().with_constant("c");
        let s = State::new(schema).with_constant("c", "11");
        assert_eq!(s.constant("c"), Some(&Value::Str("11".into())));
        assert_eq!(s.constant("d"), None);
    }

    #[test]
    fn string_values() {
        let schema = Schema::new().with_relation("R", 1);
        let s = State::new(schema).with_tuple("R", vec![Value::Str("1&1".into())]);
        assert!(s.contains("R", &[Value::Str("1&1".into())]));
    }

    #[test]
    fn json_round_trip() {
        let s = fathers();
        let json = fq_json::to_string(&s);
        let back: State = fq_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn value_term_round_trip() {
        for v in [Value::Nat(5), Value::Str("1*".into())] {
            assert_eq!(Value::from_term(&v.to_term()), Some(v));
        }
        assert_eq!(Value::from_term(&Term::var("x")), None);
    }
}
