//! Database states and the active domain.
//!
//! Storage is columnar and dictionary-encoded: each [`State`] owns a
//! [`Dict`] interning strings and large naturals, and each relation is a
//! [`VRel`] — a flat, arity-strided, semantically sorted `Vec<Val>`.
//! [`Value`] survives as the boundary type (JSON, CLI, query results);
//! everything is encoded on insertion and decoded at the edges, so the
//! public surface (and the on-disk JSON format) is unchanged.

use crate::schema::Schema;
use crate::val::{ColStats, Dict, VRel, Val};
use fq_json::{FromJson, JsonError, ToJson};
use fq_logic::{Formula, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// A domain element stored in a database: a natural number (numeric
/// domains of Section 2) or a string over the trace alphabet (domain
/// **T** of Section 3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Nat(u64),
    Str(String),
}

impl Value {
    /// The ground term denoting this value.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Nat(n) => Term::Nat(*n),
            Value::Str(s) => Term::Str(s.clone()),
        }
    }

    /// Parse a ground term.
    pub fn from_term(t: &Term) -> Option<Value> {
        match t {
            Term::Nat(n) => Some(Value::Nat(*n)),
            Term::Str(s) => Some(Value::Str(s.clone())),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Nat(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Nat(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

// Keep the serde externally-tagged enum format (`{"Nat": 1}`) that the
// files under `examples/data/` already use.
impl ToJson for Value {
    fn to_json(&self) -> fq_json::Value {
        match self {
            Value::Nat(n) => fq_json::object([("Nat", n.to_json())]),
            Value::Str(s) => fq_json::object([("Str", s.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(value: &fq_json::Value) -> Result<Self, JsonError> {
        match value.as_object() {
            Some([(tag, payload)]) if tag == "Nat" => Ok(Value::Nat(u64::from_json(payload)?)),
            Some([(tag, payload)]) if tag == "Str" => Ok(Value::Str(String::from_json(payload)?)),
            _ => Err(JsonError::new("expected {\"Nat\": …} or {\"Str\": …}")),
        }
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

/// Why an insertion or constant assignment was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The relation is not declared in the scheme.
    UnknownRelation { relation: String },
    /// The tuple's length disagrees with the declared arity.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// The constant is not declared in the scheme.
    UnknownConstant { name: String },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::UnknownRelation { relation } => {
                write!(f, "relation `{relation}` not in the scheme")
            }
            StateError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "tuple arity mismatch for `{relation}`: the scheme declares \
                 arity {expected}, the tuple has {got} component(s)"
            ),
            StateError::UnknownConstant { name } => {
                write!(f, "constant `{name}` not in the scheme")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// A database state: finite relations plus values for scheme constants.
#[derive(Clone, Debug, Default)]
pub struct State {
    schema: Schema,
    dict: Dict,
    relations: BTreeMap<String, VRel>,
    constants: BTreeMap<String, Value>,
    /// Cached [`State::active_domain`]; cleared by every mutation.
    ad_cache: OnceLock<BTreeSet<Value>>,
}

impl State {
    /// The empty state of a scheme.
    pub fn new(schema: Schema) -> Self {
        let mut relations = BTreeMap::new();
        for (name, arity) in schema.relations() {
            relations.insert(name.to_string(), VRel::new(arity));
        }
        State {
            schema,
            dict: Dict::default(),
            relations,
            constants: BTreeMap::new(),
            ad_cache: OnceLock::new(),
        }
    }

    /// The scheme of the state.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The state's interning dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Insert a tuple, reporting scheme violations as a [`StateError`]
    /// instead of panicking (the `FromJson` load path routes through
    /// this, turning malformed state files into diagnostics).
    pub fn try_insert(
        &mut self,
        relation: &str,
        tuple: impl Into<Tuple>,
    ) -> Result<(), StateError> {
        let tuple = tuple.into();
        let arity = self
            .schema
            .arity(relation)
            .ok_or_else(|| StateError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        if tuple.len() != arity {
            return Err(StateError::ArityMismatch {
                relation: relation.to_string(),
                expected: arity,
                got: tuple.len(),
            });
        }
        let row: Vec<Val> = tuple.iter().map(|v| self.dict.encode(v)).collect();
        self.relations
            .get_mut(relation)
            .expect("initialized in new()")
            .insert(&row, &self.dict);
        self.ad_cache.take();
        Ok(())
    }

    /// Insert a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the relation is not in the scheme or the tuple has the
    /// wrong arity. Programmatic construction keeps this; fallible
    /// callers (file loading) use [`State::try_insert`].
    pub fn insert(&mut self, relation: &str, tuple: impl Into<Tuple>) {
        if let Err(e) = self.try_insert(relation, tuple) {
            match e {
                StateError::UnknownRelation { relation } => {
                    panic!("relation `{relation}` not in the scheme")
                }
                StateError::ArityMismatch { relation, .. } => {
                    panic!("tuple arity mismatch for `{relation}`")
                }
                StateError::UnknownConstant { name } => {
                    panic!("constant `{name}` not in the scheme")
                }
            }
        }
    }

    /// Fluent insertion.
    pub fn with_tuple(mut self, relation: &str, tuple: impl Into<Tuple>) -> Self {
        self.insert(relation, tuple);
        self
    }

    /// Set the value of a scheme constant, reporting an undeclared name
    /// as a [`StateError`].
    pub fn try_set_constant(
        &mut self,
        name: &str,
        value: impl Into<Value>,
    ) -> Result<(), StateError> {
        if !self.schema.constants().iter().any(|c| c == name) {
            return Err(StateError::UnknownConstant {
                name: name.to_string(),
            });
        }
        self.constants.insert(name.to_string(), value.into());
        self.ad_cache.take();
        Ok(())
    }

    /// Set the value of a scheme constant.
    ///
    /// # Panics
    ///
    /// Panics if the constant is not declared in the scheme.
    pub fn set_constant(&mut self, name: &str, value: impl Into<Value>) {
        if let Err(e) = self.try_set_constant(name, value) {
            panic!("{e}");
        }
    }

    /// Fluent constant assignment.
    pub fn with_constant(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.set_constant(name, value);
        self
    }

    /// The value of a scheme constant.
    pub fn constant(&self, name: &str) -> Option<&Value> {
        self.constants.get(name)
    }

    /// The stored constants (boundary use: serialization).
    pub fn constants(&self) -> &BTreeMap<String, Value> {
        &self.constants
    }

    /// The columnar store of a relation (`None` for undeclared names).
    pub fn vrel(&self, relation: &str) -> Option<&VRel> {
        self.relations.get(relation)
    }

    /// Per-column statistics of a relation, computed lazily.
    pub fn column_stats(&self, relation: &str) -> Option<&[ColStats]> {
        self.relations.get(relation).map(|r| r.stats(&self.dict))
    }

    /// The tuples of a relation, decoded, in semantic sorted order
    /// (empty for undeclared names).
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = Tuple> + '_ {
        self.relations
            .get(relation)
            .into_iter()
            .flat_map(|r| r.decoded(&self.dict))
    }

    /// Whether a tuple is present. Takes a slice so hot loops (the
    /// active-domain evaluator's predicate checks) need no `Vec`
    /// allocation per membership test.
    pub fn contains(&self, relation: &str, tuple: &[Value]) -> bool {
        let Some(rel) = self.relations.get(relation) else {
            return false;
        };
        if tuple.len() != rel.arity() {
            return false;
        }
        let mut row = Vec::with_capacity(tuple.len());
        for v in tuple {
            // A value the dictionary has never seen is in no stored tuple.
            match self.dict.lookup(v) {
                Some(val) => row.push(val),
                None => return false,
            }
        }
        rel.contains(&row, &self.dict)
    }

    /// Word-level membership: `vals` must come from this state's
    /// dictionary (overlay ids, which denote values no stored tuple
    /// contains, make the answer `false` immediately).
    pub fn contains_vals(&self, relation: &str, vals: &[Val]) -> bool {
        if vals
            .iter()
            .any(|v| v.id().is_some_and(|id| id >= self.dict.len()))
        {
            return false;
        }
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(vals, &self.dict))
    }

    /// Total number of stored tuples.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.rows()).sum()
    }

    /// Number of tuples stored in one relation (0 for undeclared names).
    /// The optimizer's cardinality estimates start from these counts.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, |r| r.rows())
    }

    /// The **active domain of the state**: every value stored in a
    /// relation or assigned to a scheme constant. Cached on the state;
    /// insertions and constant assignments invalidate the cache.
    pub fn active_domain(&self) -> &BTreeSet<Value> {
        self.ad_cache.get_or_init(|| {
            let mut words: std::collections::HashSet<Val> = std::collections::HashSet::new();
            for rel in self.relations.values() {
                words.extend(rel.data().iter().copied());
            }
            let mut out: BTreeSet<Value> = words.into_iter().map(|v| self.dict.decode(v)).collect();
            out.extend(self.constants.values().cloned());
            out
        })
    }

    /// The active domain of a *query in this state*: the state's active
    /// domain plus all constants used in the formula ("the set of all
    /// constants used in the querying formula and/or elements contained
    /// in the database relations").
    pub fn query_active_domain(&self, query: &Formula) -> BTreeSet<Value> {
        let mut out = self.active_domain().clone();
        let (nats, strs) = query.literal_constants();
        out.extend(nats.into_iter().map(Value::Nat));
        out.extend(strs.into_iter().map(Value::Str));
        out
    }
}

// Word representations differ between dictionaries, so equality decodes:
// two states are equal iff they store the same schema, tuples, and
// constants, exactly as the old `BTreeSet<Tuple>` representation's
// derived equality behaved.
impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.constants == other.constants
            && self.relations.len() == other.relations.len()
            && self
                .relations
                .iter()
                .zip(other.relations.iter())
                .all(|((ka, ra), (kb, rb))| {
                    ka == kb
                        && ra.rows() == rb.rows()
                        && ra.decoded(&self.dict).eq(rb.decoded(&other.dict))
                })
    }
}

impl Eq for State {}

impl ToJson for State {
    fn to_json(&self) -> fq_json::Value {
        // Reproduce the legacy `BTreeMap<String, BTreeSet<Tuple>>` shape
        // byte-for-byte: object keys in name order, each an array of
        // tuple arrays in semantic sorted order (the `VRel` row order).
        let relations = fq_json::Value::Object(
            self.relations
                .iter()
                .map(|(name, rel)| {
                    (
                        name.clone(),
                        fq_json::Value::Array(
                            rel.decoded(&self.dict).map(|t| t.to_json()).collect(),
                        ),
                    )
                })
                .collect(),
        );
        fq_json::object([
            ("schema", self.schema.to_json()),
            ("relations", relations),
            ("constants", self.constants.to_json()),
        ])
    }
}

impl FromJson for State {
    fn from_json(value: &fq_json::Value) -> Result<Self, JsonError> {
        let schema: Schema = FromJson::from_json(fq_json::member(value, "schema")?)?;
        let mut state = State::new(schema);
        let relations: BTreeMap<String, Vec<Tuple>> =
            FromJson::from_json(fq_json::member(value, "relations")?)?;
        for (name, tuples) in relations {
            for tuple in tuples {
                state
                    .try_insert(&name, tuple)
                    .map_err(|e| JsonError::new(format!("state relations: {e}")))?;
            }
        }
        let constants: BTreeMap<String, Value> =
            FromJson::from_json(fq_json::member(value, "constants")?)?;
        for (name, v) in constants {
            state
                .try_set_constant(&name, v)
                .map_err(|e| JsonError::new(format!("state constants: {e}")))?;
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
    }

    #[test]
    fn insert_and_contains() {
        let s = fathers();
        assert!(s.contains("F", &[Value::Nat(1), Value::Nat(2)]));
        assert!(!s.contains("F", &[Value::Nat(2), Value::Nat(1)]));
        assert_eq!(s.size(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = fathers();
        s.insert("F", vec![Value::Nat(1), Value::Nat(2)]);
        assert_eq!(s.size(), 2);
    }

    #[test]
    #[should_panic(expected = "not in the scheme")]
    fn unknown_relation_panics() {
        let mut s = fathers();
        s.insert("G", vec![Value::Nat(1)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut s = fathers();
        s.insert("F", vec![Value::Nat(1)]);
    }

    #[test]
    fn try_insert_reports_scheme_violations() {
        let mut s = fathers();
        assert_eq!(
            s.try_insert("G", vec![Value::Nat(1)]),
            Err(StateError::UnknownRelation {
                relation: "G".into()
            })
        );
        assert_eq!(
            s.try_insert("F", vec![Value::Nat(1)]),
            Err(StateError::ArityMismatch {
                relation: "F".into(),
                expected: 2,
                got: 1
            })
        );
        assert_eq!(s.size(), 2, "failed insertions store nothing");
        assert!(s
            .try_insert("F", vec![Value::Nat(9), Value::Nat(9)])
            .is_ok());
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn active_domain_collects_everything() {
        let schema = Schema::new().with_relation("F", 2).with_constant("c");
        let s = State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_constant("c", 9u64);
        let ad = s.active_domain();
        assert_eq!(
            ad.iter().cloned().collect::<Vec<_>>(),
            vec![Value::Nat(1), Value::Nat(2), Value::Nat(9)]
        );
    }

    #[test]
    fn active_domain_cache_invalidates_on_mutation() {
        let schema = Schema::new().with_relation("F", 2).with_constant("c");
        let mut s = State::new(schema).with_tuple("F", vec![Value::Nat(1), Value::Nat(2)]);
        assert_eq!(s.active_domain().len(), 2);
        s.insert("F", vec![Value::Nat(1), Value::Nat(5)]);
        assert!(s.active_domain().contains(&Value::Nat(5)));
        s.set_constant("c", 9u64);
        assert!(s.active_domain().contains(&Value::Nat(9)));
        assert_eq!(s.active_domain().len(), 4);
    }

    #[test]
    fn query_active_domain_adds_formula_constants() {
        let s = fathers();
        let q = parse_formula("F(x, 7) | x = \"1&\"").unwrap();
        let ad = s.query_active_domain(&q);
        assert!(ad.contains(&Value::Nat(7)));
        assert!(ad.contains(&Value::Str("1&".into())));
        assert!(ad.contains(&Value::Nat(1)));
    }

    #[test]
    fn constants_in_state() {
        let schema = Schema::new().with_constant("c");
        let s = State::new(schema).with_constant("c", "11");
        assert_eq!(s.constant("c"), Some(&Value::Str("11".into())));
        assert_eq!(s.constant("d"), None);
    }

    #[test]
    fn string_values() {
        let schema = Schema::new().with_relation("R", 1);
        let s = State::new(schema).with_tuple("R", vec![Value::Str("1&1".into())]);
        assert!(s.contains("R", &[Value::Str("1&1".into())]));
    }

    #[test]
    fn json_round_trip() {
        let s = fathers();
        let json = fq_json::to_string(&s);
        let back: State = fq_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn json_rejects_scheme_violations_with_diagnostics() {
        let bad_arity = r#"{"schema": {"relations": {"F": 2}, "constants": []},
            "relations": {"F": [[{"Nat": 1}]]}, "constants": {}}"#;
        let e = fq_json::from_str::<State>(bad_arity).unwrap_err();
        assert!(e.to_string().contains("arity mismatch"), "{e}");
        let bad_name = r#"{"schema": {"relations": {"F": 2}, "constants": []},
            "relations": {"G": [[{"Nat": 1}, {"Nat": 2}]]}, "constants": {}}"#;
        let e = fq_json::from_str::<State>(bad_name).unwrap_err();
        assert!(e.to_string().contains("not in the scheme"), "{e}");
        let bad_const = r#"{"schema": {"relations": {"F": 2}, "constants": []},
            "relations": {"F": []}, "constants": {"c": {"Nat": 1}}}"#;
        let e = fq_json::from_str::<State>(bad_const).unwrap_err();
        assert!(e.to_string().contains("not in the scheme"), "{e}");
    }

    #[test]
    fn value_term_round_trip() {
        for v in [Value::Nat(5), Value::Str("1*".into())] {
            assert_eq!(Value::from_term(&v.to_term()), Some(v));
        }
        assert_eq!(Value::from_term(&Term::var("x")), None);
    }

    #[test]
    fn word_membership_matches_value_membership() {
        let schema = Schema::new().with_relation("R", 2);
        let s = State::new(schema)
            .with_tuple("R", vec![Value::Nat(1), Value::Str("a".into())])
            .with_tuple("R", vec![Value::Str("b".into()), Value::Nat(u64::MAX)]);
        let row: Vec<_> = [Value::Nat(1), Value::Str("a".into())]
            .iter()
            .map(|v| s.dict().lookup(v).unwrap())
            .collect();
        assert!(s.contains_vals("R", &row));
        assert!(!s.contains_vals("R", &[row[1], row[0]]));
    }
}
