//! Database states and the active domain.
//!
//! Storage is columnar and dictionary-encoded: each [`State`] owns a
//! [`Dict`] interning strings and large naturals, and each relation is a
//! [`VRel`] — a flat, arity-strided, semantically sorted `Vec<Val>`.
//! [`Value`] survives as the boundary type (JSON, CLI, query results);
//! everything is encoded on insertion and decoded at the edges, so the
//! public surface (and the on-disk JSON format) is unchanged.
//!
//! Construction has two tiers. Point mutation ([`State::insert`] /
//! [`State::try_insert`]) routes each tuple through the O(rows)
//! single-row [`VRel::insert`]. Bulk construction — the JSON loader,
//! generated workloads, anything past a few thousand rows — goes
//! through [`StateBuilder`] (or the [`State::load_bulk`] /
//! [`State::extend_bulk`] conveniences), which stages encoded rows flat
//! and hands each relation one sort-dedupe-merge batch, making loads
//! O(n log n) instead of quadratic. Both tiers share the same
//! validation ([`StateError`]) and produce identical states.

use crate::schema::Schema;
use crate::val::{self, ColStats, Dict, VRel, Val};
use fq_json::{FromJson, JsonError, ToJson};
use fq_logic::{Formula, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

/// A domain element stored in a database: a natural number (numeric
/// domains of Section 2) or a string over the trace alphabet (domain
/// **T** of Section 3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Nat(u64),
    Str(String),
}

impl Value {
    /// The ground term denoting this value.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Nat(n) => Term::Nat(*n),
            Value::Str(s) => Term::Str(s.clone()),
        }
    }

    /// Parse a ground term.
    pub fn from_term(t: &Term) -> Option<Value> {
        match t {
            Term::Nat(n) => Some(Value::Nat(*n)),
            Term::Str(s) => Some(Value::Str(s.clone())),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Nat(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Nat(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

// Keep the serde externally-tagged enum format (`{"Nat": 1}`) that the
// files under `examples/data/` already use.
impl ToJson for Value {
    fn to_json(&self) -> fq_json::Value {
        match self {
            Value::Nat(n) => fq_json::object([("Nat", n.to_json())]),
            Value::Str(s) => fq_json::object([("Str", s.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(value: &fq_json::Value) -> Result<Self, JsonError> {
        match value.as_object() {
            Some([(tag, payload)]) if tag == "Nat" => Ok(Value::Nat(u64::from_json(payload)?)),
            Some([(tag, payload)]) if tag == "Str" => Ok(Value::Str(String::from_json(payload)?)),
            _ => Err(JsonError::new("expected {\"Nat\": …} or {\"Str\": …}")),
        }
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

/// Why an insertion or constant assignment was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The relation is not declared in the scheme.
    UnknownRelation { relation: String },
    /// The tuple's length disagrees with the declared arity.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// The constant is not declared in the scheme.
    UnknownConstant { name: String },
    /// The bytes handed to the snapshot reader do not begin with the
    /// snapshot magic — not a columnar snapshot at all.
    SnapshotMagic,
    /// The snapshot declares a format version this build cannot read.
    SnapshotVersion { found: u8 },
    /// The snapshot is structurally damaged: truncated, checksum
    /// mismatch, or internally inconsistent section contents.
    SnapshotCorrupt { detail: String },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::UnknownRelation { relation } => {
                write!(f, "relation `{relation}` not in the scheme")
            }
            StateError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "tuple arity mismatch for `{relation}`: the scheme declares \
                 arity {expected}, the tuple has {got} component(s)"
            ),
            StateError::UnknownConstant { name } => {
                write!(f, "constant `{name}` not in the scheme")
            }
            StateError::SnapshotMagic => {
                write!(f, "not a columnar snapshot (bad magic bytes)")
            }
            StateError::SnapshotVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version 1)"
            ),
            StateError::SnapshotCorrupt { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// A database state: finite relations plus values for scheme constants.
///
/// The dictionary and each relation's columns live behind `Arc`s, so
/// `clone()` is a handful of pointer bumps and mutation is copy-on-write
/// (`Arc::make_mut` deep-copies only the dictionary and the relations a
/// write actually touches). That makes [`Snapshot`](crate::Snapshot)
/// publication cheap: a writer clones the current state, applies a
/// batch, and swaps — in-flight readers keep every untouched column.
#[derive(Clone, Debug, Default)]
pub struct State {
    schema: Schema,
    dict: Arc<Dict>,
    relations: BTreeMap<String, Arc<VRel>>,
    constants: BTreeMap<String, Value>,
    /// Cached [`State::active_domain`]; cleared by every mutation.
    ad_cache: OnceLock<BTreeSet<Value>>,
    /// Cached [`State::fingerprint`]; cleared by every mutation.
    fp_cache: OnceLock<u128>,
}

impl State {
    /// The empty state of a scheme.
    pub fn new(schema: Schema) -> Self {
        let mut relations = BTreeMap::new();
        for (name, arity) in schema.relations() {
            relations.insert(name.to_string(), Arc::new(VRel::new(arity)));
        }
        State {
            schema,
            dict: Arc::default(),
            relations,
            constants: BTreeMap::new(),
            ad_cache: OnceLock::new(),
            fp_cache: OnceLock::new(),
        }
    }

    /// The scheme of the state.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The state's interning dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Insert a tuple, reporting scheme violations as a [`StateError`]
    /// instead of panicking (the `FromJson` load path routes through
    /// this, turning malformed state files into diagnostics).
    pub fn try_insert(
        &mut self,
        relation: &str,
        tuple: impl Into<Tuple>,
    ) -> Result<(), StateError> {
        self.try_insert_ref(relation, &tuple.into())
    }

    /// [`State::try_insert`] for borrowed tuples. Insertion only reads
    /// the tuple (interning copies what it must), so callers iterating
    /// a corpus they keep do not need to clone each row to insert it.
    pub fn try_insert_ref(&mut self, relation: &str, tuple: &[Value]) -> Result<(), StateError> {
        let arity = self
            .schema
            .arity(relation)
            .ok_or_else(|| StateError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        if tuple.len() != arity {
            return Err(StateError::ArityMismatch {
                relation: relation.to_string(),
                expected: arity,
                got: tuple.len(),
            });
        }
        let dict = Arc::make_mut(&mut self.dict);
        let row: Vec<Val> = tuple.iter().map(|v| dict.encode(v)).collect();
        Arc::make_mut(
            self.relations
                .get_mut(relation)
                .expect("initialized in new()"),
        )
        .insert(&row, &self.dict);
        self.ad_cache.take();
        self.fp_cache.take();
        Ok(())
    }

    /// Insert a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the relation is not in the scheme or the tuple has the
    /// wrong arity. Programmatic construction keeps this; fallible
    /// callers (file loading) use [`State::try_insert`].
    pub fn insert(&mut self, relation: &str, tuple: impl Into<Tuple>) {
        if let Err(e) = self.try_insert(relation, tuple) {
            Self::panic_on(e)
        }
    }

    /// Insert a borrowed tuple; panics on scheme violations, like
    /// [`State::insert`].
    pub fn insert_ref(&mut self, relation: &str, tuple: &[Value]) {
        if let Err(e) = self.try_insert_ref(relation, tuple) {
            Self::panic_on(e)
        }
    }

    fn panic_on(e: StateError) -> ! {
        match e {
            StateError::UnknownRelation { relation } => {
                panic!("relation `{relation}` not in the scheme")
            }
            StateError::ArityMismatch { relation, .. } => {
                panic!("tuple arity mismatch for `{relation}`")
            }
            StateError::UnknownConstant { name } => {
                panic!("constant `{name}` not in the scheme")
            }
            // Snapshot errors never reach the panicking insertion
            // paths; keep a diagnostic fallback for completeness.
            other => panic!("{other}"),
        }
    }

    /// Fluent insertion.
    pub fn with_tuple(mut self, relation: &str, tuple: impl Into<Tuple>) -> Self {
        self.insert(relation, tuple);
        self
    }

    /// Set the value of a scheme constant, reporting an undeclared name
    /// as a [`StateError`].
    pub fn try_set_constant(
        &mut self,
        name: &str,
        value: impl Into<Value>,
    ) -> Result<(), StateError> {
        if !self.schema.constants().iter().any(|c| c == name) {
            return Err(StateError::UnknownConstant {
                name: name.to_string(),
            });
        }
        self.constants.insert(name.to_string(), value.into());
        self.ad_cache.take();
        self.fp_cache.take();
        Ok(())
    }

    /// Set the value of a scheme constant.
    ///
    /// # Panics
    ///
    /// Panics if the constant is not declared in the scheme.
    pub fn set_constant(&mut self, name: &str, value: impl Into<Value>) {
        if let Err(e) = self.try_set_constant(name, value) {
            panic!("{e}");
        }
    }

    /// Fluent constant assignment.
    pub fn with_constant(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.set_constant(name, value);
        self
    }

    /// The value of a scheme constant.
    pub fn constant(&self, name: &str) -> Option<&Value> {
        self.constants.get(name)
    }

    /// The stored constants (boundary use: serialization).
    pub fn constants(&self) -> &BTreeMap<String, Value> {
        &self.constants
    }

    /// The columnar store of a relation (`None` for undeclared names).
    pub fn vrel(&self, relation: &str) -> Option<&VRel> {
        self.relations.get(relation).map(|r| r.as_ref())
    }

    /// Per-column statistics of a relation, computed lazily.
    pub fn column_stats(&self, relation: &str) -> Option<&[ColStats]> {
        self.relations.get(relation).map(|r| r.stats(&self.dict))
    }

    /// The tuples of a relation, decoded, in semantic sorted order
    /// (empty for undeclared names).
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = Tuple> + '_ {
        self.relations
            .get(relation)
            .into_iter()
            .flat_map(|r| r.decoded(&self.dict))
    }

    /// Whether a tuple is present. Takes a slice so hot loops (the
    /// active-domain evaluator's predicate checks) need no `Vec`
    /// allocation per membership test.
    pub fn contains(&self, relation: &str, tuple: &[Value]) -> bool {
        let Some(rel) = self.relations.get(relation) else {
            return false;
        };
        if tuple.len() != rel.arity() {
            return false;
        }
        let mut row = Vec::with_capacity(tuple.len());
        for v in tuple {
            // A value the dictionary has never seen is in no stored tuple.
            match self.dict.lookup(v) {
                Some(val) => row.push(val),
                None => return false,
            }
        }
        rel.contains(&row, &self.dict)
    }

    /// Word-level membership: `vals` must come from this state's
    /// dictionary (overlay ids, which denote values no stored tuple
    /// contains, make the answer `false` immediately).
    pub fn contains_vals(&self, relation: &str, vals: &[Val]) -> bool {
        if vals
            .iter()
            .any(|v| v.id().is_some_and(|id| id >= self.dict.len()))
        {
            return false;
        }
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(vals, &self.dict))
    }

    /// Total number of stored tuples.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.rows()).sum()
    }

    /// Number of tuples stored in one relation (0 for undeclared names).
    /// The optimizer's cardinality estimates start from these counts.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, |r| r.rows())
    }

    /// The **active domain of the state**: every value stored in a
    /// relation or assigned to a scheme constant. Cached on the state;
    /// insertions and constant assignments invalidate the cache.
    pub fn active_domain(&self) -> &BTreeSet<Value> {
        self.ad_cache.get_or_init(|| {
            let mut words: std::collections::HashSet<Val> = std::collections::HashSet::new();
            for rel in self.relations.values() {
                words.extend(rel.data().iter().copied());
            }
            let mut out: BTreeSet<Value> = words.into_iter().map(|v| self.dict.decode(v)).collect();
            out.extend(self.constants.values().cloned());
            out
        })
    }

    /// Load a whole state through the batch ingestion path: every
    /// relation's tuples are interned and merged as one batch. The
    /// first scheme violation aborts the load, with the same
    /// [`StateError`] diagnostics as [`State::try_insert`] /
    /// [`State::try_set_constant`].
    pub fn load_bulk<R, T, C>(
        schema: Schema,
        relations: R,
        constants: C,
    ) -> Result<State, StateError>
    where
        R: IntoIterator<Item = (String, T)>,
        T: IntoIterator<Item = Tuple>,
        C: IntoIterator<Item = (String, Value)>,
    {
        let mut builder = StateBuilder::new(schema);
        for (name, tuples) in relations {
            builder.try_rows(&name, tuples)?;
        }
        for (name, v) in constants {
            builder.try_constant(&name, v)?;
        }
        Ok(builder.finish())
    }

    /// Append a batch of tuples to one relation through the batch path:
    /// one interning pass, one sort-dedupe-merge. Returns the number of
    /// tuples that were new. Equivalent to (but much faster than)
    /// calling [`State::try_insert`] per tuple.
    pub fn extend_bulk<I>(&mut self, relation: &str, tuples: I) -> Result<usize, StateError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let arity = self
            .schema
            .arity(relation)
            .ok_or_else(|| StateError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        let mut staged: Vec<Tuple> = Vec::new();
        for tuple in tuples {
            if tuple.len() != arity {
                return Err(StateError::ArityMismatch {
                    relation: relation.to_string(),
                    expected: arity,
                    got: tuple.len(),
                });
            }
            staged.push(tuple);
        }
        if staged.is_empty() {
            return Ok(0);
        }
        let added = if arity == 0 {
            // A zero-arity relation holds at most the empty tuple; the
            // flat batch encoding cannot carry a row count, so take the
            // (bounded, constant-work) single-row path.
            let rel = Arc::make_mut(self.relations.get_mut(relation).expect("initialized"));
            usize::from(rel.insert(&[], &self.dict))
        } else {
            let mut batch = Vec::with_capacity(staged.len() * arity);
            Arc::make_mut(&mut self.dict)
                .encode_rows(staged.iter().map(|t| t.as_slice()), &mut batch);
            Arc::make_mut(
                self.relations
                    .get_mut(relation)
                    .expect("initialized in new()"),
            )
            .extend_from_sorted(batch, &self.dict)
        };
        if added > 0 {
            self.ad_cache.take();
            self.fp_cache.take();
        }
        Ok(added)
    }

    /// A 128-bit content fingerprint: a hash of the schema, the decoded
    /// relation rows, and the constants. Two states with equal content
    /// fingerprint equal regardless of interning history (row words are
    /// mixed through per-entry *semantic* hashes, not dictionary ids),
    /// and any mutation invalidates the cached value — so the
    /// fingerprint is a sound O(1)-amortized cache key standing in for
    /// the full serialized state.
    pub fn fingerprint(&self) -> u128 {
        *self.fp_cache.get_or_init(|| {
            let table = self.dict.entry_hashes();
            let word = |v: Val| match v.as_inline_nat() {
                Some(n) => val::hash_nat(n),
                None => table[v.id().expect("tagged")],
            };
            // Two accumulators with independent mixing, concatenated to
            // 128 bits so distinct states collide only negligibly.
            let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
            let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut mix = |x: u64| {
                h1 = (h1.rotate_left(5) ^ x).wrapping_mul(0x0000_0100_0000_01b3);
                h2 = (h2.wrapping_add(x).rotate_left(23)) ^ x.wrapping_mul(0x517c_c1b7_2722_0a95);
            };
            mix(val::hash_str(&fq_json::to_string(&self.schema)));
            for (name, rel) in &self.relations {
                mix(val::hash_str(name));
                mix(rel.rows() as u64);
                for &v in rel.data() {
                    mix(word(v));
                }
            }
            for (name, v) in &self.constants {
                mix(val::hash_str(name));
                match v {
                    Value::Nat(n) => mix(val::hash_nat(*n)),
                    Value::Str(s) => mix(val::hash_str(s)),
                }
            }
            ((h1 as u128) << 64) | h2 as u128
        })
    }

    /// Serialize this state into the binary columnar snapshot format
    /// (see [`crate::format`]) — the fast cold-load counterpart of the
    /// JSON interchange form. Writing forces column statistics, so a
    /// reloaded snapshot starts with stats pre-populated.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        crate::format::write(self)
    }

    /// Write the snapshot serialization to `w`, returning the number
    /// of bytes written.
    pub fn write_snapshot<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<usize> {
        let bytes = self.snapshot_bytes();
        w.write_all(&bytes)?;
        Ok(bytes.len())
    }

    /// Load a state from snapshot bytes. Corruption in any form —
    /// wrong magic, future version, truncation, bit flips, dangling
    /// dictionary ids — is a diagnosed [`StateError`], never a panic.
    pub fn read_snapshot(bytes: &[u8]) -> Result<State, StateError> {
        crate::format::read(bytes)
    }

    /// Assemble a state from parts the snapshot reader validated:
    /// `relations` holds exactly the declared relations, encoded
    /// against `dict`, and `constants` only declared names.
    pub(crate) fn from_parts(
        schema: Schema,
        dict: Dict,
        relations: BTreeMap<String, Arc<VRel>>,
        constants: BTreeMap<String, Value>,
    ) -> State {
        debug_assert!(schema
            .relations()
            .all(|(name, arity)| relations.get(name).is_some_and(|r| r.arity() == arity)));
        debug_assert_eq!(schema.relations().count(), relations.len());
        State {
            schema,
            dict: Arc::new(dict),
            relations,
            constants,
            ad_cache: OnceLock::new(),
            fp_cache: OnceLock::new(),
        }
    }

    /// The active domain of a *query in this state*: the state's active
    /// domain plus all constants used in the formula ("the set of all
    /// constants used in the querying formula and/or elements contained
    /// in the database relations").
    pub fn query_active_domain(&self, query: &Formula) -> BTreeSet<Value> {
        let mut out = self.active_domain().clone();
        let (nats, strs) = query.literal_constants();
        out.extend(nats.into_iter().map(Value::Nat));
        out.extend(strs.into_iter().map(Value::Str));
        out
    }
}

/// Staged construction of a [`State`] through the batch ingestion path.
///
/// Rows are validated against the scheme and interned as they arrive
/// (so [`StateError`] diagnostics fire at the offending row, exactly as
/// [`State::try_insert`] would), but are staged in flat per-relation
/// buffers; [`StateBuilder::finish`] hands each relation a single
/// sort-dedupe-merge batch. Loading `n` rows costs O(n log n) total,
/// against the O(n²) worst case of an insert loop.
///
/// ```
/// use fq_relational::{Schema, State, StateBuilder, Value};
///
/// let schema = Schema::new().with_relation("Log", 1).with_constant("run");
/// let mut b = StateBuilder::new(schema);
/// for entry in ["boot", "probe", "halt"] {
///     b.row("Log", vec![Value::Str(entry.into())]);
/// }
/// b.constant("run", 7u64);
/// let state: State = b.finish();
/// assert_eq!(state.size(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct StateBuilder {
    state: State,
    staged: BTreeMap<String, Staging>,
}

/// One relation's staging buffer: flat encoded rows plus an explicit
/// row count (the flat length cannot express rows of zero-arity
/// relations) and the scheme arity, denormalized here so staging a row
/// validates and buffers with a single map lookup.
#[derive(Clone, Debug)]
struct Staging {
    arity: usize,
    flat: Vec<Val>,
    rows: usize,
}

impl StateBuilder {
    /// An empty builder over a scheme.
    pub fn new(schema: Schema) -> Self {
        // Pre-open one staging buffer per scheme relation so the hot
        // `try_row` path is a borrowed-key lookup, never an allocation.
        let staged = schema
            .relations()
            .map(|(name, arity)| {
                (
                    name.to_string(),
                    Staging {
                        arity,
                        flat: Vec::new(),
                        rows: 0,
                    },
                )
            })
            .collect();
        StateBuilder {
            state: State::new(schema),
            staged,
        }
    }

    /// The scheme being built against.
    pub fn schema(&self) -> &Schema {
        self.state.schema()
    }

    /// Number of staged rows, duplicates included.
    pub fn staged_rows(&self) -> usize {
        self.staged.values().map(|s| s.rows).sum()
    }

    /// Stage one tuple, validating it against the scheme.
    pub fn try_row(&mut self, relation: &str, tuple: impl Into<Tuple>) -> Result<(), StateError> {
        self.try_row_ref(relation, &tuple.into())
    }

    /// [`StateBuilder::try_row`] for borrowed tuples. Staging only
    /// reads the tuple to intern it, so bulk producers that keep their
    /// corpus (benchmark replays, re-ingestion) can stage every row
    /// without cloning any.
    pub fn try_row_ref(&mut self, relation: &str, tuple: &[Value]) -> Result<(), StateError> {
        // Staging buffers are pre-opened per scheme relation, so one
        // lookup both validates the name and finds the buffer.
        let Some(staging) = self.staged.get_mut(relation) else {
            return Err(StateError::UnknownRelation {
                relation: relation.to_string(),
            });
        };
        if tuple.len() != staging.arity {
            return Err(StateError::ArityMismatch {
                relation: relation.to_string(),
                expected: staging.arity,
                got: tuple.len(),
            });
        }
        let dict = Arc::make_mut(&mut self.state.dict);
        for v in tuple {
            staging.flat.push(dict.encode(v));
        }
        staging.rows += 1;
        Ok(())
    }

    /// Stage one tuple.
    ///
    /// # Panics
    ///
    /// Panics on scheme violations, like [`State::insert`].
    pub fn row(&mut self, relation: &str, tuple: impl Into<Tuple>) {
        if let Err(e) = self.try_row(relation, tuple) {
            panic!("{e}");
        }
    }

    /// Stage one borrowed tuple; panics on scheme violations, like
    /// [`StateBuilder::row`].
    pub fn row_ref(&mut self, relation: &str, tuple: &[Value]) {
        if let Err(e) = self.try_row_ref(relation, tuple) {
            panic!("{e}");
        }
    }

    /// Stage a batch of tuples for one relation, stopping at the first
    /// scheme violation.
    pub fn try_rows<I>(&mut self, relation: &str, tuples: I) -> Result<(), StateError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        for tuple in tuples {
            self.try_row(relation, tuple)?;
        }
        Ok(())
    }

    /// Set a scheme constant (last assignment wins, as with
    /// [`State::set_constant`]).
    pub fn try_constant(&mut self, name: &str, value: impl Into<Value>) -> Result<(), StateError> {
        self.state.try_set_constant(name, value)
    }

    /// Set a scheme constant.
    ///
    /// # Panics
    ///
    /// Panics if the constant is not declared in the scheme.
    pub fn constant(&mut self, name: &str, value: impl Into<Value>) {
        self.state.set_constant(name, value);
    }

    /// Merge every staged batch and return the finished state — equal
    /// (rows, stats, serialized form) to the state an insert loop over
    /// the same tuples would have produced.
    pub fn finish(self) -> State {
        self.finish_inner(None)
    }

    /// [`StateBuilder::finish`] with the per-relation merges fanned out
    /// on `engine`'s worker pool. Relations merge independently against
    /// the final (read-only) dictionary and one shared rank table, so
    /// the result is equal to the sequential path at any thread count.
    pub fn finish_with(self, engine: &fq_engine::Engine) -> State {
        self.finish_inner(Some(engine))
    }

    /// Finish and serialize in one call: the finished state plus its
    /// snapshot bytes. The snapshot writer forces column stats, so
    /// emitting a snapshot at build time costs the stats pass a loader
    /// would otherwise pay on first query.
    pub fn finish_snapshot(self) -> (State, Vec<u8>) {
        let state = self.finish_inner(None);
        let bytes = state.snapshot_bytes();
        (state, bytes)
    }

    /// [`StateBuilder::finish_snapshot`] with the merges (and any
    /// oversized relation's batch sort) fanned out on `engine`.
    pub fn finish_snapshot_with(self, engine: &fq_engine::Engine) -> (State, Vec<u8>) {
        let state = self.finish_inner(Some(engine));
        let bytes = state.snapshot_bytes();
        (state, bytes)
    }

    fn finish_inner(mut self, engine: Option<&fq_engine::Engine>) -> State {
        // All staged rows are already interned, so the dictionary is
        // final: if any staged batch is large enough for rank-key
        // sorting to pay, rank the dictionary once and merge every
        // relation through the shared table.
        let keys = self
            .staged
            .values()
            .any(|s| {
                s.arity > 0
                    && crate::val::batch_prefers_keys(s.rows, s.arity, self.state.dict.len())
            })
            .then(|| self.state.dict.sort_keys());
        let dict: &Dict = &self.state.dict;
        // Each worker consumes one relation's staged buffer and builds
        // that relation's merged store from scratch (the state's stores
        // are still empty at finish time — every row was staged).
        let merge = |(name, s): (String, Staging)| -> (String, VRel) {
            let mut rel = VRel::new(s.arity);
            if s.arity == 0 {
                if s.rows > 0 {
                    rel.insert(&[], dict);
                }
            } else {
                match (&keys, engine) {
                    // One oversized relation is the case per-relation
                    // fan-out can't split; sort its batch in parallel
                    // chunks on the same pool (the engine's nested
                    // thread budget arbitrates with the outer map).
                    (Some(keys), Some(engine)) if s.rows >= val::PARALLEL_SORT_MIN_ROWS => {
                        rel.extend_from_sorted_parallel(
                            s.flat,
                            keys,
                            engine,
                            val::PARALLEL_SORT_CHUNK_ROWS,
                        );
                    }
                    (Some(keys), _) => {
                        rel.extend_from_sorted_with(s.flat, keys);
                    }
                    (None, _) => {
                        rel.extend_from_sorted(s.flat, dict);
                    }
                }
            }
            (name, rel)
        };
        let staged: Vec<(String, Staging)> = std::mem::take(&mut self.staged).into_iter().collect();
        let merged: Vec<(String, VRel)> = match engine {
            Some(engine) => engine.parallel_map_owned(staged, merge),
            None => staged.into_iter().map(merge).collect(),
        };
        for (name, rel) in merged {
            let slot = self.state.relations.get_mut(&name).expect("validated");
            debug_assert_eq!(slot.rows(), 0, "rows bypass staging only through constants");
            *slot = Arc::new(rel);
        }
        self.state.ad_cache.take();
        self.state.fp_cache.take();
        self.state
    }
}

// Word representations differ between dictionaries, so equality decodes:
// two states are equal iff they store the same schema, tuples, and
// constants, exactly as the old `BTreeSet<Tuple>` representation's
// derived equality behaved.
impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.constants == other.constants
            && self.relations.len() == other.relations.len()
            && self
                .relations
                .iter()
                .zip(other.relations.iter())
                .all(|((ka, ra), (kb, rb))| {
                    ka == kb
                        && ra.rows() == rb.rows()
                        && ra.decoded(&self.dict).eq(rb.decoded(&other.dict))
                })
    }
}

impl Eq for State {}

impl ToJson for State {
    fn to_json(&self) -> fq_json::Value {
        // Reproduce the legacy `BTreeMap<String, BTreeSet<Tuple>>` shape
        // byte-for-byte: object keys in name order, each an array of
        // tuple arrays in semantic sorted order (the `VRel` row order).
        let relations = fq_json::Value::Object(
            self.relations
                .iter()
                .map(|(name, rel)| {
                    (
                        name.clone(),
                        fq_json::Value::Array(
                            rel.decoded(&self.dict).map(|t| t.to_json()).collect(),
                        ),
                    )
                })
                .collect(),
        );
        fq_json::object([
            ("schema", self.schema.to_json()),
            ("relations", relations),
            ("constants", self.constants.to_json()),
        ])
    }
}

impl FromJson for State {
    fn from_json(value: &fq_json::Value) -> Result<Self, JsonError> {
        let schema: Schema = FromJson::from_json(fq_json::member(value, "schema")?)?;
        // Load through the batch ingestion path: stage every relation's
        // tuples, then merge each relation once. Scheme violations keep
        // their `try_insert`-style diagnostics.
        let mut builder = StateBuilder::new(schema);
        let relations: BTreeMap<String, Vec<Tuple>> =
            FromJson::from_json(fq_json::member(value, "relations")?)?;
        for (name, tuples) in relations {
            builder
                .try_rows(&name, tuples)
                .map_err(|e| JsonError::new(format!("state relations: {e}")))?;
        }
        let constants: BTreeMap<String, Value> =
            FromJson::from_json(fq_json::member(value, "constants")?)?;
        for (name, v) in constants {
            builder
                .try_constant(&name, v)
                .map_err(|e| JsonError::new(format!("state constants: {e}")))?;
        }
        Ok(builder.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    // Parallel executions and finishes share `&State` across scoped
    // threads (stats are behind `OnceLock`s) — keep it `Sync`.
    const _: fn() = || {
        fn assert_sync<T: Sync>() {}
        assert_sync::<State>();
    };

    #[test]
    fn finish_with_equals_sequential_finish() {
        use fq_engine::{Engine, EngineConfig};
        let schema = Schema::new()
            .with_relation("F", 2)
            .with_relation("S", 1)
            .with_relation("Z", 0)
            .with_constant("c");
        let build = || {
            let mut b = StateBuilder::new(schema.clone());
            for i in 0..300u64 {
                b.row(
                    "F",
                    vec![Value::Nat(i % 50), Value::Str(format!("w{}", i % 31))],
                );
                if i % 3 == 0 {
                    b.row("S", vec![Value::Nat(i)]);
                }
            }
            b.row("Z", Vec::new());
            b.constant("c", 7u64);
            b
        };
        let sequential = build().finish();
        for threads in [1, 2, 4, 8] {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let parallel = build().finish_with(&engine);
            assert_eq!(parallel, sequential, "finish_with at {threads} threads");
            assert_eq!(
                fq_json::to_string(&parallel),
                fq_json::to_string(&sequential)
            );
            assert_eq!(parallel.column_stats("F"), sequential.column_stats("F"));
        }
    }

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
    }

    #[test]
    fn insert_and_contains() {
        let s = fathers();
        assert!(s.contains("F", &[Value::Nat(1), Value::Nat(2)]));
        assert!(!s.contains("F", &[Value::Nat(2), Value::Nat(1)]));
        assert_eq!(s.size(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = fathers();
        s.insert("F", vec![Value::Nat(1), Value::Nat(2)]);
        assert_eq!(s.size(), 2);
    }

    #[test]
    #[should_panic(expected = "not in the scheme")]
    fn unknown_relation_panics() {
        let mut s = fathers();
        s.insert("G", vec![Value::Nat(1)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut s = fathers();
        s.insert("F", vec![Value::Nat(1)]);
    }

    #[test]
    fn try_insert_reports_scheme_violations() {
        let mut s = fathers();
        assert_eq!(
            s.try_insert("G", vec![Value::Nat(1)]),
            Err(StateError::UnknownRelation {
                relation: "G".into()
            })
        );
        assert_eq!(
            s.try_insert("F", vec![Value::Nat(1)]),
            Err(StateError::ArityMismatch {
                relation: "F".into(),
                expected: 2,
                got: 1
            })
        );
        assert_eq!(s.size(), 2, "failed insertions store nothing");
        assert!(s
            .try_insert("F", vec![Value::Nat(9), Value::Nat(9)])
            .is_ok());
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn active_domain_collects_everything() {
        let schema = Schema::new().with_relation("F", 2).with_constant("c");
        let s = State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_constant("c", 9u64);
        let ad = s.active_domain();
        assert_eq!(
            ad.iter().cloned().collect::<Vec<_>>(),
            vec![Value::Nat(1), Value::Nat(2), Value::Nat(9)]
        );
    }

    #[test]
    fn active_domain_cache_invalidates_on_mutation() {
        let schema = Schema::new().with_relation("F", 2).with_constant("c");
        let mut s = State::new(schema).with_tuple("F", vec![Value::Nat(1), Value::Nat(2)]);
        assert_eq!(s.active_domain().len(), 2);
        s.insert("F", vec![Value::Nat(1), Value::Nat(5)]);
        assert!(s.active_domain().contains(&Value::Nat(5)));
        s.set_constant("c", 9u64);
        assert!(s.active_domain().contains(&Value::Nat(9)));
        assert_eq!(s.active_domain().len(), 4);
    }

    #[test]
    fn query_active_domain_adds_formula_constants() {
        let s = fathers();
        let q = parse_formula("F(x, 7) | x = \"1&\"").unwrap();
        let ad = s.query_active_domain(&q);
        assert!(ad.contains(&Value::Nat(7)));
        assert!(ad.contains(&Value::Str("1&".into())));
        assert!(ad.contains(&Value::Nat(1)));
    }

    #[test]
    fn constants_in_state() {
        let schema = Schema::new().with_constant("c");
        let s = State::new(schema).with_constant("c", "11");
        assert_eq!(s.constant("c"), Some(&Value::Str("11".into())));
        assert_eq!(s.constant("d"), None);
    }

    #[test]
    fn string_values() {
        let schema = Schema::new().with_relation("R", 1);
        let s = State::new(schema).with_tuple("R", vec![Value::Str("1&1".into())]);
        assert!(s.contains("R", &[Value::Str("1&1".into())]));
    }

    #[test]
    fn json_round_trip() {
        let s = fathers();
        let json = fq_json::to_string(&s);
        let back: State = fq_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn json_rejects_scheme_violations_with_diagnostics() {
        let bad_arity = r#"{"schema": {"relations": {"F": 2}, "constants": []},
            "relations": {"F": [[{"Nat": 1}]]}, "constants": {}}"#;
        let e = fq_json::from_str::<State>(bad_arity).unwrap_err();
        assert!(e.to_string().contains("arity mismatch"), "{e}");
        let bad_name = r#"{"schema": {"relations": {"F": 2}, "constants": []},
            "relations": {"G": [[{"Nat": 1}, {"Nat": 2}]]}, "constants": {}}"#;
        let e = fq_json::from_str::<State>(bad_name).unwrap_err();
        assert!(e.to_string().contains("not in the scheme"), "{e}");
        let bad_const = r#"{"schema": {"relations": {"F": 2}, "constants": []},
            "relations": {"F": []}, "constants": {"c": {"Nat": 1}}}"#;
        let e = fq_json::from_str::<State>(bad_const).unwrap_err();
        assert!(e.to_string().contains("not in the scheme"), "{e}");
    }

    #[test]
    fn builder_matches_insert_loop() {
        let schema = Schema::new()
            .with_relation("F", 2)
            .with_relation("Tag", 1)
            .with_constant("c");
        let tuples: Vec<(&str, Tuple)> = vec![
            ("F", vec![Value::Nat(3), Value::Str("b".into())]),
            ("Tag", vec![Value::Str("b".into())]),
            ("F", vec![Value::Nat(1), Value::Str("a".into())]),
            ("F", vec![Value::Nat(3), Value::Str("b".into())]), // dup
        ];
        let mut by_insert = State::new(schema.clone());
        for (rel, t) in &tuples {
            by_insert.insert(rel, t.clone());
        }
        by_insert.set_constant("c", "run");
        let mut b = StateBuilder::new(schema);
        for (rel, t) in &tuples {
            b.row(rel, t.clone());
        }
        assert_eq!(b.staged_rows(), 4);
        b.constant("c", "run");
        let bulk = b.finish();
        assert_eq!(bulk, by_insert);
        assert_eq!(fq_json::to_string(&bulk), fq_json::to_string(&by_insert));
        assert_eq!(bulk.column_stats("F"), by_insert.column_stats("F"));
    }

    #[test]
    fn builder_reports_scheme_violations() {
        let mut b = StateBuilder::new(Schema::new().with_relation("F", 2));
        assert_eq!(
            b.try_row("G", vec![Value::Nat(1)]),
            Err(StateError::UnknownRelation {
                relation: "G".into()
            })
        );
        assert_eq!(
            b.try_row("F", vec![Value::Nat(1)]),
            Err(StateError::ArityMismatch {
                relation: "F".into(),
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            b.try_constant("c", 1u64),
            Err(StateError::UnknownConstant { name: "c".into() })
        );
        assert_eq!(b.finish().size(), 0);
    }

    #[test]
    fn load_bulk_and_extend_bulk_round_trip() {
        let schema = Schema::new().with_relation("F", 2).with_constant("c");
        let state = State::load_bulk(
            schema.clone(),
            [(
                "F".to_string(),
                vec![
                    vec![Value::Nat(2), Value::Nat(3)],
                    vec![Value::Nat(1), Value::Nat(2)],
                ],
            )],
            [("c".to_string(), Value::Nat(9))],
        )
        .unwrap();
        assert_eq!(state.size(), 2);
        assert_eq!(state.constant("c"), Some(&Value::Nat(9)));
        let mut state = state;
        let added = state
            .extend_bulk(
                "F",
                vec![
                    vec![Value::Nat(1), Value::Nat(2)], // dup
                    vec![Value::Nat(0), Value::Nat(1)],
                ],
            )
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(state.size(), 3);
        assert!(state.active_domain().contains(&Value::Nat(0)));
        assert_eq!(
            state.extend_bulk("G", Vec::<Tuple>::new()),
            Err(StateError::UnknownRelation {
                relation: "G".into()
            })
        );
        assert_eq!(
            state.extend_bulk("F", vec![vec![Value::Nat(1)]]),
            Err(StateError::ArityMismatch {
                relation: "F".into(),
                expected: 2,
                got: 1
            })
        );
        assert_eq!(state.size(), 3, "failed batches stage nothing");
    }

    #[test]
    fn zero_arity_relations_take_the_single_row_path() {
        let schema = Schema::new().with_relation("Flag", 0);
        let mut b = StateBuilder::new(schema.clone());
        b.row("Flag", Vec::<Value>::new());
        b.row("Flag", Vec::<Value>::new());
        let s = b.finish();
        assert_eq!(s.size(), 1);
        assert!(s.contains("Flag", &[]));
        let mut s2 = State::new(schema);
        assert_eq!(s2.extend_bulk("Flag", vec![vec![], vec![]]).unwrap(), 1);
        assert_eq!(s2, s);
    }

    #[test]
    fn value_term_round_trip() {
        for v in [Value::Nat(5), Value::Str("1*".into())] {
            assert_eq!(Value::from_term(&v.to_term()), Some(v));
        }
        assert_eq!(Value::from_term(&Term::var("x")), None);
    }

    #[test]
    fn word_membership_matches_value_membership() {
        let schema = Schema::new().with_relation("R", 2);
        let s = State::new(schema)
            .with_tuple("R", vec![Value::Nat(1), Value::Str("a".into())])
            .with_tuple("R", vec![Value::Str("b".into()), Value::Nat(u64::MAX)]);
        let row: Vec<_> = [Value::Nat(1), Value::Str("a".into())]
            .iter()
            .map(|v| s.dict().lookup(v).unwrap())
            .collect();
        assert!(s.contains_vals("R", &row));
        assert!(!s.contains_vals("R", &[row[1], row[0]]));
    }
}
