//! # fq-relational — the relational database layer
//!
//! The paper's setting (Section 1): a *database scheme* fixes relation
//! names and arities; a *database state* is a finite collection of finite
//! relations over an infinite domain; queries are first-order formulas
//! over the domain signature plus the scheme's relations.
//!
//! This crate provides:
//!
//! * [`schema`]/[`state`] — schemes, states, scheme constants, and the
//!   *active domain* (constants used in the query plus elements stored in
//!   the relations);
//! * [`translate`] — the Section 1.1 reduction of a query in a fixed
//!   state to a *pure domain* formula ("we can replace each occurrence of
//!   `R(x, y)` with `((x=a₁ ∧ y=b₁) ∨ … ∨ (x=a_r ∧ y=b_r))`");
//! * [`active_eval`] — active-domain evaluation of queries (the semantics
//!   under which domain-independent queries are answered);
//! * [`safe_range`] — the classic syntactic *safe-range* test, the
//!   standard effective syntax for domain-independent queries
//!   (Ullman; Van Gelder & Topor);
//! * [`algebra`] — a relational algebra with an evaluator, plus the
//!   compilation of safe-range queries into it (Codd's theorem);
//! * [`val`] — the columnar interned storage core underneath it all:
//!   one-word values, a per-state string dictionary, and flat sorted
//!   relations with two writer paths — single-row [`State::insert`] for
//!   interactive mutation, and the batch pipeline
//!   ([`StateBuilder`], [`State::load_bulk`], [`State::extend_bulk`])
//!   that stages rows and merges each relation in one
//!   sort-dedupe-merge pass for linear-time bulk loads.
//!
//! The Section 1.1 enumerate-and-ask query-answering algorithm lives in
//! `fq-core` (it needs the decision procedures of `fq-domains`).
//!
//! Building a large state? Stage it:
//!
//! ```
//! use fq_relational::{Schema, StateBuilder, Value};
//!
//! let mut b = StateBuilder::new(Schema::new().with_relation("Log", 1));
//! for i in 0..1000u64 {
//!     b.row("Log", vec![Value::Str(format!("trace-{i}"))]);
//! }
//! let state = b.finish(); // one interning + merge pass per relation
//! assert_eq!(state.size(), 1000);
//! ```
//!
//! ```
//! use fq_relational::{Schema, State, Value, is_safe_range};
//! use fq_relational::active_eval::{eval_query, NoOps};
//! use fq_logic::parse_formula;
//!
//! let schema = Schema::new().with_relation("F", 2);
//! let state = State::new(schema.clone())
//!     .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
//!     .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)]);
//!
//! let m = parse_formula("exists y z. y != z & F(x, y) & F(x, z)")?;
//! assert!(is_safe_range(&schema, &m));
//! let ans = eval_query(&state, &NoOps, &m, &["x".to_string()])?;
//! assert_eq!(ans, vec![vec![Value::Nat(1)]]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod active_eval;
pub mod algebra;
pub mod format;
pub mod fx;
pub mod optimize;
pub mod physical;
pub mod safe_range;
pub mod schema;
pub mod snapshot;
pub mod state;
pub mod translate;
pub mod val;

pub use active_eval::{eval_query, eval_query_with};
pub use algebra::{AlgebraExpr, Relation};
pub use format::{is_snapshot, FORMAT_ID, JSON_FORMAT_ID};
pub use optimize::{optimize, OptimizedExpr};
pub use physical::{ExecOpts, ExecReport, OpStat, PhysicalPlan, DEFAULT_MORSEL_ROWS};
pub use safe_range::is_safe_range;
pub use schema::Schema;
pub use snapshot::{SharedState, Snapshot};
pub use state::{State, StateBuilder, StateError, Value};
pub use translate::translate_to_domain_formula;
pub use val::{ColStats, Dict, OverlayDict, SharedOverlay, SortKeys, VRel, Val};
