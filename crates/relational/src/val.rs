//! Compact value words, the per-state dictionary, and columnar storage.
//!
//! A [`Val`] is one machine word. Naturals below 2⁶³ are stored inline;
//! everything else (large naturals, strings) is an id into a [`Dict`] of
//! interned entries. Interning is canonical — a value has exactly one
//! word per dictionary — so word equality *is* semantic equality, and
//! hash joins and frame bindings work on bare `u64`s.
//!
//! Word *order* is not semantic (dictionary ids are assigned in
//! insertion order, not sort order): use [`Dict::cmp_vals`] wherever the
//! legacy [`Value`] ordering (`Nat < Str`, naturals numerically, strings
//! byte-lexicographically) matters.
//!
//! [`VRel`] stores a relation as a flat arity-strided `Vec<Val>` kept in
//! semantic sorted order without duplicates, so decoding yields exactly
//! the tuple sequence the old `BTreeSet<Tuple>` representation produced,
//! and membership is a binary search over words. Per-column min/max and
//! distinct counts ([`ColStats`]) are computed lazily and feed the
//! optimizer's cardinality estimates.

use crate::state::{Tuple, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The tag bit: set for dictionary ids, clear for inline naturals.
const TAG: u64 = 1 << 63;

/// A database value packed into one word: an inline natural (`n < 2⁶³`)
/// or a dictionary id. Equality and hashing are word operations; the
/// derived `Ord` is **not** the semantic [`Value`] order — use
/// [`Dict::cmp_vals`] for that.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Val(u64);

impl Val {
    /// The inline word for a small natural, if it fits.
    pub fn inline_nat(n: u64) -> Option<Val> {
        (n & TAG == 0).then_some(Val(n))
    }

    /// The natural stored inline, if this word is untagged.
    pub fn as_inline_nat(self) -> Option<u64> {
        (self.0 & TAG == 0).then_some(self.0)
    }

    /// The dictionary id, if this word is tagged.
    pub fn id(self) -> Option<usize> {
        (self.0 & TAG != 0).then_some((self.0 & !TAG) as usize)
    }

    fn from_id(id: usize) -> Val {
        Val(TAG | id as u64)
    }

    /// The raw word.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for Val {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_inline_nat() {
            Some(n) => write!(f, "Val({n})"),
            None => write!(f, "Val(#{})", (self.0 & !TAG)),
        }
    }
}

/// An interned dictionary entry: a natural too large to inline, or a
/// string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum DictEntry {
    Big(u64),
    Str(Arc<str>),
}

/// A borrowed view of a decoded word, cheap enough for comparators.
enum View<'a> {
    Nat(u64),
    Str(&'a str),
}

impl View<'_> {
    fn cmp(&self, other: &View<'_>) -> Ordering {
        // Mirrors the derived `Ord` on `Value`: Nat < Str, naturals
        // numerically, strings byte-lexicographically.
        match (self, other) {
            (View::Nat(a), View::Nat(b)) => a.cmp(b),
            (View::Nat(_), View::Str(_)) => Ordering::Less,
            (View::Str(_), View::Nat(_)) => Ordering::Greater,
            (View::Str(a), View::Str(b)) => a.cmp(b),
        }
    }
}

/// The per-[`State`](crate::State) append-only interning dictionary.
/// Every stored string and large natural has exactly one id, so two
/// words from the same dictionary are equal iff they denote the same
/// value.
#[derive(Clone, Debug, Default)]
pub struct Dict {
    entries: Vec<DictEntry>,
    bigs: HashMap<u64, u32>,
    strs: HashMap<Arc<str>, u32>,
}

impl Dict {
    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of interned strings.
    pub fn strings(&self) -> usize {
        self.strs.len()
    }

    /// Intern a value, returning its canonical word.
    pub fn encode(&mut self, v: &Value) -> Val {
        match v {
            Value::Nat(n) => match Val::inline_nat(*n) {
                Some(val) => val,
                None => match self.bigs.get(n) {
                    Some(&id) => Val::from_id(id as usize),
                    None => {
                        let id = self.entries.len() as u32;
                        self.entries.push(DictEntry::Big(*n));
                        self.bigs.insert(*n, id);
                        Val::from_id(id as usize)
                    }
                },
            },
            Value::Str(s) => match self.strs.get(s.as_str()) {
                Some(&id) => Val::from_id(id as usize),
                None => {
                    let id = self.entries.len() as u32;
                    let arc: Arc<str> = Arc::from(s.as_str());
                    self.entries.push(DictEntry::Str(arc.clone()));
                    self.strs.insert(arc, id);
                    Val::from_id(id as usize)
                }
            },
        }
    }

    /// The word for a value **without** interning. `None` means the
    /// value is not in the dictionary (hence in no stored tuple).
    pub fn lookup(&self, v: &Value) -> Option<Val> {
        match v {
            Value::Nat(n) => match Val::inline_nat(*n) {
                Some(val) => Some(val),
                None => self.bigs.get(n).map(|&id| Val::from_id(id as usize)),
            },
            Value::Str(s) => self
                .strs
                .get(s.as_str())
                .map(|&id| Val::from_id(id as usize)),
        }
    }

    fn view(&self, v: Val) -> View<'_> {
        match v.as_inline_nat() {
            Some(n) => View::Nat(n),
            None => match &self.entries[v.id().expect("tagged")] {
                DictEntry::Big(n) => View::Nat(*n),
                DictEntry::Str(s) => View::Str(s),
            },
        }
    }

    /// Decode a word back into a [`Value`].
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this dictionary.
    pub fn decode(&self, v: Val) -> Value {
        match self.view(v) {
            View::Nat(n) => Value::Nat(n),
            View::Str(s) => Value::Str(s.to_string()),
        }
    }

    /// Render a word exactly as [`Value`]'s `Display` would.
    pub fn display(&self, v: Val) -> String {
        match self.view(v) {
            View::Nat(n) => n.to_string(),
            View::Str(s) => format!("\"{s}\""),
        }
    }

    /// The semantic order of two words, identical to comparing their
    /// decoded [`Value`]s.
    pub fn cmp_vals(&self, a: Val, b: Val) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.view(a).cmp(&self.view(b))
    }

    /// Lexicographic semantic order of two rows.
    pub fn cmp_rows(&self, a: &[Val], b: &[Val]) -> Ordering {
        for (&x, &y) in a.iter().zip(b.iter()) {
            match self.cmp_vals(x, y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    }
}

/// A read-only base dictionary plus an appendable overlay, for values a
/// query mentions that no stored tuple contains (literal constants,
/// singleton tuples, domain-function results). Overlay ids start at
/// `base.len()`, so base words stay valid and word equality still means
/// semantic equality across the combined id space.
#[derive(Debug)]
pub struct OverlayDict<'a> {
    base: &'a Dict,
    extra: Vec<DictEntry>,
    bigs: HashMap<u64, u32>,
    strs: HashMap<Arc<str>, u32>,
}

impl<'a> OverlayDict<'a> {
    pub fn new(base: &'a Dict) -> Self {
        OverlayDict {
            base,
            extra: Vec::new(),
            bigs: HashMap::new(),
            strs: HashMap::new(),
        }
    }

    /// The underlying state dictionary.
    pub fn base(&self) -> &'a Dict {
        self.base
    }

    /// Intern a value, preferring the base dictionary's word.
    pub fn encode(&mut self, v: &Value) -> Val {
        if let Some(val) = self.base.lookup(v) {
            return val;
        }
        match v {
            Value::Nat(n) => match self.bigs.get(n) {
                Some(&id) => Val::from_id(id as usize),
                None => {
                    let id = (self.base.len() + self.extra.len()) as u32;
                    self.extra.push(DictEntry::Big(*n));
                    self.bigs.insert(*n, id);
                    Val::from_id(id as usize)
                }
            },
            Value::Str(s) => match self.strs.get(s.as_str()) {
                Some(&id) => Val::from_id(id as usize),
                None => {
                    let id = (self.base.len() + self.extra.len()) as u32;
                    let arc: Arc<str> = Arc::from(s.as_str());
                    self.extra.push(DictEntry::Str(arc.clone()));
                    self.strs.insert(arc, id);
                    Val::from_id(id as usize)
                }
            },
        }
    }

    /// The word for a value if already interned in base or overlay.
    pub fn lookup(&self, v: &Value) -> Option<Val> {
        if let Some(val) = self.base.lookup(v) {
            return Some(val);
        }
        match v {
            Value::Nat(n) => self.bigs.get(n).map(|&id| Val::from_id(id as usize)),
            Value::Str(s) => self
                .strs
                .get(s.as_str())
                .map(|&id| Val::from_id(id as usize)),
        }
    }

    fn view(&self, v: Val) -> View<'_> {
        match v.as_inline_nat() {
            Some(n) => View::Nat(n),
            None => {
                let id = v.id().expect("tagged");
                let entry = if id < self.base.len() {
                    &self.base.entries[id]
                } else {
                    &self.extra[id - self.base.len()]
                };
                match entry {
                    DictEntry::Big(n) => View::Nat(*n),
                    DictEntry::Str(s) => View::Str(s),
                }
            }
        }
    }

    /// Decode a word from the combined id space.
    pub fn decode(&self, v: Val) -> Value {
        match self.view(v) {
            View::Nat(n) => Value::Nat(n),
            View::Str(s) => Value::Str(s.to_string()),
        }
    }
}

/// A thread-safe [`OverlayDict`]: encoding locks, decoding of inline
/// naturals and base-dictionary ids stays lock-free. Used by the
/// parallel slot evaluator, whose worker frames all bind words from one
/// shared id space.
#[derive(Debug)]
pub struct SharedOverlay<'a> {
    base: &'a Dict,
    inner: Mutex<OverlayDict<'a>>,
}

impl<'a> SharedOverlay<'a> {
    pub fn new(base: &'a Dict) -> Self {
        SharedOverlay {
            base,
            inner: Mutex::new(OverlayDict::new(base)),
        }
    }

    /// Intern a value (locks only when the base dictionary misses).
    pub fn encode(&self, v: &Value) -> Val {
        if let Value::Nat(n) = v {
            if let Some(val) = Val::inline_nat(*n) {
                return val;
            }
        }
        if let Some(val) = self.base.lookup(v) {
            return val;
        }
        self.inner.lock().expect("overlay lock").encode(v)
    }

    /// Decode a word from the combined id space.
    pub fn decode(&self, v: Val) -> Value {
        match v.as_inline_nat() {
            Some(n) => Value::Nat(n),
            None => {
                let id = v.id().expect("tagged");
                if id < self.base.len() {
                    self.base.decode(v)
                } else {
                    self.inner.lock().expect("overlay lock").decode(v)
                }
            }
        }
    }
}

/// Per-column statistics of a stored relation, in decoded form so the
/// optimizer can compare them against plan constants directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColStats {
    /// Number of distinct values in the column.
    pub distinct: usize,
    /// Smallest value (`None` for an empty relation).
    pub min: Option<Value>,
    /// Largest value (`None` for an empty relation).
    pub max: Option<Value>,
}

/// A columnar relation: `rows × arity` words in one flat vector, kept
/// sorted in semantic order without duplicates. Row `i` occupies
/// `data[i*arity .. (i+1)*arity]`.
#[derive(Clone, Debug)]
pub struct VRel {
    arity: usize,
    rows: usize,
    data: Vec<Val>,
    stats: OnceLock<Vec<ColStats>>,
}

impl VRel {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        VRel {
            arity,
            rows: 0,
            data: Vec::new(),
            stats: OnceLock::new(),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The flat word store.
    pub fn data(&self) -> &[Val] {
        &self.data
    }

    /// Row `i` as a word slice.
    pub fn row(&self, i: usize) -> &[Val] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate rows in semantic sorted order.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[Val]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// The insertion point of `row` in semantic order, and whether the
    /// row is already present.
    fn search(&self, row: &[Val], dict: &Dict) -> (usize, bool) {
        let mut lo = 0usize;
        let mut hi = self.rows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match dict.cmp_rows(self.row(mid), row) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return (mid, true),
            }
        }
        (lo, false)
    }

    /// Insert a row (already encoded against `dict`), keeping the store
    /// sorted and duplicate-free. Returns whether the row was new.
    pub fn insert(&mut self, row: &[Val], dict: &Dict) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let (pos, found) = self.search(row, dict);
        if found {
            return false;
        }
        let at = pos * self.arity;
        self.data.splice(at..at, row.iter().copied());
        self.rows += 1;
        self.stats.take();
        true
    }

    /// Membership by binary search over words.
    pub fn contains(&self, row: &[Val], dict: &Dict) -> bool {
        row.len() == self.arity && self.search(row, dict).1
    }

    /// Decode every row, in semantic sorted order — exactly the sequence
    /// the legacy `BTreeSet<Tuple>` iteration produced.
    pub fn decoded<'a>(&'a self, dict: &'a Dict) -> impl Iterator<Item = Tuple> + 'a {
        self.rows_iter()
            .map(move |row| row.iter().map(|&v| dict.decode(v)).collect())
    }

    /// Per-column statistics, computed once and cached until the next
    /// insertion.
    pub fn stats(&self, dict: &Dict) -> &[ColStats] {
        self.stats.get_or_init(|| {
            let mut out = Vec::with_capacity(self.arity);
            for c in 0..self.arity {
                let mut distinct: std::collections::HashSet<Val> = std::collections::HashSet::new();
                let mut min: Option<Val> = None;
                let mut max: Option<Val> = None;
                for r in 0..self.rows {
                    let v = self.data[r * self.arity + c];
                    distinct.insert(v);
                    min = Some(match min {
                        Some(m) if dict.cmp_vals(m, v) != Ordering::Greater => m,
                        _ => v,
                    });
                    max = Some(match max {
                        Some(m) if dict.cmp_vals(m, v) != Ordering::Less => m,
                        _ => v,
                    });
                }
                out.push(ColStats {
                    distinct: distinct.len(),
                    min: min.map(|v| dict.decode(v)),
                    max: max.map(|v| dict.decode(v)),
                });
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_interned_words() {
        let mut d = Dict::default();
        let small = d.encode(&Value::Nat(42));
        assert_eq!(small.as_inline_nat(), Some(42));
        assert_eq!(d.len(), 0, "small naturals never intern");
        let big = d.encode(&Value::Nat(u64::MAX));
        assert_eq!(big.as_inline_nat(), None);
        let s = d.encode(&Value::Str("1&".into()));
        assert_eq!(d.len(), 2);
        assert_eq!(d.strings(), 1);
        assert_eq!(d.decode(big), Value::Nat(u64::MAX));
        assert_eq!(d.decode(s), Value::Str("1&".into()));
    }

    #[test]
    fn interning_is_canonical() {
        let mut d = Dict::default();
        let a = d.encode(&Value::Str("x".into()));
        let b = d.encode(&Value::Str("x".into()));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup(&Value::Str("x".into())), Some(a));
        assert_eq!(d.lookup(&Value::Str("y".into())), None);
    }

    #[test]
    fn semantic_order_matches_value_order() {
        let mut d = Dict::default();
        let values = [
            Value::Nat(0),
            Value::Nat(7),
            Value::Nat(u64::MAX),
            Value::Str(String::new()),
            Value::Str("a".into()),
            Value::Str("b".into()),
        ];
        // Encode in reverse so raw id order disagrees with semantic order.
        let vals: Vec<Val> = values.iter().rev().map(|v| d.encode(v)).collect();
        let vals: Vec<Val> = vals.into_iter().rev().collect();
        for (i, (va, a)) in vals.iter().zip(&values).enumerate() {
            for (vb, b) in vals.iter().zip(&values).skip(i) {
                assert_eq!(d.cmp_vals(*va, *vb), a.cmp(b), "{a} vs {b}");
                assert_eq!(d.display(*va), a.to_string());
            }
        }
    }

    #[test]
    fn overlay_extends_without_touching_base() {
        let mut d = Dict::default();
        let base_word = d.encode(&Value::Str("base".into()));
        let mut o = OverlayDict::new(&d);
        assert_eq!(o.encode(&Value::Str("base".into())), base_word);
        let extra = o.encode(&Value::Str("extra".into()));
        assert_eq!(o.encode(&Value::Str("extra".into())), extra);
        assert!(extra.id().unwrap() >= d.len());
        assert_eq!(o.decode(extra), Value::Str("extra".into()));
        assert_eq!(o.decode(base_word), Value::Str("base".into()));
        assert_eq!(d.len(), 1, "base untouched");
    }

    #[test]
    fn shared_overlay_round_trips() {
        let mut d = Dict::default();
        d.encode(&Value::Str("base".into()));
        let o = SharedOverlay::new(&d);
        for v in [
            Value::Nat(3),
            Value::Nat(u64::MAX),
            Value::Str("base".into()),
            Value::Str("fresh".into()),
        ] {
            let w = o.encode(&v);
            assert_eq!(o.encode(&v), w, "canonical");
            assert_eq!(o.decode(w), v);
        }
    }

    #[test]
    fn vrel_keeps_sorted_dedup_and_stats() {
        let mut d = Dict::default();
        let mut r = VRel::new(2);
        let rows = [
            [Value::Nat(2), Value::Str("b".into())],
            [Value::Nat(1), Value::Str("a".into())],
            [Value::Nat(2), Value::Str("a".into())],
            [Value::Nat(1), Value::Str("a".into())], // duplicate
        ];
        for row in &rows {
            let enc: Vec<Val> = row.iter().map(|v| d.encode(v)).collect();
            r.insert(&enc, &d);
        }
        assert_eq!(r.rows(), 3);
        let decoded: Vec<Tuple> = r.decoded(&d).collect();
        let mut expected: Vec<Tuple> = rows[..3].iter().map(|r| r.to_vec()).collect();
        expected.sort();
        assert_eq!(decoded, expected);
        let key: Vec<Val> = rows[1].iter().map(|v| d.encode(v)).collect();
        assert!(r.contains(&key, &d));
        let stats = r.stats(&d);
        assert_eq!(stats[0].distinct, 2);
        assert_eq!(stats[0].min, Some(Value::Nat(1)));
        assert_eq!(stats[0].max, Some(Value::Nat(2)));
        assert_eq!(stats[1].distinct, 2);
    }
}
