//! Compact value words, the per-state dictionary, and columnar storage.
//!
//! A [`Val`] is one machine word. Naturals below 2⁶³ are stored inline;
//! everything else (large naturals, strings) is an id into a [`Dict`] of
//! interned entries. Interning is canonical — a value has exactly one
//! word per dictionary — so word equality *is* semantic equality, and
//! hash joins and frame bindings work on bare `u64`s.
//!
//! Word *order* is not semantic (dictionary ids are assigned in
//! insertion order, not sort order): use [`Dict::cmp_vals`] wherever the
//! legacy [`Value`] ordering (`Nat < Str`, naturals numerically, strings
//! byte-lexicographically) matters.
//!
//! [`VRel`] stores a relation as a flat arity-strided `Vec<Val>` kept in
//! semantic sorted order without duplicates, so decoding yields exactly
//! the tuple sequence the old `BTreeSet<Tuple>` representation produced,
//! and membership is a binary search over words. Per-column min/max and
//! distinct counts ([`ColStats`]) are computed lazily and feed the
//! optimizer's cardinality estimates.
//!
//! Writers have two paths into a [`VRel`]:
//!
//! * [`VRel::insert`] — the single-row path: binary search plus
//!   `splice`, O(rows) worst case per call. Right for point updates and
//!   small states; quadratic when driven in a bulk-load loop.
//! * [`VRel::extend_from_sorted`] / [`VRel::from_rows`] — the batch
//!   path: sort the incoming batch (adaptive, so already-sorted input
//!   is linear), drop in-batch duplicates, and merge once with the
//!   existing store. O((b log b) + rows + b) per batch of `b` rows.
//!   [`Dict::encode_rows`] is the matching batch interning entry point.
//!
//! Both paths uphold the same invariants — see the "Storage &
//! ingestion" section of `DESIGN.md` — and debug builds assert against
//! bulk loads accidentally driven through the single-row path.

use crate::fx::FxMap;
use crate::state::{Tuple, Value};
use std::cmp::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

/// The tag bit: set for dictionary ids, clear for inline naturals.
const TAG: u64 = 1 << 63;

/// Semantic hash of a natural, for content fingerprints. Tagged apart
/// from [`hash_str`] so `Nat(5)` and `Str("5")` never collide by
/// construction.
pub(crate) fn hash_nat(n: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fx::FxHasher::default();
    h.write_u8(0);
    h.write_u64(n);
    h.finish()
}

/// Semantic hash of a string, for content fingerprints.
pub(crate) fn hash_str(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fx::FxHasher::default();
    h.write_u8(1);
    h.write(s.as_bytes());
    h.finish()
}

/// A database value packed into one word: an inline natural (`n < 2⁶³`)
/// or a dictionary id. Equality and hashing are word operations; the
/// derived `Ord` is **not** the semantic [`Value`] order — use
/// [`Dict::cmp_vals`] for that.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Val(u64);

impl Val {
    /// The inline word for a small natural, if it fits.
    pub fn inline_nat(n: u64) -> Option<Val> {
        (n & TAG == 0).then_some(Val(n))
    }

    /// The natural stored inline, if this word is untagged.
    pub fn as_inline_nat(self) -> Option<u64> {
        (self.0 & TAG == 0).then_some(self.0)
    }

    /// The dictionary id, if this word is tagged.
    pub fn id(self) -> Option<usize> {
        (self.0 & TAG != 0).then_some((self.0 & !TAG) as usize)
    }

    fn from_id(id: usize) -> Val {
        Val(TAG | id as u64)
    }

    /// The raw word.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reinterpret a raw word (the snapshot reader's inverse of
    /// [`Val::raw`]); the caller validates tagged ids against its
    /// dictionary.
    pub(crate) fn from_raw(word: u64) -> Val {
        Val(word)
    }
}

impl std::fmt::Debug for Val {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_inline_nat() {
            Some(n) => write!(f, "Val({n})"),
            None => write!(f, "Val(#{})", (self.0 & !TAG)),
        }
    }
}

/// An interned dictionary entry: a natural too large to inline, or a
/// string. `pub(crate)` so the snapshot format can dump and rebuild
/// the entry table in id order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum DictEntry {
    Big(u64),
    Str(Arc<str>),
}

/// A borrowed view of a decoded word, cheap enough for comparators.
enum View<'a> {
    Nat(u64),
    Str(&'a str),
}

impl View<'_> {
    fn cmp(&self, other: &View<'_>) -> Ordering {
        // Mirrors the derived `Ord` on `Value`: Nat < Str, naturals
        // numerically, strings byte-lexicographically.
        match (self, other) {
            (View::Nat(a), View::Nat(b)) => a.cmp(b),
            (View::Nat(_), View::Str(_)) => Ordering::Less,
            (View::Str(_), View::Nat(_)) => Ordering::Greater,
            (View::Str(a), View::Str(b)) => a.cmp(b),
        }
    }
}

/// The per-[`State`](crate::State) append-only interning dictionary.
/// Every stored string and large natural has exactly one id, so two
/// words from the same dictionary are equal iff they denote the same
/// value.
#[derive(Clone, Debug, Default)]
pub struct Dict {
    entries: Vec<DictEntry>,
    bigs: FxMap<u64, u32>,
    strs: FxMap<Arc<str>, u32>,
}

impl Dict {
    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of interned strings.
    pub fn strings(&self) -> usize {
        self.strs.len()
    }

    /// Intern a value, returning its canonical word.
    pub fn encode(&mut self, v: &Value) -> Val {
        match v {
            Value::Nat(n) => match Val::inline_nat(*n) {
                Some(val) => val,
                None => match self.bigs.get(n) {
                    Some(&id) => Val::from_id(id as usize),
                    None => {
                        let id = self.entries.len() as u32;
                        self.entries.push(DictEntry::Big(*n));
                        self.bigs.insert(*n, id);
                        Val::from_id(id as usize)
                    }
                },
            },
            Value::Str(s) => match self.strs.get(s.as_str()) {
                Some(&id) => Val::from_id(id as usize),
                None => {
                    let id = self.entries.len() as u32;
                    let arc: Arc<str> = Arc::from(s.as_str());
                    self.entries.push(DictEntry::Str(arc.clone()));
                    self.strs.insert(arc, id);
                    Val::from_id(id as usize)
                }
            },
        }
    }

    /// Batch-intern a sequence of decoded tuples into one flat word
    /// buffer (arity-strided, insertion order preserved).
    ///
    /// Semantically identical to calling [`Dict::encode`] per value —
    /// interning stays canonical, ids are assigned in first-seen order —
    /// but the entry table and reverse maps are grown once per batch
    /// instead of once per miss, which amortizes the rehash and
    /// `Arc<str>` bookkeeping that dominates string-heavy loads.
    pub fn encode_rows<'a, I>(&mut self, tuples: I, out: &mut Vec<Val>)
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let tuples = tuples.into_iter();
        // Reserve one fresh entry per row up front. Over-reservation is
        // harmless; under-reservation (wide rows of all-new strings)
        // just rehashes as the per-value path would have.
        let (lo, _) = tuples.size_hint();
        self.entries.reserve(lo);
        self.strs.reserve(lo);
        for tuple in tuples {
            out.reserve(tuple.len());
            for v in tuple {
                out.push(self.encode(v));
            }
        }
    }

    /// The word for a value **without** interning. `None` means the
    /// value is not in the dictionary (hence in no stored tuple).
    pub fn lookup(&self, v: &Value) -> Option<Val> {
        match v {
            Value::Nat(n) => match Val::inline_nat(*n) {
                Some(val) => Some(val),
                None => self.bigs.get(n).map(|&id| Val::from_id(id as usize)),
            },
            Value::Str(s) => self
                .strs
                .get(s.as_str())
                .map(|&id| Val::from_id(id as usize)),
        }
    }

    /// A 64-bit semantic hash of every interned entry, indexed by id.
    /// Equal values hash equal in *any* dictionary, regardless of id
    /// assignment order, so [`State::fingerprint`](crate::State::fingerprint)
    /// can mix row words through this table and depend only on decoded
    /// content — never on interning history.
    pub(crate) fn entry_hashes(&self) -> Vec<u64> {
        self.entries
            .iter()
            .map(|e| match e {
                DictEntry::Big(n) => hash_nat(*n),
                DictEntry::Str(s) => hash_str(s),
            })
            .collect()
    }

    /// The interned entries in id order — exactly what the snapshot
    /// format serializes, so a reload via [`Dict::from_raw_entries`]
    /// reproduces this dictionary's id assignment and every stored
    /// word column stays valid verbatim.
    pub(crate) fn raw_entries(&self) -> &[DictEntry] {
        &self.entries
    }

    /// Total bytes of interned string payloads (snapshot sizing).
    pub(crate) fn string_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                DictEntry::Big(_) => 0,
                DictEntry::Str(s) => s.len(),
            })
            .sum()
    }

    /// Rebuild a dictionary from an entry table in id order,
    /// reconstructing the reverse maps. `Err` (with a human-readable
    /// detail) when the table is not canonical — duplicate entries, or
    /// a "big" natural small enough to inline — since words encoded
    /// against such a table would break the one-word-per-value
    /// invariant word equality relies on.
    pub(crate) fn from_raw_entries(entries: Vec<DictEntry>) -> Result<Dict, String> {
        let mut bigs = crate::fx::map_with_capacity(entries.len());
        let mut strs = crate::fx::map_with_capacity(entries.len());
        for (id, entry) in entries.iter().enumerate() {
            match entry {
                DictEntry::Big(n) => {
                    if Val::inline_nat(*n).is_some() {
                        return Err(format!(
                            "dictionary entry {id} interns the inline-representable natural {n}"
                        ));
                    }
                    if bigs.insert(*n, id as u32).is_some() {
                        return Err(format!("dictionary entry {id} duplicates the natural {n}"));
                    }
                }
                DictEntry::Str(s) => {
                    if strs.insert(Arc::clone(s), id as u32).is_some() {
                        return Err(format!("dictionary entry {id} duplicates a string"));
                    }
                }
            }
        }
        Ok(Dict {
            entries,
            bigs,
            strs,
        })
    }

    fn view(&self, v: Val) -> View<'_> {
        match v.as_inline_nat() {
            Some(n) => View::Nat(n),
            None => match &self.entries[v.id().expect("tagged")] {
                DictEntry::Big(n) => View::Nat(*n),
                DictEntry::Str(s) => View::Str(s),
            },
        }
    }

    /// Decode a word back into a [`Value`].
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this dictionary.
    pub fn decode(&self, v: Val) -> Value {
        match self.view(v) {
            View::Nat(n) => Value::Nat(n),
            View::Str(s) => Value::Str(s.to_string()),
        }
    }

    /// Render a word exactly as [`Value`]'s `Display` would.
    pub fn display(&self, v: Val) -> String {
        match self.view(v) {
            View::Nat(n) => n.to_string(),
            View::Str(s) => format!("\"{s}\""),
        }
    }

    /// The semantic order of two words, identical to comparing their
    /// decoded [`Value`]s.
    pub fn cmp_vals(&self, a: Val, b: Val) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.view(a).cmp(&self.view(b))
    }

    /// Lexicographic semantic order of two rows.
    pub fn cmp_rows(&self, a: &[Val], b: &[Val]) -> Ordering {
        for (&x, &y) in a.iter().zip(b.iter()) {
            match self.cmp_vals(x, y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    }

    /// Precompute an order-preserving integer key for every word of
    /// this dictionary: comparing keys is exactly [`Dict::cmp_vals`].
    ///
    /// Bulk merges compare the same interned strings against each other
    /// over and over, and trace-domain strings share long prefixes (a
    /// machine's whole encoding), so each comparison walks hundreds of
    /// equal bytes. Ranking the dictionary once — O(d log d) string
    /// comparisons for d entries — turns every subsequent row
    /// comparison into a `u128` compare. Worth it whenever a batch is
    /// large relative to the dictionary; [`VRel::extend_from_sorted`]
    /// decides, and bulk loaders that merge several relations against
    /// one dictionary ([`StateBuilder::finish`]) build the table once
    /// and pass it to [`VRel::extend_from_sorted_with`].
    ///
    /// [`StateBuilder::finish`]: crate::StateBuilder::finish
    pub fn sort_keys(&self) -> SortKeys {
        // Inline naturals key as their value (0 .. 2⁶³); interned big
        // naturals as their value (≥ 2⁶³, above every inline word);
        // strings as 2⁶⁴ + rank in byte order (above every natural) —
        // canonical interning makes ranks collision-free.
        let mut str_ids: Vec<u32> = (0..self.entries.len() as u32)
            .filter(|&id| matches!(self.entries[id as usize], DictEntry::Str(_)))
            .collect();
        str_ids.sort_unstable_by(|&a, &b| {
            match (&self.entries[a as usize], &self.entries[b as usize]) {
                (DictEntry::Str(x), DictEntry::Str(y)) => x.cmp(y),
                _ => unreachable!("filtered to strings"),
            }
        });
        let mut by_id = vec![0u128; self.entries.len()];
        for (rank, &id) in str_ids.iter().enumerate() {
            by_id[id as usize] = (1u128 << 64) + rank as u128;
        }
        for (id, entry) in self.entries.iter().enumerate() {
            if let DictEntry::Big(n) = entry {
                by_id[id] = *n as u128;
            }
        }
        SortKeys { by_id }
    }
}

/// Does ranking the dictionary pay for itself on this batch? Compares
/// the sort's comparison volume (`b log b` row compares, each walking
/// up to `arity` values) against the ranking cost (`d log d` string
/// compares for `d` dictionary entries). Shared by
/// [`VRel::extend_from_sorted`] and `StateBuilder::finish`.
pub(crate) fn batch_prefers_keys(rows: usize, arity: usize, dict_len: usize) -> bool {
    let log2 = |n: usize| (usize::BITS - n.max(2).leading_zeros()) as usize;
    dict_len > 0 && (rows * arity).saturating_mul(log2(rows)) >= dict_len * log2(dict_len)
}

/// Below this many staged rows one relation's batch merges sequentially
/// even when `StateBuilder::finish_with` has an engine: the chunk
/// fan-out and merge rounds cost more than the sort they replace.
pub(crate) const PARALLEL_SORT_MIN_ROWS: usize = 1 << 17;

/// Chunk size (rows) for [`VRel::extend_from_sorted_parallel`] when
/// driven from `StateBuilder::finish_with`.
pub(crate) const PARALLEL_SORT_CHUNK_ROWS: usize = 1 << 16;

/// An id-indexed table of order-preserving integer keys for one
/// [`Dict`] generation (see [`Dict::sort_keys`]). Stale tables must not
/// be used after the dictionary grows — debug builds catch this as an
/// out-of-bounds id.
pub struct SortKeys {
    by_id: Vec<u128>,
}

impl SortKeys {
    /// The key of a word; `key(a) < key(b)` iff `cmp_vals(a, b)` is
    /// `Less`.
    #[inline]
    pub fn key(&self, v: Val) -> u128 {
        match v.as_inline_nat() {
            Some(n) => n as u128,
            None => self.by_id[v.id().expect("tagged")],
        }
    }

    /// Lexicographic semantic order of two rows through the key table —
    /// identical to [`Dict::cmp_rows`].
    #[inline]
    pub fn cmp_rows(&self, a: &[Val], b: &[Val]) -> Ordering {
        for (&x, &y) in a.iter().zip(b.iter()) {
            if x == y {
                continue;
            }
            match self.key(x).cmp(&self.key(y)) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    }
}

/// A read-only base dictionary plus an appendable overlay, for values a
/// query mentions that no stored tuple contains (literal constants,
/// singleton tuples, domain-function results). Overlay ids start at
/// `base.len()`, so base words stay valid and word equality still means
/// semantic equality across the combined id space.
#[derive(Debug)]
pub struct OverlayDict<'a> {
    base: &'a Dict,
    extra: Vec<DictEntry>,
    bigs: FxMap<u64, u32>,
    strs: FxMap<Arc<str>, u32>,
}

impl<'a> OverlayDict<'a> {
    pub fn new(base: &'a Dict) -> Self {
        OverlayDict {
            base,
            extra: Vec::new(),
            bigs: FxMap::default(),
            strs: FxMap::default(),
        }
    }

    /// The underlying state dictionary.
    pub fn base(&self) -> &'a Dict {
        self.base
    }

    /// Intern a value, preferring the base dictionary's word.
    pub fn encode(&mut self, v: &Value) -> Val {
        if let Some(val) = self.base.lookup(v) {
            return val;
        }
        match v {
            Value::Nat(n) => match self.bigs.get(n) {
                Some(&id) => Val::from_id(id as usize),
                None => {
                    let id = (self.base.len() + self.extra.len()) as u32;
                    self.extra.push(DictEntry::Big(*n));
                    self.bigs.insert(*n, id);
                    Val::from_id(id as usize)
                }
            },
            Value::Str(s) => match self.strs.get(s.as_str()) {
                Some(&id) => Val::from_id(id as usize),
                None => {
                    let id = (self.base.len() + self.extra.len()) as u32;
                    let arc: Arc<str> = Arc::from(s.as_str());
                    self.extra.push(DictEntry::Str(arc.clone()));
                    self.strs.insert(arc, id);
                    Val::from_id(id as usize)
                }
            },
        }
    }

    /// The word for a value if already interned in base or overlay.
    pub fn lookup(&self, v: &Value) -> Option<Val> {
        if let Some(val) = self.base.lookup(v) {
            return Some(val);
        }
        match v {
            Value::Nat(n) => self.bigs.get(n).map(|&id| Val::from_id(id as usize)),
            Value::Str(s) => self
                .strs
                .get(s.as_str())
                .map(|&id| Val::from_id(id as usize)),
        }
    }

    fn view(&self, v: Val) -> View<'_> {
        match v.as_inline_nat() {
            Some(n) => View::Nat(n),
            None => {
                let id = v.id().expect("tagged");
                let entry = if id < self.base.len() {
                    &self.base.entries[id]
                } else {
                    &self.extra[id - self.base.len()]
                };
                match entry {
                    DictEntry::Big(n) => View::Nat(*n),
                    DictEntry::Str(s) => View::Str(s),
                }
            }
        }
    }

    /// Decode a word from the combined id space.
    pub fn decode(&self, v: Val) -> Value {
        match self.view(v) {
            View::Nat(n) => Value::Nat(n),
            View::Str(s) => Value::Str(s.to_string()),
        }
    }
}

/// A thread-safe [`OverlayDict`]: encoding locks, decoding of inline
/// naturals and base-dictionary ids stays lock-free. Used by the
/// parallel slot evaluator, whose worker frames all bind words from one
/// shared id space.
#[derive(Debug)]
pub struct SharedOverlay<'a> {
    base: &'a Dict,
    inner: Mutex<OverlayDict<'a>>,
}

impl<'a> SharedOverlay<'a> {
    pub fn new(base: &'a Dict) -> Self {
        SharedOverlay {
            base,
            inner: Mutex::new(OverlayDict::new(base)),
        }
    }

    /// Intern a value (locks only when the base dictionary misses).
    pub fn encode(&self, v: &Value) -> Val {
        if let Value::Nat(n) = v {
            if let Some(val) = Val::inline_nat(*n) {
                return val;
            }
        }
        if let Some(val) = self.base.lookup(v) {
            return val;
        }
        self.inner.lock().expect("overlay lock").encode(v)
    }

    /// Decode a word from the combined id space.
    pub fn decode(&self, v: Val) -> Value {
        match v.as_inline_nat() {
            Some(n) => Value::Nat(n),
            None => {
                let id = v.id().expect("tagged");
                if id < self.base.len() {
                    self.base.decode(v)
                } else {
                    self.inner.lock().expect("overlay lock").decode(v)
                }
            }
        }
    }
}

/// Per-column statistics of a stored relation, in decoded form so the
/// optimizer can compare them against plan constants directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColStats {
    /// Number of distinct values in the column.
    pub distinct: usize,
    /// Smallest value (`None` for an empty relation).
    pub min: Option<Value>,
    /// Largest value (`None` for an empty relation).
    pub max: Option<Value>,
}

/// A columnar relation: `rows × arity` words in one flat vector, kept
/// sorted in semantic order without duplicates. Row `i` occupies
/// `data[i*arity .. (i+1)*arity]`.
#[derive(Clone, Debug)]
pub struct VRel {
    arity: usize,
    rows: usize,
    data: Vec<Val>,
    stats: OnceLock<Vec<ColStats>>,
    /// Debug-only bulk-misuse detector: consecutive [`VRel::insert`]
    /// calls since the last batch operation. See [`VRel::insert`].
    #[cfg(debug_assertions)]
    insert_streak: u32,
}

/// Debug builds trip an assertion when this many consecutive single-row
/// [`VRel::insert`] calls hit one relation with no batch call between
/// them — a loop that long is a bulk load on the wrong path.
#[cfg(debug_assertions)]
const INSERT_STREAK_LIMIT: u32 = 100_000;

impl VRel {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        VRel {
            arity,
            rows: 0,
            data: Vec::new(),
            stats: OnceLock::new(),
            #[cfg(debug_assertions)]
            insert_streak: 0,
        }
    }

    /// Build a relation directly from a flat, arity-strided word batch
    /// (`rows × arity` words, already encoded against `dict`). The batch
    /// may be unsorted and may contain duplicates; the result is sorted
    /// in semantic order and duplicate-free, exactly as if every row had
    /// been [`VRel::insert`]ed.
    pub fn from_rows(arity: usize, batch: Vec<Val>, dict: &Dict) -> VRel {
        let mut rel = VRel::new(arity);
        rel.extend_from_sorted(batch, dict);
        rel
    }

    /// Build a relation from a flat batch the caller **guarantees** is
    /// already strictly sorted in semantic order with no duplicates —
    /// e.g. rows streamed out of another [`VRel`], or snapshot-ordered
    /// trace batches whose producer emits canonical order. The batch is
    /// adopted as the store directly: no sort, no probe, no merge.
    /// Debug builds assert the precondition row by row.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or `data.len()` is not a multiple of
    /// the arity; debug builds also panic when the batch is not
    /// strictly sorted under `dict`'s semantic order.
    pub fn from_sorted_unchecked(arity: usize, data: Vec<Val>, dict: &Dict) -> VRel {
        assert!(
            arity > 0 && data.len().is_multiple_of(arity),
            "batch of {} words is not a whole number of arity-{arity} rows",
            data.len()
        );
        let rows = data.len() / arity;
        debug_assert!(
            (1..rows).all(|i| {
                dict.cmp_rows(
                    &data[(i - 1) * arity..i * arity],
                    &data[i * arity..(i + 1) * arity],
                ) == Ordering::Less
            }),
            "from_sorted_unchecked batch is not strictly sorted"
        );
        let _ = dict;
        VRel {
            arity,
            rows,
            data,
            stats: OnceLock::new(),
            #[cfg(debug_assertions)]
            insert_streak: 0,
        }
    }

    /// Assemble a relation from parts the snapshot reader has already
    /// bounds-checked: `rows × arity` words in strict semantic order
    /// plus the precomputed per-column statistics, adopted with the
    /// stats cache pre-populated (a loaded snapshot never recomputes
    /// stats). Debug builds re-assert the shape and sortedness; release
    /// builds trust the reader's checksums.
    pub(crate) fn assemble(
        arity: usize,
        rows: usize,
        data: Vec<Val>,
        stats: Vec<ColStats>,
        dict: &Dict,
    ) -> VRel {
        debug_assert_eq!(data.len(), rows * arity);
        debug_assert_eq!(stats.len(), arity);
        debug_assert!(
            arity == 0
                || (1..rows).all(|i| {
                    dict.cmp_rows(
                        &data[(i - 1) * arity..i * arity],
                        &data[i * arity..(i + 1) * arity],
                    ) == Ordering::Less
                }),
            "assembled column is not strictly sorted"
        );
        let _ = dict;
        let cell = OnceLock::new();
        cell.set(stats).expect("fresh cell");
        VRel {
            arity,
            rows,
            data,
            stats: cell,
            #[cfg(debug_assertions)]
            insert_streak: 0,
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The flat word store.
    pub fn data(&self) -> &[Val] {
        &self.data
    }

    /// Row `i` as a word slice.
    pub fn row(&self, i: usize) -> &[Val] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate rows in semantic sorted order.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[Val]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Rows `start .. start + len` (clamped to the stored row count) as
    /// one flat, arity-strided word slice — a *morsel* of the relation.
    /// Morsel boundaries are always aligned to whole rows, so a worker
    /// handed a morsel never sees a torn tuple.
    pub fn morsel(&self, start: usize, len: usize) -> &[Val] {
        let start = start.min(self.rows);
        let end = start.saturating_add(len).min(self.rows);
        &self.data[start * self.arity..end * self.arity]
    }

    /// Partition the store into fixed-size morsels of `morsel_rows`
    /// rows (the last may be short). An empty relation yields no
    /// morsels; the concatenation of all morsels is exactly
    /// [`VRel::data`].
    ///
    /// # Panics
    ///
    /// Panics if `morsel_rows` is zero.
    pub fn morsels(&self, morsel_rows: usize) -> impl Iterator<Item = &[Val]> + '_ {
        assert!(morsel_rows > 0, "morsel size must be positive");
        (0..self.rows)
            .step_by(morsel_rows)
            .map(move |start| self.morsel(start, morsel_rows))
    }

    /// The insertion point of `row` in semantic order, and whether the
    /// row is already present.
    fn search(&self, row: &[Val], dict: &Dict) -> (usize, bool) {
        let mut lo = 0usize;
        let mut hi = self.rows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match dict.cmp_rows(self.row(mid), row) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return (mid, true),
            }
        }
        (lo, false)
    }

    /// Insert a row (already encoded against `dict`), keeping the store
    /// sorted and duplicate-free. Returns whether the row was new.
    ///
    /// This is the **single-row** path: a binary search plus a `splice`,
    /// O(rows) worst case per call because the tail of the flat store
    /// shifts to make room. Point updates and small states are fine;
    /// driving it in a bulk-load loop is quadratic — use
    /// [`VRel::extend_from_sorted`] (or, at the [`State`] level,
    /// `StateBuilder` / `State::extend_bulk`) for batches. Debug builds
    /// assert after `INSERT_STREAK_LIMIT` (100 000) consecutive
    /// single-row inserts with no intervening batch call.
    ///
    /// [`State`]: crate::State
    pub fn insert(&mut self, row: &[Val], dict: &Dict) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        #[cfg(debug_assertions)]
        {
            self.insert_streak += 1;
            debug_assert!(
                self.insert_streak < INSERT_STREAK_LIMIT,
                "{} consecutive single-row VRel::insert calls — this is a \
                 bulk load; use extend_from_sorted / StateBuilder instead",
                self.insert_streak
            );
        }
        let (pos, found) = self.search(row, dict);
        if found {
            return false;
        }
        let at = pos * self.arity;
        self.data.splice(at..at, row.iter().copied());
        self.rows += 1;
        self.stats.take();
        true
    }

    /// Append a batch of rows in one pass, keeping the store sorted and
    /// duplicate-free. `batch` is flat and arity-strided (`b × arity`
    /// words encoded against `dict`), in **any** order, duplicates
    /// allowed — the name records the *postcondition* (the store stays
    /// sorted), not a precondition on the input. Returns the number of
    /// rows that were new.
    ///
    /// Cost: O(b log b) comparisons to sort the batch (adaptive — an
    /// already-sorted batch sorts in O(b)) plus one O(rows + b) merge
    /// with the existing store, against O(b × rows) for the equivalent
    /// [`VRel::insert`] loop.
    ///
    /// # Panics
    ///
    /// Panics if `batch.len()` is not a multiple of the arity.
    pub fn extend_from_sorted(&mut self, batch: Vec<Val>, dict: &Dict) -> usize {
        let Some(b) = self.check_batch(&batch) else {
            return 0;
        };
        // Sortedness probe, run *before* the rank-key decision: a batch
        // from an already-sorted producer (snapshot-ordered traces, rows
        // streamed out of another `VRel`) skips both the O(b log b)
        // permutation sort and the O(d log d) dictionary ranking, and an
        // unsorted batch fails the probe within a few comparisons.
        if Self::batch_is_sorted(&batch, b, self.arity, |x, y| dict.cmp_rows(x, y)) {
            return self.merge_presorted(batch, b, |x, y| dict.cmp_rows(x, y));
        }
        if batch_prefers_keys(b, self.arity, dict.len()) {
            let keys = dict.sort_keys();
            self.merge_batch(batch, b, |x, y| keys.cmp_rows(x, y))
        } else {
            self.merge_batch(batch, b, |x, y| dict.cmp_rows(x, y))
        }
    }

    /// [`VRel::extend_from_sorted`] with a prebuilt key table, for bulk
    /// loaders that merge several relations against one dictionary and
    /// want to pay the [`Dict::sort_keys`] ranking once. `keys` must
    /// come from the dictionary the batch (and this store) was encoded
    /// against, built after the last interning.
    pub fn extend_from_sorted_with(&mut self, batch: Vec<Val>, keys: &SortKeys) -> usize {
        let Some(b) = self.check_batch(&batch) else {
            return 0;
        };
        if Self::batch_is_sorted(&batch, b, self.arity, |x, y| keys.cmp_rows(x, y)) {
            return self.merge_presorted(batch, b, |x, y| keys.cmp_rows(x, y));
        }
        self.merge_batch(batch, b, |x, y| keys.cmp_rows(x, y))
    }

    /// [`VRel::extend_from_sorted_with`] with the batch sort fanned out
    /// on `engine`'s worker pool: chunks of `chunk_rows` rows are
    /// stable-sorted concurrently, then merged pairwise in parallel
    /// rounds, and the resulting permutation feeds the same single
    /// merge-with-store pass as the sequential path.
    ///
    /// The result is **identical** to the sequential entry points at
    /// any thread count and chunk size: chunk sorts are stable, chunks
    /// partition the batch in index order, and the pairwise merge
    /// breaks ties toward the left (earlier-index) run — so the final
    /// permutation equals the one stable sort the sequential path
    /// computes, and equal rows are word-identical anyway (interning is
    /// canonical), making dedupe order-independent.
    ///
    /// One oversized relation is exactly the case per-relation fan-out
    /// (`StateBuilder::finish_with`) cannot help; this is the
    /// intra-relation parallelism for it.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows` is zero or the batch is ragged.
    pub fn extend_from_sorted_parallel(
        &mut self,
        batch: Vec<Val>,
        keys: &SortKeys,
        engine: &fq_engine::Engine,
        chunk_rows: usize,
    ) -> usize {
        assert!(chunk_rows > 0, "chunk size must be positive");
        let Some(b) = self.check_batch(&batch) else {
            return 0;
        };
        let arity = self.arity;
        let cmp = |x: &[Val], y: &[Val]| keys.cmp_rows(x, y);
        if Self::batch_is_sorted(&batch, b, arity, cmp) {
            return self.merge_presorted(batch, b, cmp);
        }
        let row_of = |i: u32| &batch[i as usize * arity..(i as usize + 1) * arity];
        // Sorted runs over disjoint index ranges, in index order.
        let ranges: Vec<(u32, u32)> = (0..b)
            .step_by(chunk_rows)
            .map(|start| (start as u32, start.saturating_add(chunk_rows).min(b) as u32))
            .collect();
        let mut runs: Vec<Vec<u32>> = engine.parallel_map(&ranges, |&(lo, hi)| {
            let mut run: Vec<u32> = (lo..hi).collect();
            // Stable, matching `merge_batch`'s `sort_by` — equal rows
            // keep index order within a run.
            run.sort_by(|&i, &j| cmp(row_of(i), row_of(j)));
            run
        });
        // Pairwise merge rounds; ties go to the left run, whose indices
        // all precede the right run's, preserving global stability.
        while runs.len() > 1 {
            let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(left) = it.next() {
                pairs.push((left, it.next()));
            }
            runs = engine.parallel_map_owned(pairs, |(left, right)| {
                let Some(right) = right else {
                    return left;
                };
                let mut out = Vec::with_capacity(left.len() + right.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < left.len() && j < right.len() {
                    if cmp(row_of(left[i]), row_of(right[j])) != Ordering::Greater {
                        out.push(left[i]);
                        i += 1;
                    } else {
                        out.push(right[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&left[i..]);
                out.extend_from_slice(&right[j..]);
                out
            });
        }
        let order = runs.pop().expect("b > 0 yields at least one run");
        self.merge_ordered(batch, b, &order, cmp)
    }

    /// Is the batch already strictly sorted (no duplicates) under `cmp`?
    /// Early-exits at the first out-of-order pair, so unsorted batches
    /// pay almost nothing for the probe.
    fn batch_is_sorted<F>(batch: &[Val], b: usize, arity: usize, cmp: F) -> bool
    where
        F: Fn(&[Val], &[Val]) -> Ordering,
    {
        (1..b).all(|i| {
            cmp(
                &batch[(i - 1) * arity..i * arity],
                &batch[i * arity..(i + 1) * arity],
            ) == Ordering::Less
        })
    }

    /// Merge a batch the probe certified strictly sorted: into an empty
    /// store the batch *is* the new store (zero copies); otherwise one
    /// merge pass with the identity permutation (no sort).
    fn merge_presorted<F>(&mut self, batch: Vec<Val>, b: usize, cmp: F) -> usize
    where
        F: Fn(&[Val], &[Val]) -> Ordering,
    {
        if self.rows == 0 {
            self.rows = b;
            self.data = batch;
            self.stats.take();
            return b;
        }
        let order: Vec<u32> = (0..b as u32).collect();
        self.merge_ordered(batch, b, &order, cmp)
    }

    /// Shared batch validation: resets the single-row streak guard,
    /// filters out empty batches, and panics on ragged input. Returns
    /// the batch row count.
    fn check_batch(&mut self, batch: &[Val]) -> Option<usize> {
        #[cfg(debug_assertions)]
        {
            self.insert_streak = 0;
        }
        if batch.is_empty() {
            return None;
        }
        assert!(
            self.arity > 0 && batch.len().is_multiple_of(self.arity),
            "batch of {} words is not a whole number of arity-{} rows",
            batch.len(),
            self.arity
        );
        Some(batch.len() / self.arity)
    }

    /// The sort-dedupe-merge core behind both batch entry points,
    /// generic over the row comparator (dictionary walk or key table).
    fn merge_batch<F>(&mut self, batch: Vec<Val>, b: usize, cmp: F) -> usize
    where
        F: Fn(&[Val], &[Val]) -> Ordering,
    {
        let arity = self.arity;
        // Sort a row-index permutation instead of the flat buffer so a
        // comparison swaps one usize, not `arity` words.
        let mut order: Vec<u32> = (0..b as u32).collect();
        order.sort_by(|&i, &j| {
            cmp(
                &batch[i as usize * arity..(i as usize + 1) * arity],
                &batch[j as usize * arity..(j as usize + 1) * arity],
            )
        });
        self.merge_ordered(batch, b, &order, cmp)
    }

    /// One merge pass of a batch whose sorted order is given by the
    /// `order` permutation, deduping the batch against itself and
    /// against the store.
    fn merge_ordered<F>(&mut self, batch: Vec<Val>, b: usize, order: &[u32], cmp: F) -> usize
    where
        F: Fn(&[Val], &[Val]) -> Ordering,
    {
        let arity = self.arity;
        let mut merged: Vec<Val> = Vec::with_capacity(self.data.len() + batch.len());
        let mut added = 0usize;
        let mut old = 0usize; // next existing row
        let mut new = 0usize; // next position in `order`
        let row_of = |i: u32| &batch[i as usize * arity..(i as usize + 1) * arity];
        while old < self.rows || new < b {
            if new >= b {
                merged.extend_from_slice(self.row(old));
                old += 1;
                continue;
            }
            // Skip batch rows equal to their sorted predecessor.
            if new > 0 && cmp(row_of(order[new - 1]), row_of(order[new])) == Ordering::Equal {
                new += 1;
                continue;
            }
            if old >= self.rows {
                merged.extend_from_slice(row_of(order[new]));
                added += 1;
                new += 1;
                continue;
            }
            match cmp(self.row(old), row_of(order[new])) {
                Ordering::Less => {
                    merged.extend_from_slice(self.row(old));
                    old += 1;
                }
                Ordering::Equal => {
                    merged.extend_from_slice(self.row(old));
                    old += 1;
                    new += 1;
                }
                Ordering::Greater => {
                    merged.extend_from_slice(row_of(order[new]));
                    added += 1;
                    new += 1;
                }
            }
        }
        if added > 0 {
            self.rows += added;
            self.data = merged;
            self.stats.take();
        }
        added
    }

    /// Membership by binary search over words.
    pub fn contains(&self, row: &[Val], dict: &Dict) -> bool {
        row.len() == self.arity && self.search(row, dict).1
    }

    /// Decode every row, in semantic sorted order — exactly the sequence
    /// the legacy `BTreeSet<Tuple>` iteration produced.
    pub fn decoded<'a>(&'a self, dict: &'a Dict) -> impl Iterator<Item = Tuple> + 'a {
        self.rows_iter()
            .map(move |row| row.iter().map(|&v| dict.decode(v)).collect())
    }

    /// Per-column statistics, computed once and cached until the next
    /// insertion.
    pub fn stats(&self, dict: &Dict) -> &[ColStats] {
        self.stats.get_or_init(|| {
            let mut out = Vec::with_capacity(self.arity);
            for c in 0..self.arity {
                let mut distinct: std::collections::HashSet<Val> = std::collections::HashSet::new();
                let mut min: Option<Val> = None;
                let mut max: Option<Val> = None;
                for r in 0..self.rows {
                    let v = self.data[r * self.arity + c];
                    distinct.insert(v);
                    min = Some(match min {
                        Some(m) if dict.cmp_vals(m, v) != Ordering::Greater => m,
                        _ => v,
                    });
                    max = Some(match max {
                        Some(m) if dict.cmp_vals(m, v) != Ordering::Less => m,
                        _ => v,
                    });
                }
                out.push(ColStats {
                    distinct: distinct.len(),
                    min: min.map(|v| dict.decode(v)),
                    max: max.map(|v| dict.decode(v)),
                });
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_interned_words() {
        let mut d = Dict::default();
        let small = d.encode(&Value::Nat(42));
        assert_eq!(small.as_inline_nat(), Some(42));
        assert_eq!(d.len(), 0, "small naturals never intern");
        let big = d.encode(&Value::Nat(u64::MAX));
        assert_eq!(big.as_inline_nat(), None);
        let s = d.encode(&Value::Str("1&".into()));
        assert_eq!(d.len(), 2);
        assert_eq!(d.strings(), 1);
        assert_eq!(d.decode(big), Value::Nat(u64::MAX));
        assert_eq!(d.decode(s), Value::Str("1&".into()));
    }

    #[test]
    fn interning_is_canonical() {
        let mut d = Dict::default();
        let a = d.encode(&Value::Str("x".into()));
        let b = d.encode(&Value::Str("x".into()));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup(&Value::Str("x".into())), Some(a));
        assert_eq!(d.lookup(&Value::Str("y".into())), None);
    }

    #[test]
    fn semantic_order_matches_value_order() {
        let mut d = Dict::default();
        let values = [
            Value::Nat(0),
            Value::Nat(7),
            Value::Nat(u64::MAX),
            Value::Str(String::new()),
            Value::Str("a".into()),
            Value::Str("b".into()),
        ];
        // Encode in reverse so raw id order disagrees with semantic order.
        let vals: Vec<Val> = values.iter().rev().map(|v| d.encode(v)).collect();
        let vals: Vec<Val> = vals.into_iter().rev().collect();
        for (i, (va, a)) in vals.iter().zip(&values).enumerate() {
            for (vb, b) in vals.iter().zip(&values).skip(i) {
                assert_eq!(d.cmp_vals(*va, *vb), a.cmp(b), "{a} vs {b}");
                assert_eq!(d.display(*va), a.to_string());
            }
        }
    }

    #[test]
    fn overlay_extends_without_touching_base() {
        let mut d = Dict::default();
        let base_word = d.encode(&Value::Str("base".into()));
        let mut o = OverlayDict::new(&d);
        assert_eq!(o.encode(&Value::Str("base".into())), base_word);
        let extra = o.encode(&Value::Str("extra".into()));
        assert_eq!(o.encode(&Value::Str("extra".into())), extra);
        assert!(extra.id().unwrap() >= d.len());
        assert_eq!(o.decode(extra), Value::Str("extra".into()));
        assert_eq!(o.decode(base_word), Value::Str("base".into()));
        assert_eq!(d.len(), 1, "base untouched");
    }

    #[test]
    fn shared_overlay_round_trips() {
        let mut d = Dict::default();
        d.encode(&Value::Str("base".into()));
        let o = SharedOverlay::new(&d);
        for v in [
            Value::Nat(3),
            Value::Nat(u64::MAX),
            Value::Str("base".into()),
            Value::Str("fresh".into()),
        ] {
            let w = o.encode(&v);
            assert_eq!(o.encode(&v), w, "canonical");
            assert_eq!(o.decode(w), v);
        }
    }

    #[test]
    fn batch_encode_matches_per_value_encode() {
        let tuples: Vec<Vec<Value>> = vec![
            vec![Value::Str("b".into()), Value::Nat(1)],
            vec![Value::Str("a".into()), Value::Nat(u64::MAX)],
            vec![Value::Str("b".into()), Value::Nat(2)],
        ];
        let mut per_value = Dict::default();
        let expected: Vec<Val> = tuples
            .iter()
            .flat_map(|t| t.iter().map(|v| per_value.encode(v)).collect::<Vec<_>>())
            .collect();
        let mut batched = Dict::default();
        let mut words = Vec::new();
        batched.encode_rows(tuples.iter().map(|t| t.as_slice()), &mut words);
        assert_eq!(words, expected, "ids assigned in the same first-seen order");
        assert_eq!(batched.len(), per_value.len());
        assert_eq!(batched.strings(), per_value.strings());
    }

    #[test]
    fn extend_from_sorted_equals_insert_loop() {
        let mut d = Dict::default();
        let rows: Vec<[Value; 2]> = vec![
            [Value::Nat(9), Value::Str("z".into())],
            [Value::Nat(1), Value::Str("a".into())],
            [Value::Nat(9), Value::Str("z".into())], // in-batch duplicate
            [Value::Nat(u64::MAX), Value::Str("".into())],
            [Value::Nat(1), Value::Str("a".into())], // again
            [Value::Nat(0), Value::Nat(0)],
        ];
        let mut by_insert = VRel::new(2);
        let mut flat = Vec::new();
        for row in &rows {
            let enc: Vec<Val> = row.iter().map(|v| d.encode(v)).collect();
            by_insert.insert(&enc, &d);
            flat.extend_from_slice(&enc);
        }
        let by_batch = VRel::from_rows(2, flat.clone(), &d);
        assert_eq!(by_batch.rows(), by_insert.rows());
        assert_eq!(by_batch.data(), by_insert.data());
        assert_eq!(by_batch.stats(&d), by_insert.stats(&d));
        // Merging into a non-empty store, including cross-batch dups.
        let mut merged = VRel::new(2);
        let head: Vec<Val> = flat[..4].to_vec();
        merged.extend_from_sorted(head, &d);
        let added = merged.extend_from_sorted(flat.clone(), &d);
        assert_eq!(merged.data(), by_insert.data());
        assert_eq!(added, by_insert.rows() - 2);
        // The prebuilt rank-key path merges to the identical store.
        let keys = d.sort_keys();
        let mut by_keys = VRel::new(2);
        by_keys.extend_from_sorted_with(flat, &keys);
        assert_eq!(by_keys.data(), by_insert.data());
        assert_eq!(by_keys.stats(&d), by_insert.stats(&d));
    }

    /// The rank-key heuristic must flip between the direct and keyed
    /// comparators without changing results: drive a batch through both
    /// entry points on a dictionary big enough that
    /// `extend_from_sorted` picks each path at one of the two sizes.
    #[test]
    fn keyed_and_direct_merges_agree_across_the_heuristic() {
        let mut d = Dict::default();
        // Interned strings with long shared prefixes plus boundary nats.
        let values: Vec<Value> = (0..300)
            .map(|i| match i % 3 {
                0 => Value::Str(format!("machine#shared-prefix#{:03}", i / 3)),
                1 => Value::Nat((1 << 63) + i as u64),
                _ => Value::Nat(i as u64),
            })
            .collect();
        let words: Vec<Val> = values.iter().map(|v| d.encode(v)).collect();
        for (small, large) in [(4usize, 280usize), (280, 4)] {
            let batch = |n: usize| -> Vec<Val> {
                (0..n)
                    .flat_map(|i| [words[(i * 7) % words.len()], words[(i * 13) % words.len()]])
                    .collect()
            };
            let (sm, lg) = (batch(small), batch(large));
            assert_ne!(
                batch_prefers_keys(small, 2, d.len()),
                batch_prefers_keys(large, 2, d.len()),
                "sizes must straddle the heuristic"
            );
            let mut auto = VRel::new(2);
            auto.extend_from_sorted(sm.clone(), &d);
            auto.extend_from_sorted(lg.clone(), &d);
            let keys = d.sort_keys();
            let mut keyed = VRel::new(2);
            keyed.extend_from_sorted_with(sm, &keys);
            keyed.extend_from_sorted_with(lg, &keys);
            assert_eq!(auto.data(), keyed.data());
            assert_eq!(auto.rows(), keyed.rows());
        }
    }

    // Parallel workers share `&VRel` / `&Dict` / `&SortKeys` across
    // scoped threads; keep them `Sync` by construction.
    const _: fn() = || {
        fn assert_sync<T: Sync>() {}
        assert_sync::<VRel>();
        assert_sync::<Dict>();
        assert_sync::<SortKeys>();
    };

    #[test]
    fn morsels_tile_the_store_on_row_boundaries() {
        let mut d = Dict::default();
        let mut r = VRel::new(3);
        let mut batch = Vec::new();
        for i in 0..10u64 {
            for v in [
                Value::Nat(i),
                Value::Str(format!("m{i}")),
                Value::Nat(i + 1),
            ] {
                batch.push(d.encode(&v));
            }
        }
        r.extend_from_sorted(batch, &d);
        assert_eq!(r.rows(), 10);
        for morsel_rows in [1, 3, 4, 5, 10, 64] {
            let parts: Vec<&[Val]> = r.morsels(morsel_rows).collect();
            assert_eq!(parts.len(), r.rows().div_ceil(morsel_rows));
            assert!(parts.iter().all(|m| m.len().is_multiple_of(3)));
            let glued: Vec<Val> = parts.concat();
            assert_eq!(glued, r.data(), "morsels of {morsel_rows} rows");
        }
        assert!(VRel::new(2).morsels(4).next().is_none());
        assert_eq!(r.morsel(8, 100), &r.data()[8 * 3..]);
        assert_eq!(r.morsel(99, 4), &[] as &[Val]);
    }

    #[test]
    fn from_sorted_unchecked_adopts_the_batch() {
        let mut d = Dict::default();
        let mut flat = Vec::new();
        for i in 0..6u64 {
            flat.push(d.encode(&Value::Nat(i)));
            flat.push(d.encode(&Value::Str(format!("s{i}"))));
        }
        let by_batch = VRel::from_rows(2, flat.clone(), &d);
        let unchecked = VRel::from_sorted_unchecked(2, by_batch.data().to_vec(), &d);
        assert_eq!(unchecked.rows(), by_batch.rows());
        assert_eq!(unchecked.data(), by_batch.data());
        assert_eq!(unchecked.stats(&d), by_batch.stats(&d));
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    #[cfg(debug_assertions)]
    fn from_sorted_unchecked_asserts_sortedness_in_debug() {
        let mut d = Dict::default();
        let hi = d.encode(&Value::Str("z".into()));
        let lo = d.encode(&Value::Str("a".into()));
        VRel::from_sorted_unchecked(1, vec![hi, lo], &d);
    }

    #[test]
    fn presorted_batches_merge_identically_to_unsorted_ones() {
        let mut d = Dict::default();
        // Strictly sorted batch (semantic order: nats then strings).
        let sorted: Vec<Val> = (0..40u64)
            .map(|i| {
                if i < 20 {
                    d.encode(&Value::Nat(i))
                } else {
                    d.encode(&Value::Str(format!("s{i:02}")))
                }
            })
            .collect();
        let mut shuffled: Vec<Val> = sorted.clone();
        shuffled.reverse();
        // Into an empty store (probe adopts the batch wholesale)…
        let mut a = VRel::new(1);
        assert_eq!(a.extend_from_sorted(sorted.clone(), &d), 40);
        let mut b = VRel::new(1);
        b.extend_from_sorted(shuffled.clone(), &d);
        assert_eq!(a.data(), b.data());
        // …and merging a sorted batch into a non-empty store.
        let tail: Vec<Val> = (40..60u64).map(|i| d.encode(&Value::Nat(i))).collect();
        let mut c = VRel::new(1);
        c.extend_from_sorted(tail.clone(), &d);
        assert_eq!(c.extend_from_sorted(sorted.clone(), &d), 40);
        let mut all = shuffled;
        all.extend(tail);
        let whole = VRel::from_rows(1, all, &d);
        assert_eq!(c.data(), whole.data());
        // The keyed entry point probes too.
        let keys = d.sort_keys();
        let mut k = VRel::new(1);
        assert_eq!(k.extend_from_sorted_with(sorted, &keys), 40);
        assert_eq!(k.rows(), 40);
    }

    #[test]
    fn parallel_batch_sort_equals_sequential_merge() {
        use fq_engine::{Engine, EngineConfig};
        let mut d = Dict::default();
        // Unsorted, duplicate-heavy, string/nat mixed batch.
        let flat: Vec<Val> = (0..500u64)
            .flat_map(|i| {
                [
                    d.encode(&Value::Str(format!("run#{}", (i * 37) % 90))),
                    d.encode(&Value::Nat((i * 13) % 47)),
                ]
            })
            .collect();
        let keys = d.sort_keys();
        let mut sequential = VRel::new(2);
        let seq_added = sequential.extend_from_sorted_with(flat.clone(), &keys);
        // Pre-seed a store so the merge-with-store leg is exercised too.
        let seed: Vec<Val> = flat[..40].to_vec();
        for threads in [1, 3] {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            for chunk_rows in [1, 7, 64, 10_000] {
                let mut parallel = VRel::new(2);
                let added =
                    parallel.extend_from_sorted_parallel(flat.clone(), &keys, &engine, chunk_rows);
                assert_eq!(
                    added, seq_added,
                    "{threads} threads, chunks of {chunk_rows}"
                );
                assert_eq!(parallel.data(), sequential.data());
                let mut seeded_seq = VRel::new(2);
                seeded_seq.extend_from_sorted_with(seed.clone(), &keys);
                seeded_seq.extend_from_sorted_with(flat.clone(), &keys);
                let mut seeded_par = VRel::new(2);
                seeded_par.extend_from_sorted_with(seed.clone(), &keys);
                seeded_par.extend_from_sorted_parallel(flat.clone(), &keys, &engine, chunk_rows);
                assert_eq!(seeded_par.data(), seeded_seq.data());
            }
            // Presorted batches take the probe shortcut unchanged.
            let mut presorted = VRel::new(2);
            assert_eq!(
                presorted.extend_from_sorted_parallel(
                    sequential.data().to_vec(),
                    &keys,
                    &engine,
                    8
                ),
                sequential.rows()
            );
            assert_eq!(presorted.data(), sequential.data());
        }
    }

    #[test]
    fn empty_and_all_duplicate_batches_are_noops() {
        let mut d = Dict::default();
        let row: Vec<Val> = [Value::Nat(1), Value::Nat(2)]
            .iter()
            .map(|v| d.encode(v))
            .collect();
        let mut r = VRel::new(2);
        r.insert(&row, &d);
        assert_eq!(r.extend_from_sorted(Vec::new(), &d), 0);
        let mut twice = row.clone();
        twice.extend_from_slice(&row);
        assert_eq!(r.extend_from_sorted(twice, &d), 0);
        assert_eq!(r.rows(), 1);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_batch_is_rejected() {
        let d = Dict::default();
        let mut r = VRel::new(2);
        r.extend_from_sorted(vec![Val::inline_nat(1).unwrap()], &d);
    }

    #[test]
    fn vrel_keeps_sorted_dedup_and_stats() {
        let mut d = Dict::default();
        let mut r = VRel::new(2);
        let rows = [
            [Value::Nat(2), Value::Str("b".into())],
            [Value::Nat(1), Value::Str("a".into())],
            [Value::Nat(2), Value::Str("a".into())],
            [Value::Nat(1), Value::Str("a".into())], // duplicate
        ];
        for row in &rows {
            let enc: Vec<Val> = row.iter().map(|v| d.encode(v)).collect();
            r.insert(&enc, &d);
        }
        assert_eq!(r.rows(), 3);
        let decoded: Vec<Tuple> = r.decoded(&d).collect();
        let mut expected: Vec<Tuple> = rows[..3].iter().map(|r| r.to_vec()).collect();
        expected.sort();
        assert_eq!(decoded, expected);
        let key: Vec<Val> = rows[1].iter().map(|v| d.encode(v)).collect();
        assert!(r.contains(&key, &d));
        let stats = r.stats(&d);
        assert_eq!(stats[0].distinct, 2);
        assert_eq!(stats[0].min, Some(Value::Nat(1)));
        assert_eq!(stats[0].max, Some(Value::Nat(2)));
        assert_eq!(stats[1].distinct, 2);
    }
}
