//! Physical execution of algebra expressions.
//!
//! [`PhysicalPlan::compile`] lowers an [`AlgebraExpr`] into operators
//! whose attribute references are resolved to column indexes once, at
//! compile time. Execution then works on plain `Vec<Tuple>` streams:
//!
//! * **hash join** — build a hash table on the shared-attribute key of
//!   the smaller input and probe with the larger, replacing the naive
//!   O(|A|·|B|) nested loop;
//! * **streaming select/project/extend** — no intermediate `BTreeSet`
//!   materialization; duplicates are eliminated only where they can
//!   arise (narrowing projections and unions), so every stream stays
//!   duplicate-free and operator row counts equal logical cardinalities;
//! * **memoized base scans** — a relation referenced twice in the plan
//!   is materialized once per execution.
//!
//! The final result is collected into the same `BTreeSet`-backed
//! [`Relation`] the naive [`AlgebraExpr::eval`] produces, so the two
//! backends are bit-identical (attribute order included).

use crate::algebra::{AlgebraExpr, Condition, Relation};
use crate::state::{State, Tuple, Value};
use std::collections::{BTreeSet, HashMap};

/// Per-operator execution statistics: a rendered operator label and the
/// number of (duplicate-free) rows it produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStat {
    pub op: String,
    pub rows: usize,
}

/// The result of a physical execution with its operator statistics, in
/// bottom-up completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecReport {
    pub relation: Relation,
    pub operators: Vec<OpStat>,
}

/// A column-index-resolved selection condition.
#[derive(Clone, Debug)]
enum PCond {
    EqCol(usize, usize),
    NeqCol(usize, usize),
    EqConst(usize, Value),
    NeqConst(usize, Value),
}

impl PCond {
    fn keep(&self, t: &[Value]) -> bool {
        match self {
            PCond::EqCol(i, j) => t[*i] == t[*j],
            PCond::NeqCol(i, j) => t[*i] != t[*j],
            PCond::EqConst(i, v) => t[*i] == *v,
            PCond::NeqConst(i, v) => t[*i] != *v,
        }
    }
}

/// A physical operator. Attribute names are gone; every reference is a
/// column index into the input stream's tuples.
#[derive(Clone, Debug)]
enum PNode {
    Scan {
        name: String,
    },
    Empty,
    Singleton {
        tuple: Tuple,
    },
    Filter {
        input: Box<PNode>,
        cond: PCond,
    },
    /// Projection to fewer columns — may create duplicates, so it dedups.
    ProjectNarrow {
        input: Box<PNode>,
        idx: Vec<usize>,
    },
    /// Pure column permutation — cannot create duplicates.
    ProjectPerm {
        input: Box<PNode>,
        idx: Vec<usize>,
    },
    /// Hash join: output is `left ++ right[rextra]`. The build side is
    /// chosen at run time from the actual input cardinalities.
    HashJoin {
        left: Box<PNode>,
        right: Box<PNode>,
        lkey: Vec<usize>,
        rkey: Vec<usize>,
        rextra: Vec<usize>,
    },
    /// Union dedups; `rperm` aligns the right stream to the left layout.
    Union {
        left: Box<PNode>,
        right: Box<PNode>,
        rperm: Vec<usize>,
    },
    Diff {
        left: Box<PNode>,
        right: Box<PNode>,
        rperm: Vec<usize>,
    },
    Extend {
        input: Box<PNode>,
        src: usize,
    },
}

/// A compiled physical plan. State-independent: the same plan can run
/// against any state of the scheme.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    root: PNode,
    attrs: Vec<String>,
}

impl PhysicalPlan {
    /// Resolve every attribute reference of `expr` to column indexes.
    pub fn compile(expr: &AlgebraExpr) -> PhysicalPlan {
        PhysicalPlan {
            root: lower(expr),
            attrs: expr.attrs(),
        }
    }

    /// Execute against a state, producing the same [`Relation`] as
    /// `expr.eval(state)` for the compiled expression.
    pub fn execute(&self, state: &State) -> Relation {
        self.execute_with_stats(state).relation
    }

    /// Execute and report per-operator row counts.
    pub fn execute_with_stats(&self, state: &State) -> ExecReport {
        let mut cx = ExecContext {
            state,
            scans: HashMap::new(),
            stats: Vec::new(),
        };
        let rows = run(&self.root, &mut cx);
        ExecReport {
            relation: Relation {
                attrs: self.attrs.clone(),
                tuples: rows.into_iter().collect::<BTreeSet<Tuple>>(),
            },
            operators: cx.stats,
        }
    }
}

fn col(attrs: &[String], attr: &str) -> usize {
    attrs
        .iter()
        .position(|a| a == attr)
        .unwrap_or_else(|| panic!("attribute `{attr}` not in {attrs:?}"))
}

fn lower(expr: &AlgebraExpr) -> PNode {
    match expr {
        AlgebraExpr::Base { name, .. } => PNode::Scan { name: name.clone() },
        AlgebraExpr::Empty(_) => PNode::Empty,
        AlgebraExpr::Singleton(cols) => PNode::Singleton {
            tuple: cols.iter().map(|(_, v)| v.clone()).collect(),
        },
        AlgebraExpr::Select(e, cond) => {
            let attrs = e.attrs();
            let cond = match cond {
                Condition::EqAttr(a, b) => PCond::EqCol(col(&attrs, a), col(&attrs, b)),
                Condition::NeqAttr(a, b) => PCond::NeqCol(col(&attrs, a), col(&attrs, b)),
                Condition::EqConst(a, v) => PCond::EqConst(col(&attrs, a), v.clone()),
                Condition::NeqConst(a, v) => PCond::NeqConst(col(&attrs, a), v.clone()),
            };
            PNode::Filter {
                input: Box::new(lower(e)),
                cond,
            }
        }
        AlgebraExpr::Project(e, attrs) => {
            let in_attrs = e.attrs();
            let idx: Vec<usize> = attrs.iter().map(|a| col(&in_attrs, a)).collect();
            let input = Box::new(lower(e));
            if idx.len() == in_attrs.len() {
                // Keeps every column: a permutation, duplicates impossible.
                PNode::ProjectPerm { input, idx }
            } else {
                PNode::ProjectNarrow { input, idx }
            }
        }
        AlgebraExpr::Join(a, b) => {
            let la = a.attrs();
            let lb = b.attrs();
            let mut lkey = Vec::new();
            let mut rkey = Vec::new();
            for (i, attr) in la.iter().enumerate() {
                if let Some(j) = lb.iter().position(|x| x == attr) {
                    lkey.push(i);
                    rkey.push(j);
                }
            }
            let rextra: Vec<usize> = lb
                .iter()
                .enumerate()
                .filter(|(_, attr)| !la.contains(attr))
                .map(|(j, _)| j)
                .collect();
            PNode::HashJoin {
                left: Box::new(lower(a)),
                right: Box::new(lower(b)),
                lkey,
                rkey,
                rextra,
            }
        }
        AlgebraExpr::Union(a, b) => {
            let la = a.attrs();
            let lb = b.attrs();
            let rperm: Vec<usize> = la.iter().map(|attr| col(&lb, attr)).collect();
            PNode::Union {
                left: Box::new(lower(a)),
                right: Box::new(lower(b)),
                rperm,
            }
        }
        AlgebraExpr::Diff(a, b) => {
            let la = a.attrs();
            let lb = b.attrs();
            let rperm: Vec<usize> = la.iter().map(|attr| col(&lb, attr)).collect();
            PNode::Diff {
                left: Box::new(lower(a)),
                right: Box::new(lower(b)),
                rperm,
            }
        }
        AlgebraExpr::Extend(e, _, src) => {
            let attrs = e.attrs();
            PNode::Extend {
                input: Box::new(lower(e)),
                src: col(&attrs, src),
            }
        }
    }
}

struct ExecContext<'a> {
    state: &'a State,
    /// Base relations materialized in this execution, by name.
    scans: HashMap<String, Vec<Tuple>>,
    stats: Vec<OpStat>,
}

/// Evaluate a node to a duplicate-free tuple stream.
///
/// Invariant: every stream returned here is duplicate-free. Scans and
/// singletons are sets; filters, permutations, extends, and differences
/// preserve duplicate-freeness; hash joins of duplicate-free inputs are
/// duplicate-free (the output determines both factors); narrowing
/// projections and unions are the only duplicate sources, and both
/// dedup. Row counts therefore equal the logical cardinalities of the
/// naive backend.
fn run(node: &PNode, cx: &mut ExecContext<'_>) -> Vec<Tuple> {
    let (label, rows) = match node {
        PNode::Scan { name } => {
            let rows = match cx.scans.get(name) {
                Some(rows) => rows.clone(),
                None => {
                    let rows: Vec<Tuple> = cx.state.tuples(name).cloned().collect();
                    cx.scans.insert(name.clone(), rows.clone());
                    rows
                }
            };
            (format!("scan {name}"), rows)
        }
        PNode::Empty => ("empty".to_string(), Vec::new()),
        PNode::Singleton { tuple } => ("const".to_string(), vec![tuple.clone()]),
        PNode::Filter { input, cond } => {
            let mut rows = run(input, cx);
            rows.retain(|t| cond.keep(t));
            ("filter".to_string(), rows)
        }
        PNode::ProjectPerm { input, idx } => {
            let rows = run(input, cx);
            let rows = rows
                .into_iter()
                .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                .collect();
            ("project(permute)".to_string(), rows)
        }
        PNode::ProjectNarrow { input, idx } => {
            let rows = run(input, cx);
            let set: BTreeSet<Tuple> = rows
                .into_iter()
                .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                .collect();
            ("project(dedup)".to_string(), set.into_iter().collect())
        }
        PNode::HashJoin {
            left,
            right,
            lkey,
            rkey,
            rextra,
        } => {
            let lrows = run(left, cx);
            let rrows = run(right, cx);
            let rows = hash_join(&lrows, &rrows, lkey, rkey, rextra);
            (
                format!("hash-join (left {} × right {})", lrows.len(), rrows.len()),
                rows,
            )
        }
        PNode::Union { left, right, rperm } => {
            let lrows = run(left, cx);
            let rrows = run(right, cx);
            let mut set: BTreeSet<Tuple> = lrows.into_iter().collect();
            set.extend(
                rrows
                    .into_iter()
                    .map(|t| rperm.iter().map(|&i| t[i].clone()).collect::<Tuple>()),
            );
            ("union(dedup)".to_string(), set.into_iter().collect())
        }
        PNode::Diff { left, right, rperm } => {
            let lrows = run(left, cx);
            let rrows = run(right, cx);
            let remove: BTreeSet<Tuple> = rrows
                .into_iter()
                .map(|t| rperm.iter().map(|&i| t[i].clone()).collect())
                .collect();
            let rows: Vec<Tuple> = lrows.into_iter().filter(|t| !remove.contains(t)).collect();
            ("diff".to_string(), rows)
        }
        PNode::Extend { input, src } => {
            let rows = run(input, cx);
            let rows = rows
                .into_iter()
                .map(|mut t| {
                    t.push(t[*src].clone());
                    t
                })
                .collect();
            ("extend".to_string(), rows)
        }
    };
    cx.stats.push(OpStat {
        op: label,
        rows: rows.len(),
    });
    rows
}

/// Build/probe hash join. The build side is the smaller input; the
/// output layout is always `left ++ right[rextra]` regardless of which
/// side was built, matching the logical Join's attribute list.
fn hash_join(
    lrows: &[Tuple],
    rrows: &[Tuple],
    lkey: &[usize],
    rkey: &[usize],
    rextra: &[usize],
) -> Vec<Tuple> {
    let key_of =
        |t: &Tuple, key: &[usize]| -> Vec<Value> { key.iter().map(|&i| t[i].clone()).collect() };
    let mut out = Vec::new();
    if lrows.len() <= rrows.len() {
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in lrows {
            table.entry(key_of(t, lkey)).or_default().push(t);
        }
        for tb in rrows {
            if let Some(matches) = table.get(&key_of(tb, rkey)) {
                for ta in matches {
                    let mut t = (*ta).clone();
                    t.extend(rextra.iter().map(|&j| tb[j].clone()));
                    out.push(t);
                }
            }
        }
    } else {
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in rrows {
            table.entry(key_of(t, rkey)).or_default().push(t);
        }
        for ta in lrows {
            if let Some(matches) = table.get(&key_of(ta, lkey)) {
                for tb in matches {
                    let mut t = ta.clone();
                    t.extend(rextra.iter().map(|&j| tb[j].clone()));
                    out.push(t);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::compile;
    use crate::optimize::optimize;
    use crate::schema::Schema;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2).with_relation("S", 1);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
            .with_tuple("S", vec![Value::Nat(2)])
    }

    fn check(query: &str) {
        let state = fathers();
        let f = parse_formula(query).unwrap();
        let expr = compile(state.schema(), &f).expect("compiles");
        let naive = expr.eval(&state);
        // Unoptimized physical execution.
        let phys = PhysicalPlan::compile(&expr).execute(&state);
        assert_eq!(naive, phys, "physical ≠ naive on {query}");
        // Optimized physical execution.
        let opt = optimize(&expr, &state);
        let phys_opt = PhysicalPlan::compile(&opt.expr).execute(&state);
        assert_eq!(naive, phys_opt, "optimized physical ≠ naive on {query}");
    }

    #[test]
    fn physical_matches_naive_backend() {
        for q in [
            "F(x, y)",
            "exists y z. y != z & F(x, y) & F(x, z)",
            "exists y. F(x, y) & F(y, z)",
            "F(x, y) & S(y)",
            "F(1, y)",
            "F(x, x)",
            "F(x, y) | (x = 9 & y = 9)",
            "F(x, y) & !F(y, x)",
            "(exists y. F(x, y)) & !(exists g. exists f. F(g, f) & F(f, x))",
            "F(x, y) & x != y",
            "F(x, y) & y != 2",
            "x = 2 & (exists z. F(y, z) & x != 0)",
            "(exists y. F(x, y)) & forall y. F(x, y) -> y = 2 | y = 3",
            "exists x y. F(x, y)",
        ] {
            check(q);
        }
    }

    #[test]
    fn cross_join_is_the_empty_key_case() {
        let e = AlgebraExpr::Join(
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["x".into(), "y".into()],
            }),
            Box::new(AlgebraExpr::Base {
                name: "S".into(),
                attrs: vec!["s".into()],
            }),
        );
        let state = fathers();
        assert_eq!(e.eval(&state), PhysicalPlan::compile(&e).execute(&state));
    }

    #[test]
    fn stats_report_operator_cardinalities() {
        let state = fathers();
        let f = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let expr = compile(state.schema(), &f).unwrap();
        let report = PhysicalPlan::compile(&expr).execute_with_stats(&state);
        assert!(report
            .operators
            .iter()
            .any(|s| s.op.starts_with("scan F") && s.rows == 3));
        assert!(report
            .operators
            .iter()
            .any(|s| s.op.starts_with("hash-join")));
    }

    #[test]
    fn base_scans_are_memoized_per_execution() {
        // F appears twice; the scan stream must be identical both times
        // (and the memo map is exercised via the cloned path).
        let e = AlgebraExpr::Join(
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["x".into(), "y".into()],
            }),
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["y".into(), "z".into()],
            }),
        );
        let state = fathers();
        let report = PhysicalPlan::compile(&e).execute_with_stats(&state);
        let scans: Vec<&OpStat> = report
            .operators
            .iter()
            .filter(|s| s.op == "scan F")
            .collect();
        assert_eq!(scans.len(), 2);
        assert!(scans.iter().all(|s| s.rows == 3));
        assert_eq!(e.eval(&state), PhysicalPlan::compile(&e).execute(&state));
    }
}
