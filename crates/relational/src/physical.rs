//! Physical execution of algebra expressions.
//!
//! [`PhysicalPlan::compile`] lowers an [`AlgebraExpr`] into operators
//! whose attribute references are resolved to column indexes once, at
//! compile time. Execution works on columnar word streams — flat,
//! arity-strided `Vec<Val>` buffers fed directly from the [`State`]'s
//! dictionary-encoded store:
//!
//! * **hash join** — build a hash table keyed on bare `u64` words (a
//!   single-word fast path for one-column keys) over the smaller input
//!   and probe with the larger, with no per-probe allocation or string
//!   hashing;
//! * **streaming select/project/extend** — no intermediate
//!   materialization; duplicates are eliminated only where they can
//!   arise (narrowing projections and unions), so every stream stays
//!   duplicate-free and operator row counts equal logical cardinalities;
//! * **zero-copy memoized base scans** — a scan *borrows* the
//!   relation's flat columnar store (copy-on-write streams), so even a
//!   million-row string relation enters the plan without copying a
//!   word, and a relation referenced twice resolves to the same
//!   borrowed stream. String join keys need no extra fast path: strings
//!   are interned to one-word ids, so the single-`u64` key path below
//!   covers them at the same cost as naturals.
//!
//! Plans are state-independent, so plan constants stay as [`Value`]s and
//! are encoded per execution through an [`OverlayDict`] (query constants
//! need not exist in the state's dictionary). The final result decodes
//! into the same `BTreeSet`-backed [`Relation`] the naive
//! [`AlgebraExpr::eval`] produces, so the two backends are bit-identical
//! (attribute order included).
//!
//! # Morsel-driven parallelism
//!
//! [`PhysicalPlan::execute_on`] runs the same operators data-parallel on
//! an [`Engine`]'s worker pool. Inputs are split into fixed-size
//! **morsels** — contiguous row ranges of the flat buffer, boundaries
//! aligned to arity strides — and each streaming operator (filter,
//! project, extend, diff/union probe, join probe) maps its morsels on
//! the pool and stitches the partial outputs back **in morsel order**,
//! so the concatenation is exactly the sequential left-to-right scan.
//! Hash joins parallelize both sides: the build scan is **partitioned**
//! (each worker owns one shard of the Fx-hashed key space and keeps the
//! build rows hashing into it, so per-key row lists stay in build-input
//! order), and probe morsels consult the one shard their key hashes to.
//! Dedup operators dedup locally per morsel (keeping each morsel's first
//! occurrences) and re-filter once sequentially during the stitch, which
//! reproduces the global first-occurrence order. Parallel output is
//! therefore **bit-identical** to the sequential path at every thread
//! count and morsel size — parallelism is purely a performance knob.

use crate::algebra::{AlgebraExpr, Condition, Relation};
use crate::fx::{self, FxHasher, FxMap, FxSet};
use crate::state::{State, Tuple, Value};
use crate::val::{OverlayDict, Val};
use fq_engine::Engine;
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

/// Default rows per morsel: large enough that per-morsel overhead (one
/// pool hand-off, one partial buffer) is noise, small enough that a
/// million-row scan fans out hundreds of ways.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Tuning knobs for a parallel execution. The thread count comes from
/// the [`Engine`] itself ([`fq_engine::EngineConfig::threads`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOpts {
    /// Rows per morsel; must be positive. Exposed so tests can force
    /// many-morsel schedules on tiny relations.
    pub morsel_rows: usize,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// Per-operator execution statistics: a rendered operator label, the
/// number of (duplicate-free) rows it produced, and how many morsels its
/// input was split into (1 when the operator ran sequentially).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStat {
    pub op: String,
    pub rows: usize,
    pub morsels: usize,
}

/// The result of a physical execution with its operator statistics, in
/// bottom-up completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecReport {
    pub relation: Relation,
    pub operators: Vec<OpStat>,
}

/// A column-index-resolved selection condition. Constants stay decoded
/// so the plan remains state-independent; they are resolved to words at
/// execution time.
#[derive(Clone, Debug)]
enum PCond {
    EqCol(usize, usize),
    NeqCol(usize, usize),
    EqConst(usize, Value),
    NeqConst(usize, Value),
}

/// A [`PCond`] with its constant resolved against one execution's
/// overlay. A constant the combined dictionary has never seen can match
/// no stream word: equality keeps nothing, inequality keeps everything.
enum RCond {
    EqCol(usize, usize),
    NeqCol(usize, usize),
    EqWord(usize, Val),
    NeqWord(usize, Val),
    KeepNone,
    KeepAll,
}

impl RCond {
    fn resolve(cond: &PCond, overlay: &OverlayDict<'_>) -> RCond {
        match cond {
            PCond::EqCol(i, j) => RCond::EqCol(*i, *j),
            PCond::NeqCol(i, j) => RCond::NeqCol(*i, *j),
            PCond::EqConst(i, v) => match overlay.lookup(v) {
                Some(w) => RCond::EqWord(*i, w),
                None => RCond::KeepNone,
            },
            PCond::NeqConst(i, v) => match overlay.lookup(v) {
                Some(w) => RCond::NeqWord(*i, w),
                None => RCond::KeepAll,
            },
        }
    }

    fn keep(&self, t: &[Val]) -> bool {
        match self {
            RCond::EqCol(i, j) => t[*i] == t[*j],
            RCond::NeqCol(i, j) => t[*i] != t[*j],
            RCond::EqWord(i, w) => t[*i] == *w,
            RCond::NeqWord(i, w) => t[*i] != *w,
            RCond::KeepNone => false,
            RCond::KeepAll => true,
        }
    }
}

/// A physical operator. Attribute names are gone; every reference is a
/// column index into the input stream's rows.
#[derive(Clone, Debug)]
enum PNode {
    Scan {
        name: String,
    },
    Empty,
    Singleton {
        tuple: Tuple,
    },
    Filter {
        input: Box<PNode>,
        cond: PCond,
    },
    /// Projection to fewer columns — may create duplicates, so it dedups.
    ProjectNarrow {
        input: Box<PNode>,
        idx: Vec<usize>,
    },
    /// Pure column permutation — cannot create duplicates.
    ProjectPerm {
        input: Box<PNode>,
        idx: Vec<usize>,
    },
    /// Hash join: output is `left ++ right[rextra]`. The build side is
    /// chosen at run time from the actual input cardinalities.
    HashJoin {
        left: Box<PNode>,
        right: Box<PNode>,
        lkey: Vec<usize>,
        rkey: Vec<usize>,
        rextra: Vec<usize>,
    },
    /// Union dedups; `rperm` aligns the right stream to the left layout.
    Union {
        left: Box<PNode>,
        right: Box<PNode>,
        rperm: Vec<usize>,
    },
    Diff {
        left: Box<PNode>,
        right: Box<PNode>,
        rperm: Vec<usize>,
    },
    Extend {
        input: Box<PNode>,
        src: usize,
    },
}

/// A compiled physical plan. State-independent: the same plan can run
/// against any state of the scheme.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    root: PNode,
    attrs: Vec<String>,
}

impl PhysicalPlan {
    /// Resolve every attribute reference of `expr` to column indexes.
    pub fn compile(expr: &AlgebraExpr) -> PhysicalPlan {
        PhysicalPlan {
            root: lower(expr),
            attrs: expr.attrs(),
        }
    }

    /// Execute against a state, producing the same [`Relation`] as
    /// `expr.eval(state)` for the compiled expression.
    pub fn execute(&self, state: &State) -> Relation {
        self.execute_with_stats(state).relation
    }

    /// Execute and report per-operator row counts (sequential path).
    pub fn execute_with_stats(&self, state: &State) -> ExecReport {
        self.exec(state, None, ExecOpts::default())
    }

    /// Execute morsel-driven on `engine`'s worker pool. Output is
    /// bit-identical to [`PhysicalPlan::execute`] at any thread count.
    pub fn execute_on(&self, state: &State, engine: &Engine) -> Relation {
        self.execute_with_stats_on(state, engine, ExecOpts::default())
            .relation
    }

    /// [`PhysicalPlan::execute_on`] with statistics and tuning knobs.
    pub fn execute_with_stats_on(
        &self,
        state: &State,
        engine: &Engine,
        opts: ExecOpts,
    ) -> ExecReport {
        self.exec(state, Some(engine), opts)
    }

    fn exec(&self, state: &State, eng: Option<&Engine>, opts: ExecOpts) -> ExecReport {
        assert!(opts.morsel_rows > 0, "morsel size must be positive");
        let mut cx = ExecContext {
            state,
            overlay: OverlayDict::new(state.dict()),
            scans: HashMap::new(),
            stats: Vec::new(),
            eng,
            morsel_rows: opts.morsel_rows,
        };
        let out = run(&self.root, &mut cx);
        // Decoding sorts implicitly: the `BTreeSet` restores the
        // canonical tuple order regardless of stream order.
        let tuples: BTreeSet<Tuple> = out
            .rows()
            .map(|row| row.iter().map(|&v| cx.overlay.decode(v)).collect())
            .collect();
        ExecReport {
            relation: Relation {
                attrs: self.attrs.clone(),
                tuples,
            },
            operators: cx.stats,
        }
    }
}

fn col(attrs: &[String], attr: &str) -> usize {
    attrs
        .iter()
        .position(|a| a == attr)
        .unwrap_or_else(|| panic!("attribute `{attr}` not in {attrs:?}"))
}

fn lower(expr: &AlgebraExpr) -> PNode {
    match expr {
        AlgebraExpr::Base { name, .. } => PNode::Scan { name: name.clone() },
        AlgebraExpr::Empty(_) => PNode::Empty,
        AlgebraExpr::Singleton(cols) => PNode::Singleton {
            tuple: cols.iter().map(|(_, v)| v.clone()).collect(),
        },
        AlgebraExpr::Select(e, cond) => {
            let attrs = e.attrs();
            let cond = match cond {
                Condition::EqAttr(a, b) => PCond::EqCol(col(&attrs, a), col(&attrs, b)),
                Condition::NeqAttr(a, b) => PCond::NeqCol(col(&attrs, a), col(&attrs, b)),
                Condition::EqConst(a, v) => PCond::EqConst(col(&attrs, a), v.clone()),
                Condition::NeqConst(a, v) => PCond::NeqConst(col(&attrs, a), v.clone()),
            };
            PNode::Filter {
                input: Box::new(lower(e)),
                cond,
            }
        }
        AlgebraExpr::Project(e, attrs) => {
            let in_attrs = e.attrs();
            let idx: Vec<usize> = attrs.iter().map(|a| col(&in_attrs, a)).collect();
            let input = Box::new(lower(e));
            if idx.len() == in_attrs.len() {
                // Keeps every column: a permutation, duplicates impossible.
                PNode::ProjectPerm { input, idx }
            } else {
                PNode::ProjectNarrow { input, idx }
            }
        }
        AlgebraExpr::Join(a, b) => {
            let la = a.attrs();
            let lb = b.attrs();
            let mut lkey = Vec::new();
            let mut rkey = Vec::new();
            for (i, attr) in la.iter().enumerate() {
                if let Some(j) = lb.iter().position(|x| x == attr) {
                    lkey.push(i);
                    rkey.push(j);
                }
            }
            let rextra: Vec<usize> = lb
                .iter()
                .enumerate()
                .filter(|(_, attr)| !la.contains(attr))
                .map(|(j, _)| j)
                .collect();
            PNode::HashJoin {
                left: Box::new(lower(a)),
                right: Box::new(lower(b)),
                lkey,
                rkey,
                rextra,
            }
        }
        AlgebraExpr::Union(a, b) => {
            let la = a.attrs();
            let lb = b.attrs();
            let rperm: Vec<usize> = la.iter().map(|attr| col(&lb, attr)).collect();
            PNode::Union {
                left: Box::new(lower(a)),
                right: Box::new(lower(b)),
                rperm,
            }
        }
        AlgebraExpr::Diff(a, b) => {
            let la = a.attrs();
            let lb = b.attrs();
            let rperm: Vec<usize> = la.iter().map(|attr| col(&lb, attr)).collect();
            PNode::Diff {
                left: Box::new(lower(a)),
                right: Box::new(lower(b)),
                rperm,
            }
        }
        AlgebraExpr::Extend(e, _, src) => {
            let attrs = e.attrs();
            PNode::Extend {
                input: Box::new(lower(e)),
                src: col(&attrs, src),
            }
        }
    }
}

/// A flat, arity-strided stream of word rows. `rows` is explicit so
/// zero-arity streams (sentence subplans) keep their cardinality.
///
/// `data` is copy-on-write over the executed state's lifetime: base
/// scans *borrow* the [`VRel`](crate::VRel)'s flat store directly (a
/// million-row string relation scans without copying a word — cloning a
/// borrowed stream for the scan memo is O(1)), while operators build
/// owned buffers. `to_mut` never actually clones in practice because
/// rows are only pushed into streams born owned.
#[derive(Clone, Debug)]
struct VStream<'a> {
    arity: usize,
    rows: usize,
    data: std::borrow::Cow<'a, [Val]>,
}

impl<'a> VStream<'a> {
    fn empty(arity: usize) -> VStream<'a> {
        VStream {
            arity,
            rows: 0,
            data: std::borrow::Cow::Owned(Vec::new()),
        }
    }

    fn owned(arity: usize, rows: usize, data: Vec<Val>) -> VStream<'a> {
        debug_assert_eq!(data.len(), rows * arity);
        VStream {
            arity,
            rows,
            data: std::borrow::Cow::Owned(data),
        }
    }

    fn row(&self, i: usize) -> &[Val] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    fn rows(&self) -> impl Iterator<Item = &[Val]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    fn push(&mut self, row: &[Val]) {
        debug_assert_eq!(row.len(), self.arity);
        self.data.to_mut().extend_from_slice(row);
        self.rows += 1;
    }

    /// The stream cut into `morsel_rows`-row slices on arity-stride
    /// boundaries (the tail morsel is shorter).
    fn morsels(&self, morsel_rows: usize) -> Vec<&[Val]> {
        (0..self.rows)
            .step_by(morsel_rows)
            .map(|start| {
                let end = (start + morsel_rows).min(self.rows);
                &self.data[start * self.arity..end * self.arity]
            })
            .collect()
    }
}

struct ExecContext<'a> {
    state: &'a State,
    /// Query constants absent from the state dictionary get overlay ids,
    /// so singleton tuples and filter constants share the word space.
    overlay: OverlayDict<'a>,
    /// Base relations materialized in this execution, by name.
    scans: HashMap<String, VStream<'a>>,
    stats: Vec<OpStat>,
    /// Worker pool for morsel fan-out; `None` runs fully sequential.
    eng: Option<&'a Engine>,
    morsel_rows: usize,
}

impl<'a> ExecContext<'a> {
    /// The engine to fan out on, when a parallel schedule is worthwhile
    /// for a stream of `rows` rows of `arity` columns: ≥ 2 pool threads
    /// and ≥ 2 morsels (zero-arity streams hold at most one row under
    /// the duplicate-freeness invariant, so they never qualify).
    fn fanout(&self, arity: usize, rows: usize) -> Option<&'a Engine> {
        let eng = self.eng?;
        (eng.threads() >= 2 && arity > 0 && rows.div_ceil(self.morsel_rows) >= 2).then_some(eng)
    }
}

/// Concatenate per-morsel partial outputs, in morsel order, into one
/// owned stream of `out_arity`-column rows.
fn stitch<'a>(parts: Vec<Vec<Val>>, out_arity: usize) -> VStream<'a> {
    debug_assert!(out_arity > 0, "parallel operators produce positive arity");
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut data = Vec::with_capacity(total);
    for part in parts {
        data.extend(part);
    }
    VStream::owned(out_arity, total / out_arity, data)
}

/// Fan `s`'s morsels out on the pool, apply `f` to each independently,
/// and stitch the partial outputs back in morsel order — equal to the
/// sequential left-to-right scan whenever `f` is a per-row map/filter.
/// Returns the stream and the number of morsels processed.
fn par_morsel_map<'a, F>(
    eng: &Engine,
    s: &VStream<'_>,
    morsel_rows: usize,
    out_arity: usize,
    f: F,
) -> (VStream<'a>, usize)
where
    F: Fn(&[Val]) -> Vec<Val> + Sync,
{
    let morsels = s.morsels(morsel_rows);
    let n = morsels.len();
    let parts = eng.parallel_map(&morsels, |m| f(m));
    (stitch(parts, out_arity), n)
}

/// Evaluate a node to a duplicate-free word stream.
///
/// Invariant: every stream returned here is duplicate-free. Scans and
/// singletons are sets; filters, permutations, extends, and differences
/// preserve duplicate-freeness; hash joins of duplicate-free inputs are
/// duplicate-free (the output determines both factors); narrowing
/// projections and unions are the only duplicate sources, and both
/// dedup. Row counts therefore equal the logical cardinalities of the
/// naive backend.
fn run<'a>(node: &PNode, cx: &mut ExecContext<'a>) -> VStream<'a> {
    let (label, out, morsels) = match node {
        PNode::Scan { name } => {
            let out = match cx.scans.get(name) {
                Some(s) => s.clone(),
                None => {
                    // Borrow the relation's flat store — no per-scan
                    // copy, and the memoized clone is O(1) too.
                    let s = match cx.state.vrel(name) {
                        Some(rel) => VStream {
                            arity: rel.arity(),
                            rows: rel.rows(),
                            data: std::borrow::Cow::Borrowed(rel.data()),
                        },
                        None => VStream::empty(0),
                    };
                    cx.scans.insert(name.clone(), s.clone());
                    s
                }
            };
            (format!("scan {name}"), out, 1)
        }
        PNode::Empty => ("empty".to_string(), VStream::empty(0), 1),
        PNode::Singleton { tuple } => {
            let mut out = VStream::empty(tuple.len());
            let row: Vec<Val> = tuple.iter().map(|v| cx.overlay.encode(v)).collect();
            out.push(&row);
            ("const".to_string(), out, 1)
        }
        PNode::Filter { input, cond } => {
            let s = run(input, cx);
            let cond = RCond::resolve(cond, &cx.overlay);
            let (out, morsels) = match cx.fanout(s.arity, s.rows) {
                Some(eng) => {
                    let arity = s.arity;
                    par_morsel_map(eng, &s, cx.morsel_rows, arity, |m| {
                        let mut kept = Vec::new();
                        for row in m.chunks_exact(arity) {
                            if cond.keep(row) {
                                kept.extend_from_slice(row);
                            }
                        }
                        kept
                    })
                }
                None => {
                    let mut out = VStream::empty(s.arity);
                    for row in s.rows() {
                        if cond.keep(row) {
                            out.push(row);
                        }
                    }
                    (out, 1)
                }
            };
            ("filter".to_string(), out, morsels)
        }
        PNode::ProjectPerm { input, idx } => {
            let s = run(input, cx);
            let (out, morsels) = match cx.fanout(s.arity, s.rows) {
                Some(eng) => {
                    let arity = s.arity;
                    par_morsel_map(eng, &s, cx.morsel_rows, idx.len(), |m| {
                        let mut data = Vec::with_capacity(m.len() / arity * idx.len());
                        for row in m.chunks_exact(arity) {
                            data.extend(idx.iter().map(|&i| row[i]));
                        }
                        data
                    })
                }
                None => {
                    let mut data = Vec::with_capacity(s.rows * idx.len());
                    for row in s.rows() {
                        data.extend(idx.iter().map(|&i| row[i]));
                    }
                    (VStream::owned(idx.len(), s.rows, data), 1)
                }
            };
            ("project(permute)".to_string(), out, morsels)
        }
        PNode::ProjectNarrow { input, idx } => {
            let s = run(input, cx);
            match cx.fanout(s.arity, s.rows).filter(|_| !idx.is_empty()) {
                Some(eng) => {
                    // Three parallel phases, equal to the sequential
                    // scan's global first-occurrence semantics:
                    //
                    // 1. Per-morsel local dedup keeps each morsel's
                    //    first occurrences and hashes each kept row.
                    // 2. Sharded global dedup: shard workers scan the
                    //    kept rows in global order, each claiming only
                    //    rows whose hash lands in its shard. Equal rows
                    //    always share a shard, so every shard's local
                    //    first occurrence *is* the global one.
                    // 3. An order-restoring stitch copies the surviving
                    //    rows back in global order — no hashing, just a
                    //    flag-guided sweep.
                    let arity = s.arity;
                    let k = idx.len();
                    let morsels = s.morsels(cx.morsel_rows);
                    let n = morsels.len();
                    let parts: Vec<(Vec<Val>, Vec<u64>)> = eng.parallel_map(&morsels, |m| {
                        let mut local: FxSet<Vec<Val>> = FxSet::default();
                        let mut out = Vec::new();
                        let mut hashes = Vec::new();
                        for row in m.chunks_exact(arity) {
                            let narrow: Vec<Val> = idx.iter().map(|&i| row[i]).collect();
                            if local.contains(&narrow) {
                                continue;
                            }
                            let mut h = FxHasher::default();
                            for &v in &narrow {
                                std::hash::Hasher::write_u64(&mut h, v.raw());
                            }
                            hashes.push(std::hash::Hasher::finish(&h));
                            out.extend_from_slice(&narrow);
                            local.insert(narrow);
                        }
                        (out, hashes)
                    });
                    // Each part's offset in the concatenated kept rows.
                    let mut offsets = Vec::with_capacity(n);
                    let mut total = 0usize;
                    for (_, hashes) in &parts {
                        offsets.push(total);
                        total += hashes.len();
                    }
                    let shard_ids: Vec<u64> = (0..eng.threads().max(1) as u64).collect();
                    let nshards = shard_ids.len() as u64;
                    let survivors = eng.parallel_map(&shard_ids, |&shard| {
                        let mut seen: FxSet<&[Val]> = FxSet::default();
                        let mut keep: Vec<usize> = Vec::new();
                        for (p, (rows, hashes)) in parts.iter().enumerate() {
                            for (i, &h) in hashes.iter().enumerate() {
                                if h % nshards != shard {
                                    continue;
                                }
                                if seen.insert(&rows[i * k..(i + 1) * k]) {
                                    keep.push(offsets[p] + i);
                                }
                            }
                        }
                        keep
                    });
                    let mut keep_flags = vec![false; total];
                    for list in &survivors {
                        for &g in list {
                            keep_flags[g] = true;
                        }
                    }
                    let mut out = VStream::empty(k);
                    let mut g = 0usize;
                    for (rows, hashes) in &parts {
                        for i in 0..hashes.len() {
                            if keep_flags[g] {
                                out.push(&rows[i * k..(i + 1) * k]);
                            }
                            g += 1;
                        }
                    }
                    ("project(dedup)".to_string(), out, n)
                }
                None => {
                    let mut seen: FxSet<Vec<Val>> = fx::set_with_capacity(s.rows);
                    let mut out = VStream::empty(idx.len());
                    for row in s.rows() {
                        let narrow: Vec<Val> = idx.iter().map(|&i| row[i]).collect();
                        if seen.insert(narrow.clone()) {
                            out.push(&narrow);
                        }
                    }
                    ("project(dedup)".to_string(), out, 1)
                }
            }
        }
        PNode::HashJoin {
            left,
            right,
            lkey,
            rkey,
            rextra,
        } => {
            let l = run(left, cx);
            let r = run(right, cx);
            let label = format!("hash-join (left {} × right {})", l.rows, r.rows);
            let (out, morsels) = hash_join(&l, &r, lkey, rkey, rextra, cx);
            (label, out, morsels)
        }
        PNode::Union { left, right, rperm } => {
            let l = run(left, cx);
            let r = run(right, cx);
            let (out, morsels) = match cx.fanout(r.arity, r.rows).filter(|_| !rperm.is_empty()) {
                Some(eng) => {
                    // Both inputs are duplicate-free and `rperm` is a
                    // permutation, so the only possible collisions are
                    // right-vs-left: emit the left verbatim and filter
                    // right morsels against a left-row set in parallel.
                    let rarity = r.arity;
                    let lset: FxSet<&[Val]> = l.rows().collect();
                    let morsels = r.morsels(cx.morsel_rows);
                    let n = morsels.len();
                    let parts = eng.parallel_map(&morsels, |m| {
                        let mut kept = Vec::new();
                        for row in m.chunks_exact(rarity) {
                            let aligned: Vec<Val> = rperm.iter().map(|&i| row[i]).collect();
                            if !lset.contains(aligned.as_slice()) {
                                kept.extend(aligned);
                            }
                        }
                        kept
                    });
                    drop(lset);
                    let mut data = l.data.into_owned();
                    let mut rows = l.rows;
                    for part in parts {
                        rows += part.len() / rperm.len();
                        data.extend(part);
                    }
                    (VStream::owned(rperm.len(), rows, data), n)
                }
                None => {
                    let mut seen: FxSet<Vec<Val>> = fx::set_with_capacity(l.rows + r.rows);
                    let mut out = VStream::empty(rperm.len());
                    for row in l.rows() {
                        if seen.insert(row.to_vec()) {
                            out.push(row);
                        }
                    }
                    for row in r.rows() {
                        let aligned: Vec<Val> = rperm.iter().map(|&i| row[i]).collect();
                        if seen.insert(aligned.clone()) {
                            out.push(&aligned);
                        }
                    }
                    (out, 1)
                }
            };
            ("union(dedup)".to_string(), out, morsels)
        }
        PNode::Diff { left, right, rperm } => {
            let l = run(left, cx);
            let r = run(right, cx);
            let remove: FxSet<Vec<Val>> = r
                .rows()
                .map(|row| rperm.iter().map(|&i| row[i]).collect())
                .collect();
            let (out, morsels) = match cx.fanout(l.arity, l.rows) {
                Some(eng) => {
                    let arity = l.arity;
                    par_morsel_map(eng, &l, cx.morsel_rows, arity, |m| {
                        let mut kept = Vec::new();
                        for row in m.chunks_exact(arity) {
                            if !remove.contains(row) {
                                kept.extend_from_slice(row);
                            }
                        }
                        kept
                    })
                }
                None => {
                    let mut out = VStream::empty(l.arity);
                    for row in l.rows() {
                        if !remove.contains(row) {
                            out.push(row);
                        }
                    }
                    (out, 1)
                }
            };
            ("diff".to_string(), out, morsels)
        }
        PNode::Extend { input, src } => {
            let s = run(input, cx);
            let (out, morsels) = match cx.fanout(s.arity, s.rows) {
                Some(eng) => {
                    let arity = s.arity;
                    let src = *src;
                    par_morsel_map(eng, &s, cx.morsel_rows, arity + 1, |m| {
                        let mut data = Vec::with_capacity(m.len() / arity * (arity + 1));
                        for row in m.chunks_exact(arity) {
                            data.extend_from_slice(row);
                            data.push(row[src]);
                        }
                        data
                    })
                }
                None => {
                    let mut data = Vec::with_capacity(s.rows * (s.arity + 1));
                    for row in s.rows() {
                        data.extend_from_slice(row);
                        data.push(row[*src]);
                    }
                    (VStream::owned(s.arity + 1, s.rows, data), 1)
                }
            };
            ("extend".to_string(), out, morsels)
        }
    };
    cx.stats.push(OpStat {
        op: label,
        rows: out.rows,
        morsels,
    });
    out
}

/// Build/probe hash join on word keys. The build side is the smaller
/// input; the output layout is always `left ++ right[rextra]` regardless
/// of which side was built, matching the logical Join's attribute list.
/// One-column keys hash a single `u64`; wider keys hash a small word
/// vector. An empty key is the cross-product case.
///
/// When `cx` carries an engine and the probe side spans ≥ 2 morsels, the
/// join runs parallel on both sides (see [`par_keyed_join`]); output is
/// bit-identical to the sequential path. Returns the stream and the
/// number of probe morsels (1 for the sequential path).
fn hash_join<'a>(
    l: &VStream<'_>,
    r: &VStream<'_>,
    lkey: &[usize],
    rkey: &[usize],
    rextra: &[usize],
    cx: &ExecContext<'_>,
) -> (VStream<'a>, usize) {
    let out_arity = l.arity + rextra.len();
    if lkey.is_empty() {
        // Cross product: fan out over left morsels, each crossed with
        // the whole right side — concatenation in morsel order equals
        // the sequential nested loop.
        if let Some(eng) = cx
            .fanout(l.arity, l.rows)
            .filter(|_| out_arity > 0 && r.rows > 0)
        {
            let larity = l.arity;
            return par_morsel_map(eng, l, cx.morsel_rows, out_arity, |m| {
                let mut part = Vec::with_capacity(m.len() / larity * r.rows * out_arity);
                for lrow in m.chunks_exact(larity) {
                    for rrow in r.rows() {
                        part.extend_from_slice(lrow);
                        part.extend(rextra.iter().map(|&j| rrow[j]));
                    }
                }
                part
            });
        }
    } else {
        // Keyed join: the build side is the smaller input, exactly as
        // in the sequential arms below, so per-key row lists and emit
        // order match bit for bit.
        let build_left = l.rows <= r.rows;
        let probe = if build_left { r } else { l };
        if let Some(eng) = cx.fanout(probe.arity, probe.rows).filter(|_| out_arity > 0) {
            let shards = eng
                .threads()
                .min(if build_left { l.rows } else { r.rows })
                .max(1);
            return if lkey.len() == 1 {
                let (lk, rk) = (lkey[0], rkey[0]);
                if build_left {
                    par_keyed_join(
                        eng,
                        l,
                        r,
                        cx.morsel_rows,
                        out_arity,
                        shards,
                        |brow| brow[lk],
                        |prow| prow[rk],
                        |part, i, rrow| {
                            part.extend_from_slice(l.row(i as usize));
                            part.extend(rextra.iter().map(|&j| rrow[j]));
                        },
                    )
                } else {
                    par_keyed_join(
                        eng,
                        r,
                        l,
                        cx.morsel_rows,
                        out_arity,
                        shards,
                        |brow| brow[rk],
                        |prow| prow[lk],
                        |part, j, lrow| {
                            part.extend_from_slice(lrow);
                            part.extend(rextra.iter().map(|&j2| r.row(j as usize)[j2]));
                        },
                    )
                }
            } else {
                let key_of = |row: &[Val], key: &[usize]| -> Vec<Val> {
                    key.iter().map(|&i| row[i]).collect()
                };
                if build_left {
                    par_keyed_join(
                        eng,
                        l,
                        r,
                        cx.morsel_rows,
                        out_arity,
                        shards,
                        |brow| key_of(brow, lkey),
                        |prow| key_of(prow, rkey),
                        |part, i, rrow| {
                            part.extend_from_slice(l.row(i as usize));
                            part.extend(rextra.iter().map(|&j| rrow[j]));
                        },
                    )
                } else {
                    par_keyed_join(
                        eng,
                        r,
                        l,
                        cx.morsel_rows,
                        out_arity,
                        shards,
                        |brow| key_of(brow, rkey),
                        |prow| key_of(prow, lkey),
                        |part, j, lrow| {
                            part.extend_from_slice(lrow);
                            part.extend(rextra.iter().map(|&j2| r.row(j as usize)[j2]));
                        },
                    )
                }
            };
        }
    }
    (hash_join_seq(l, r, lkey, rkey, rextra), 1)
}

/// Parallel keyed hash join: **partitioned build** (each worker owns one
/// shard of the Fx-hashed key space and scans the whole build input in
/// order, keeping the rows whose key hashes into its shard — one key
/// lives in exactly one shard, so its row list equals the sequential
/// table's) plus **morsel-parallel probe** (each probe morsel consults
/// the one shard its key hashes to and emits matches in build order;
/// stitching in morsel order reproduces the sequential probe scan).
#[allow(clippy::too_many_arguments)]
fn par_keyed_join<'a, K, BK, PK, EM>(
    eng: &Engine,
    build: &VStream<'_>,
    probe: &VStream<'_>,
    morsel_rows: usize,
    out_arity: usize,
    shards: usize,
    bkey: BK,
    pkey: PK,
    emit: EM,
) -> (VStream<'a>, usize)
where
    K: Hash + Eq + Send + Sync,
    BK: Fn(&[Val]) -> K + Sync,
    PK: Fn(&[Val]) -> K + Sync,
    EM: Fn(&mut Vec<Val>, u32, &[Val]) + Sync,
{
    let fxh = BuildHasherDefault::<FxHasher>::default();
    let shard_ids: Vec<usize> = (0..shards).collect();
    let barity = build.arity.max(1);
    let tables: Vec<FxMap<K, Vec<u32>>> = eng.parallel_map(&shard_ids, |&w| {
        let mut t: FxMap<K, Vec<u32>> = fx::map_with_capacity(build.rows / shards + 1);
        for (i, brow) in build.data.chunks_exact(barity).enumerate() {
            let k = bkey(brow);
            if fxh.hash_one(&k) as usize % shards == w {
                t.entry(k).or_default().push(i as u32);
            }
        }
        t
    });
    let morsels = probe.morsels(morsel_rows);
    let n = morsels.len();
    let parity = probe.arity;
    let parts = eng.parallel_map(&morsels, |m| {
        let mut part = Vec::new();
        for prow in m.chunks_exact(parity) {
            let k = pkey(prow);
            if let Some(matches) = tables[fxh.hash_one(&k) as usize % shards].get(&k) {
                for &i in matches {
                    emit(&mut part, i, prow);
                }
            }
        }
        part
    });
    (stitch(parts, out_arity), n)
}

/// The sequential build/probe arms of [`hash_join`].
fn hash_join_seq<'a>(
    l: &VStream<'_>,
    r: &VStream<'_>,
    lkey: &[usize],
    rkey: &[usize],
    rextra: &[usize],
) -> VStream<'a> {
    let mut out = VStream::empty(l.arity + rextra.len());
    let emit = |out: &mut VStream<'_>, lrow: &[Val], rrow: &[Val]| {
        let data = out.data.to_mut();
        data.extend_from_slice(lrow);
        data.extend(rextra.iter().map(|&j| rrow[j]));
        out.rows += 1;
    };
    if lkey.is_empty() {
        out.data.to_mut().reserve(l.rows * r.rows * out.arity);
        for lrow in l.rows() {
            for rrow in r.rows() {
                emit(&mut out, lrow, rrow);
            }
        }
        return out;
    }
    if lkey.len() == 1 {
        // Single-word key: hash bare u64s, no per-probe allocation.
        let (lk, rk) = (lkey[0], rkey[0]);
        if l.rows <= r.rows {
            let mut table: FxMap<Val, Vec<u32>> = fx::map_with_capacity(l.rows);
            for (i, lrow) in l.rows().enumerate() {
                table.entry(lrow[lk]).or_default().push(i as u32);
            }
            for rrow in r.rows() {
                if let Some(matches) = table.get(&rrow[rk]) {
                    for &i in matches {
                        emit(&mut out, l.row(i as usize), rrow);
                    }
                }
            }
        } else {
            let mut table: FxMap<Val, Vec<u32>> = fx::map_with_capacity(r.rows);
            for (j, rrow) in r.rows().enumerate() {
                table.entry(rrow[rk]).or_default().push(j as u32);
            }
            for lrow in l.rows() {
                if let Some(matches) = table.get(&lrow[lk]) {
                    for &j in matches {
                        emit(&mut out, lrow, r.row(j as usize));
                    }
                }
            }
        }
        return out;
    }
    let key_of = |row: &[Val], key: &[usize]| -> Vec<Val> { key.iter().map(|&i| row[i]).collect() };
    if l.rows <= r.rows {
        let mut table: FxMap<Vec<Val>, Vec<u32>> = fx::map_with_capacity(l.rows);
        for (i, lrow) in l.rows().enumerate() {
            table.entry(key_of(lrow, lkey)).or_default().push(i as u32);
        }
        for rrow in r.rows() {
            if let Some(matches) = table.get(&key_of(rrow, rkey)) {
                for &i in matches {
                    emit(&mut out, l.row(i as usize), rrow);
                }
            }
        }
    } else {
        let mut table: FxMap<Vec<Val>, Vec<u32>> = fx::map_with_capacity(r.rows);
        for (j, rrow) in r.rows().enumerate() {
            table.entry(key_of(rrow, rkey)).or_default().push(j as u32);
        }
        for lrow in l.rows() {
            if let Some(matches) = table.get(&key_of(lrow, lkey)) {
                for &j in matches {
                    emit(&mut out, lrow, r.row(j as usize));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::compile;
    use crate::optimize::optimize;
    use crate::schema::Schema;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2).with_relation("S", 1);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
            .with_tuple("S", vec![Value::Nat(2)])
    }

    fn check(query: &str) {
        let state = fathers();
        let f = parse_formula(query).unwrap();
        let expr = compile(state.schema(), &f).expect("compiles");
        let naive = expr.eval(&state);
        // Unoptimized physical execution.
        let phys = PhysicalPlan::compile(&expr).execute(&state);
        assert_eq!(naive, phys, "physical ≠ naive on {query}");
        // Optimized physical execution.
        let opt = optimize(&expr, &state);
        let phys_opt = PhysicalPlan::compile(&opt.expr).execute(&state);
        assert_eq!(naive, phys_opt, "optimized physical ≠ naive on {query}");
    }

    #[test]
    fn physical_matches_naive_backend() {
        for q in [
            "F(x, y)",
            "exists y z. y != z & F(x, y) & F(x, z)",
            "exists y. F(x, y) & F(y, z)",
            "F(x, y) & S(y)",
            "F(1, y)",
            "F(x, x)",
            "F(x, y) | (x = 9 & y = 9)",
            "F(x, y) & !F(y, x)",
            "(exists y. F(x, y)) & !(exists g. exists f. F(g, f) & F(f, x))",
            "F(x, y) & x != y",
            "F(x, y) & y != 2",
            "x = 2 & (exists z. F(y, z) & x != 0)",
            "(exists y. F(x, y)) & forall y. F(x, y) -> y = 2 | y = 3",
            "exists x y. F(x, y)",
        ] {
            check(q);
        }
    }

    #[test]
    fn constants_outside_the_state_dictionary_are_handled() {
        // "zz" is nowhere in the state: equality selections must keep
        // nothing, inequality selections everything, and singleton
        // values must flow through unions and filters via overlay words.
        for q in [
            "F(x, y) & y != \"zz\"",
            "F(x, y) | (x = \"zz\" & y = \"zz\")",
            "(F(x, y) | (x = \"zz\" & y = \"zz\")) & x != \"zz\"",
            "(F(x, y) | (x = \"zz\" & y = \"zz\")) & x = \"zz\"",
        ] {
            check(q);
        }
    }

    #[test]
    fn cross_join_is_the_empty_key_case() {
        let e = AlgebraExpr::Join(
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["x".into(), "y".into()],
            }),
            Box::new(AlgebraExpr::Base {
                name: "S".into(),
                attrs: vec!["s".into()],
            }),
        );
        let state = fathers();
        assert_eq!(e.eval(&state), PhysicalPlan::compile(&e).execute(&state));
    }

    #[test]
    fn stats_report_operator_cardinalities() {
        let state = fathers();
        let f = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let expr = compile(state.schema(), &f).unwrap();
        let report = PhysicalPlan::compile(&expr).execute_with_stats(&state);
        assert!(report
            .operators
            .iter()
            .any(|s| s.op.starts_with("scan F") && s.rows == 3));
        assert!(report
            .operators
            .iter()
            .any(|s| s.op.starts_with("hash-join")));
    }

    /// A state wide enough to span many morsels at small morsel sizes:
    /// a two-column chain relation plus a unary filter relation.
    fn chain(n: u64) -> State {
        let schema = Schema::new().with_relation("F", 2).with_relation("S", 1);
        let mut b = crate::state::StateBuilder::new(schema);
        for i in 0..n {
            b.row("F", vec![Value::Nat(i), Value::Nat(i + 1)]);
            b.row(
                "F",
                vec![Value::Nat(i), Value::Str(format!("tag{}", i % 7))],
            );
            if i % 2 == 0 {
                b.row("S", vec![Value::Nat(i)]);
            }
        }
        b.finish()
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        use fq_engine::{Engine, EngineConfig};
        let state = chain(200);
        for q in [
            "F(x, y)",                                // scan
            "exists y. F(x, y) & F(y, z)",            // join + project
            "F(x, y) & S(y)",                         // key join
            "F(x, y) & x != y",                       // filter
            "F(x, y) | (x = 9 & y = 9)",              // union
            "F(x, y) & !F(y, x)",                     // diff
            "F(x, x)",                                // self filter
            "exists y z. y != z & F(x, y) & F(x, z)", // extend-heavy
            "exists x y. F(x, y)",                    // zero-arity root
        ] {
            let f = parse_formula(q).unwrap();
            let expr = compile(state.schema(), &f).expect("compiles");
            let plan = PhysicalPlan::compile(&optimize(&expr, &state).expr);
            let sequential = plan.execute_with_stats(&state);
            for threads in [1, 2, 4, 8] {
                let engine = Engine::new(EngineConfig {
                    threads,
                    ..EngineConfig::default()
                });
                // Morsel sizes straddling the edge cases: every row its
                // own morsel, a non-divisor, an exact divisor of 400,
                // one morsel total, and rows < morsel size.
                for morsel_rows in [1, 3, 50, 400, 100_000] {
                    let report =
                        plan.execute_with_stats_on(&state, &engine, ExecOpts { morsel_rows });
                    assert_eq!(
                        report.relation, sequential.relation,
                        "parallel ≠ sequential on {q} at {threads} threads, morsel {morsel_rows}"
                    );
                    // Row counts per operator are schedule-independent.
                    let rows: Vec<usize> = report.operators.iter().map(|s| s.rows).collect();
                    let seq_rows: Vec<usize> =
                        sequential.operators.iter().map(|s| s.rows).collect();
                    assert_eq!(rows, seq_rows, "cardinalities drift on {q}");
                }
            }
        }
    }

    #[test]
    fn parallel_schedules_actually_fan_out() {
        use fq_engine::{Engine, EngineConfig};
        let state = chain(100);
        let f = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let expr = compile(state.schema(), &f).unwrap();
        let plan = PhysicalPlan::compile(&optimize(&expr, &state).expr);
        let engine = Engine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let report = plan.execute_with_stats_on(&state, &engine, ExecOpts { morsel_rows: 16 });
        assert!(
            report.operators.iter().any(|s| s.morsels >= 2),
            "no operator fanned out: {:?}",
            report.operators
        );
        // The sequential path reports exactly one morsel everywhere.
        let seq = plan.execute_with_stats(&state);
        assert!(seq.operators.iter().all(|s| s.morsels == 1));
    }

    #[test]
    fn empty_relations_survive_any_morsel_schedule() {
        use fq_engine::{Engine, EngineConfig};
        let schema = Schema::new().with_relation("F", 2).with_relation("S", 1);
        let state = State::new(schema);
        let engine = Engine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        for q in ["F(x, y)", "F(x, y) & S(y)", "F(x, y) & !F(y, x)"] {
            let f = parse_formula(q).unwrap();
            let expr = compile(state.schema(), &f).unwrap();
            let plan = PhysicalPlan::compile(&expr);
            let out = plan.execute_with_stats_on(&state, &engine, ExecOpts { morsel_rows: 1 });
            assert_eq!(out.relation, plan.execute(&state), "empty state on {q}");
        }
    }

    #[test]
    fn base_scans_are_memoized_per_execution() {
        // F appears twice; the scan stream must be identical both times
        // (and the memo map is exercised via the cloned path).
        let e = AlgebraExpr::Join(
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["x".into(), "y".into()],
            }),
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["y".into(), "z".into()],
            }),
        );
        let state = fathers();
        let report = PhysicalPlan::compile(&e).execute_with_stats(&state);
        let scans: Vec<&OpStat> = report
            .operators
            .iter()
            .filter(|s| s.op == "scan F")
            .collect();
        assert_eq!(scans.len(), 2);
        assert!(scans.iter().all(|s| s.rows == 3));
        assert_eq!(e.eval(&state), PhysicalPlan::compile(&e).execute(&state));
    }
}
