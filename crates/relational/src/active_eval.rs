//! Active-domain evaluation of queries.
//!
//! Quantifiers range over the query's active domain (state values plus
//! query constants). For *domain-independent* queries this computes the
//! answer; for others it computes the active-domain-relativized answer
//! used by the effective syntaxes of Section 2.

use crate::state::{State, Tuple, Value};
use crate::val::{SharedOverlay, Val};
use fq_engine::Engine;
use fq_logic::eval::{
    compile_slots, solutions, solutions_slots, solutions_slots_fixed, Interpretation,
};
use fq_logic::{Formula, LogicError};

/// Interpretation of domain functions and predicates over [`Value`]s.
/// Database relations are handled separately by the evaluator.
pub trait DomainOps {
    /// Interpret a domain function.
    fn func(&self, name: &str, args: &[Value]) -> Result<Value, LogicError> {
        Err(LogicError::eval(format!(
            "unknown domain function `{name}`/{}",
            args.len()
        )))
    }

    /// Interpret a domain predicate.
    fn pred(&self, name: &str, args: &[Value]) -> Result<bool, LogicError> {
        Err(LogicError::eval(format!(
            "unknown domain predicate `{name}`/{}",
            args.len()
        )))
    }
}

/// The equality-only domain: no functions, no predicates.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOps;

impl DomainOps for NoOps {}

/// Numeric domains: comparisons and linear arithmetic over `Value::Nat`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NatOps;

impl DomainOps for NatOps {
    fn func(&self, name: &str, args: &[Value]) -> Result<Value, LogicError> {
        let nums: Option<Vec<u64>> = args
            .iter()
            .map(|v| match v {
                Value::Nat(n) => Some(*n),
                Value::Str(_) => None,
            })
            .collect();
        let nums = nums.ok_or_else(|| LogicError::eval("numeric function on a string"))?;
        match (name, nums.as_slice()) {
            ("succ", [a]) => Ok(Value::Nat(a + 1)),
            ("+", [a, b]) => Ok(Value::Nat(a + b)),
            ("-", [a, b]) => Ok(Value::Nat(a.saturating_sub(*b))),
            ("*", [a, b]) => Ok(Value::Nat(a * b)),
            _ => Err(LogicError::eval(format!("unknown function `{name}`"))),
        }
    }

    fn pred(&self, name: &str, args: &[Value]) -> Result<bool, LogicError> {
        match (name, args) {
            ("<", [Value::Nat(a), Value::Nat(b)]) => Ok(a < b),
            ("<=", [Value::Nat(a), Value::Nat(b)]) => Ok(a <= b),
            (">", [Value::Nat(a), Value::Nat(b)]) => Ok(a > b),
            (">=", [Value::Nat(a), Value::Nat(b)]) => Ok(a >= b),
            _ => Err(LogicError::eval(format!("unknown predicate `{name}`"))),
        }
    }
}

/// The trace domain **T**: `P`, the sort predicates, `B`, `D`, `E`, and
/// the functions `w`/`m`, over `Value::Str`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceOps;

fn as_str(v: &Value) -> Result<&str, LogicError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Nat(_) => Err(LogicError::eval("trace-domain operation on a number")),
    }
}

impl DomainOps for TraceOps {
    fn func(&self, name: &str, args: &[Value]) -> Result<Value, LogicError> {
        match (name, args) {
            ("w", [v]) => {
                let s = as_str(v)?;
                Ok(Value::Str(
                    fq_turing::trace::validate_trace(s)
                        .map(|i| i.word)
                        .unwrap_or_default(),
                ))
            }
            ("m", [v]) => {
                let s = as_str(v)?;
                Ok(Value::Str(
                    fq_turing::trace::validate_trace(s)
                        .map(|i| i.machine_str)
                        .unwrap_or_default(),
                ))
            }
            _ => Err(LogicError::eval(format!("unknown function `{name}`"))),
        }
    }

    fn pred(&self, name: &str, args: &[Value]) -> Result<bool, LogicError> {
        use fq_turing::sym::{classify, Sort};
        match (name, args) {
            ("P", [m, w, p]) => Ok(fq_turing::trace::p_predicate(
                as_str(m)?,
                as_str(w)?,
                as_str(p)?,
            )),
            ("M", [v]) => Ok(classify(as_str(v)?) == Sort::Machine),
            ("W", [v]) => Ok(classify(as_str(v)?) == Sort::Word),
            ("T", [v]) => Ok(classify(as_str(v)?) == Sort::Trace),
            ("O", [v]) => Ok(classify(as_str(v)?) == Sort::Other),
            ("B", [w, s]) => {
                let w = as_str(w)?;
                let s = as_str(s)?;
                if classify(s) != Sort::Word {
                    return Ok(false);
                }
                let sb = s.as_bytes();
                Ok(w.bytes()
                    .enumerate()
                    .all(|(k, wc)| sb.get(k).copied().unwrap_or(b'&') == wc))
            }
            ("D", [Value::Nat(i), m, u]) => {
                let m = as_str(m)?;
                let u = as_str(u)?;
                if classify(u) != Sort::Word {
                    return Ok(false);
                }
                Ok(fq_turing::decode_machine(m)
                    .is_some_and(|mm| fq_turing::trace::has_at_least_traces(&mm, u, *i as usize)))
            }
            ("E", [Value::Nat(i), m, u]) => {
                let m = as_str(m)?;
                let u = as_str(u)?;
                if classify(u) != Sort::Word {
                    return Ok(false);
                }
                Ok(fq_turing::decode_machine(m)
                    .is_some_and(|mm| fq_turing::trace::has_exactly_traces(&mm, u, *i as usize)))
            }
            _ => Err(LogicError::eval(format!("unknown predicate `{name}`"))),
        }
    }
}

/// The combined interpretation: scheme relations from the state, scheme
/// constants from the state, everything else from the domain ops.
pub struct QueryInterp<'a, D: DomainOps> {
    state: &'a State,
    ops: &'a D,
}

impl<'a, D: DomainOps> QueryInterp<'a, D> {
    pub fn new(state: &'a State, ops: &'a D) -> Self {
        QueryInterp { state, ops }
    }
}

impl<D: DomainOps> Interpretation for QueryInterp<'_, D> {
    type Elem = Value;

    fn nat(&self, n: u64) -> Result<Value, LogicError> {
        Ok(Value::Nat(n))
    }

    fn str_lit(&self, s: &str) -> Result<Value, LogicError> {
        Ok(Value::Str(s.to_string()))
    }

    fn named_const(&self, name: &str) -> Result<Value, LogicError> {
        self.state
            .constant(name)
            .cloned()
            .ok_or_else(|| LogicError::eval(format!("scheme constant `{name}` has no value")))
    }

    fn func(&self, name: &str, args: &[Value]) -> Result<Value, LogicError> {
        self.ops.func(name, args)
    }

    fn pred(&self, name: &str, args: &[Value]) -> Result<bool, LogicError> {
        if self.state.schema().arity(name).is_some() {
            return Ok(self.state.contains(name, args));
        }
        self.ops.pred(name, args)
    }
}

/// Evaluate a query under active-domain semantics: the answer relation
/// over the free variables in the given order.
pub fn eval_query<D: DomainOps>(
    state: &State,
    ops: &D,
    query: &Formula,
    free_vars: &[String],
) -> Result<Vec<Tuple>, LogicError> {
    let universe: Vec<Value> = state.query_active_domain(query).into_iter().collect();
    let interp = QueryInterp::new(state, ops);
    solutions(&interp, &universe, free_vars, query)
}

/// The word-level interpretation used by the slot evaluator: frames bind
/// one-word [`Val`]s instead of heap [`Value`]s, scheme-relation
/// membership is a binary search over the state's columnar store, and
/// query values absent from the state dictionary (literals, function
/// results) are interned into a [`SharedOverlay`], so word equality
/// remains semantic equality across the whole evaluation.
struct ValInterp<'a, D: DomainOps> {
    state: &'a State,
    ops: &'a D,
    overlay: SharedOverlay<'a>,
}

impl<D: DomainOps> Interpretation for ValInterp<'_, D> {
    type Elem = Val;

    fn nat(&self, n: u64) -> Result<Val, LogicError> {
        Ok(match Val::inline_nat(n) {
            Some(v) => v,
            None => self.overlay.encode(&Value::Nat(n)),
        })
    }

    fn str_lit(&self, s: &str) -> Result<Val, LogicError> {
        Ok(self.overlay.encode(&Value::Str(s.to_string())))
    }

    fn named_const(&self, name: &str) -> Result<Val, LogicError> {
        let v = self
            .state
            .constant(name)
            .ok_or_else(|| LogicError::eval(format!("scheme constant `{name}` has no value")))?;
        Ok(self.overlay.encode(v))
    }

    fn func(&self, name: &str, args: &[Val]) -> Result<Val, LogicError> {
        let decoded: Vec<Value> = args.iter().map(|&v| self.overlay.decode(v)).collect();
        let out = self.ops.func(name, &decoded)?;
        Ok(self.overlay.encode(&out))
    }

    fn pred(&self, name: &str, args: &[Val]) -> Result<bool, LogicError> {
        if self.state.schema().arity(name).is_some() {
            // Overlay words (ids past the base dictionary) are values no
            // stored tuple contains; `contains_vals` rejects them.
            return Ok(self.state.contains_vals(name, args));
        }
        let decoded: Vec<Value> = args.iter().map(|&v| self.overlay.decode(v)).collect();
        self.ops.pred(name, &decoded)
    }
}

/// Slot-compiled, engine-parallel [`eval_query`]: the formula is
/// compiled once (variable names → frame slots), frames bind compact
/// [`Val`] words, and the outermost free variable is fanned out across
/// the engine's workers. The universe is the active domain encoded in
/// its semantic (`BTreeSet`) order and `parallel_map` returns chunks in
/// universe order, so the decoded rows are bit-identical to the
/// sequential string-env enumeration over [`Value`]s.
pub fn eval_query_with<D: DomainOps + Sync>(
    state: &State,
    ops: &D,
    query: &Formula,
    free_vars: &[String],
    engine: &Engine,
) -> Result<Vec<Tuple>, LogicError> {
    let interp = ValInterp {
        state,
        ops,
        overlay: SharedOverlay::new(state.dict()),
    };
    let universe: Vec<Val> = state
        .query_active_domain(query)
        .iter()
        .map(|v| interp.overlay.encode(v))
        .collect();
    let compiled = compile_slots(query, free_vars);
    let rows: Vec<Vec<Val>> = if free_vars.is_empty() || universe.len() < 2 || engine.threads() < 2
    {
        solutions_slots(&interp, &universe, &compiled)?
    } else {
        let chunks: Vec<Result<Vec<Vec<Val>>, LogicError>> = engine.parallel_map(&universe, |e| {
            solutions_slots_fixed(&interp, &universe, &compiled, std::slice::from_ref(e))
        });
        let mut out = Vec::new();
        for chunk in chunks {
            out.extend(chunk?);
        }
        out
    };
    Ok(rows
        .into_iter()
        .map(|row| row.iter().map(|&v| interp.overlay.decode(v)).collect())
        .collect())
}

/// Evaluate a query over an explicitly supplied universe (used by the
/// fresh-element relative-safety test, which extends the active domain
/// with one extra element).
pub fn solutions_over<D: DomainOps>(
    state: &State,
    ops: &D,
    query: &Formula,
    free_vars: &[String],
    universe: &[Value],
) -> Result<Vec<Tuple>, LogicError> {
    let interp = QueryInterp::new(state, ops);
    solutions(&interp, universe, free_vars, query)
}

/// Evaluate a boolean (sentence) query under active-domain semantics.
pub fn eval_boolean<D: DomainOps>(
    state: &State,
    ops: &D,
    query: &Formula,
) -> Result<bool, LogicError> {
    let universe: Vec<Value> = state.query_active_domain(query).into_iter().collect();
    let interp = QueryInterp::new(state, ops);
    fq_logic::eval::eval_sentence(&interp, &universe, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        // 1 has two sons (2, 3); 2 has one son (4).
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
    }

    #[test]
    fn papers_query_m_two_sons() {
        // M(x): x has more than one son.
        let q = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
        let ans = eval_query(&fathers(), &NoOps, &q, &["x".to_string()]).unwrap();
        assert_eq!(ans, vec![vec![Value::Nat(1)]]);
    }

    #[test]
    fn papers_query_g_grandfathers() {
        // G(x, z): grandfather/grandson.
        let q = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let ans = eval_query(&fathers(), &NoOps, &q, &["x".to_string(), "z".to_string()]).unwrap();
        assert_eq!(ans, vec![vec![Value::Nat(1), Value::Nat(4)]]);
    }

    #[test]
    fn boolean_queries() {
        let yes = parse_formula("exists x y. F(x, y)").unwrap();
        assert!(eval_boolean(&fathers(), &NoOps, &yes).unwrap());
        let no = parse_formula("exists x. F(x, x)").unwrap();
        assert!(!eval_boolean(&fathers(), &NoOps, &no).unwrap());
    }

    #[test]
    fn numeric_ops_in_queries() {
        let q = parse_formula("exists y. F(x, y) & x < y").unwrap();
        let ans = eval_query(&fathers(), &NatOps, &q, &["x".to_string()]).unwrap();
        assert_eq!(ans, vec![vec![Value::Nat(1)], vec![Value::Nat(2)]]);
    }

    #[test]
    fn scheme_constants_resolve() {
        let schema = Schema::new().with_relation("R", 1).with_constant("c");
        let state = State::new(schema)
            .with_tuple("R", vec![Value::Nat(5)])
            .with_constant("c", 5u64);
        let raw = parse_formula("R(c)").unwrap();
        let q = fq_logic::bind_constants(&raw, &["c".to_string()].into());
        assert!(eval_boolean(&state, &NoOps, &q).unwrap());
    }

    #[test]
    fn trace_ops_p_predicate() {
        let m = fq_turing::builders::scan_right_halt_on_blank();
        let enc = fq_turing::encode_machine(&m);
        let tr = fq_turing::trace::trace_string(&m, "11", 2).unwrap();
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema).with_tuple("R", vec![Value::Str(tr.clone())]);
        let q = parse_formula(&format!("exists p. R(p) & P(\"{enc}\", \"11\", p)")).unwrap();
        assert!(eval_boolean(&state, &TraceOps, &q).unwrap());
        let q2 = parse_formula(&format!("exists p. R(p) & P(\"{enc}\", \"1\", p)")).unwrap();
        assert!(!eval_boolean(&state, &TraceOps, &q2).unwrap());
    }

    #[test]
    fn trace_ops_sorts_and_functions() {
        let m = fq_turing::builders::looper();
        let tr = fq_turing::trace::trace_string(&m, "1&", 2).unwrap();
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema).with_tuple("R", vec![Value::Str(tr)]);
        let q = parse_formula("exists p. R(p) & T(p) & w(p) = \"1&\"").unwrap();
        assert!(eval_boolean(&state, &TraceOps, &q).unwrap());
    }

    #[test]
    fn unknown_symbols_error() {
        let q = parse_formula("exists x. Weird(x)").unwrap();
        assert!(eval_boolean(&fathers(), &NoOps, &q).is_err());
    }

    #[test]
    fn eval_query_with_matches_string_env_evaluator() {
        for threads in [1, 4] {
            let engine = Engine::new(fq_engine::EngineConfig {
                threads,
                ..Default::default()
            });
            for (src, vars) in [
                ("exists y z. y != z & F(x, y) & F(x, z)", vec!["x"]),
                ("exists y. F(x, y) & F(y, z)", vec!["x", "z"]),
                ("F(x, y) | F(y, x)", vec!["x", "y"]),
            ] {
                let q = parse_formula(src).unwrap();
                let vars: Vec<String> = vars.into_iter().map(String::from).collect();
                let naive = eval_query(&fathers(), &NoOps, &q, &vars).unwrap();
                let fast = eval_query_with(&fathers(), &NoOps, &q, &vars, &engine).unwrap();
                assert_eq!(naive, fast, "{src} ({threads} threads)");
            }
        }
    }

    #[test]
    fn empty_state_empty_answers() {
        let schema = Schema::new().with_relation("F", 2);
        let state = State::new(schema);
        let q = parse_formula("F(x, y)").unwrap();
        let ans = eval_query(&state, &NoOps, &q, &["x".to_string(), "y".to_string()]).unwrap();
        assert!(ans.is_empty());
    }
}
