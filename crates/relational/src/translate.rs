//! The Section 1.1 reduction: a query in a fixed state becomes a pure
//! domain formula.
//!
//! "Since we have constants, and the state is a finite collection of
//! finite relations, the formula F(x) can be translated into a pure
//! domain formula F′(x) (this technique was used in [AGSS86, GSSS86]).
//! For example, if a binary database relation R consists of the pairs
//! (a₁,b₁), …, (a_r,b_r), we can replace each occurrence of R(x, y) with
//! ((x=a₁ ∧ y=b₁) ∨ … ∨ (x=a_r ∧ y=b_r))."
//!
//! Scheme constants are replaced by their state values at the same time.

use crate::state::State;
use fq_logic::{Formula, Term};

/// Translate a query into an equivalent pure-domain formula with respect
/// to the given state. Relation atoms become disjunctions of equality
/// conjunctions; scheme constants become value literals. Domain predicates
/// (anything not in the scheme) are left untouched.
pub fn translate_to_domain_formula(query: &Formula, state: &State) -> Formula {
    let schema = state.schema();
    // First substitute scheme constants (named nullary applications and
    // bare variables shadowing them are the caller's concern — queries
    // must use `bind_constants` or named constants).
    let mut translated = query.clone();
    for c in schema.constants() {
        if let Some(v) = state.constant(c) {
            translated = fq_logic::substitute_const(&translated, c, &v.to_term());
        }
    }
    translated.map_atoms(&mut |atom| match atom {
        Formula::Pred(name, args) if schema.arity(name).is_some() => {
            expand_relation_atom(name, args, state)
        }
        other => other.clone(),
    })
}

fn expand_relation_atom(name: &str, args: &[Term], state: &State) -> Formula {
    Formula::or(state.tuples(name).map(|tuple| {
        Formula::and(
            args.iter()
                .zip(tuple.iter())
                .map(|(arg, value)| Formula::eq(arg.clone(), value.to_term())),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::state::Value;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
    }

    #[test]
    fn relation_atom_expands_to_disjunction() {
        let q = parse_formula("F(x, y)").unwrap();
        let t = translate_to_domain_formula(&q, &fathers());
        let expected = parse_formula("(x = 1 & y = 2) | (x = 1 & y = 3)").unwrap();
        assert_eq!(t, expected);
    }

    #[test]
    fn empty_relation_becomes_false() {
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema);
        let q = parse_formula("R(x)").unwrap();
        assert_eq!(translate_to_domain_formula(&q, &state), Formula::False);
    }

    #[test]
    fn translation_is_pure_domain() {
        let q = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let t = translate_to_domain_formula(&q, &fathers());
        // No database predicates left.
        let mut has_f = false;
        t.visit(&mut |f| {
            if let Formula::Pred(name, _) = f {
                if name == "F" {
                    has_f = true;
                }
            }
        });
        assert!(!has_f);
    }

    #[test]
    fn scheme_constants_are_replaced() {
        let schema = Schema::new().with_constant("c");
        let state = State::new(schema).with_constant("c", "11");
        let raw = parse_formula("P(m0, c, x)").unwrap();
        let q = fq_logic::bind_constants(&raw, &["c".to_string()].into());
        let t = translate_to_domain_formula(&q, &state);
        assert_eq!(t, parse_formula("P(m0, \"11\", x)").unwrap());
    }

    #[test]
    fn domain_predicates_untouched() {
        let q = parse_formula("F(x, y) & x < y").unwrap();
        let t = translate_to_domain_formula(&q, &fathers());
        let mut has_lt = false;
        t.visit(&mut |f| {
            if let Formula::Pred(name, _) = f {
                if name == "<" {
                    has_lt = true;
                }
            }
        });
        assert!(has_lt);
    }

    #[test]
    fn repeated_variables_constrain_both_positions() {
        // F(x, x) with state {(1,2),(1,3)}: no tuple matches.
        let q = parse_formula("exists x. F(x, x)").unwrap();
        let t = translate_to_domain_formula(&q, &fathers());
        let expected = parse_formula("exists x. (x = 1 & x = 2) | (x = 1 & x = 3)").unwrap();
        assert_eq!(t, expected);
    }
}
