//! Logical optimization of algebra expressions.
//!
//! [`optimize`] canonicalizes an [`AlgebraExpr`] before physical
//! execution: selections sink below joins and unions, cascaded
//! projections fuse, projections are pruned to the attributes the rest
//! of the plan needs, and join chains are reordered greedily by
//! cardinality estimates drawn from the [`State`]'s relation sizes.
//!
//! Every rewrite preserves the *set* of result tuples **and** the root
//! attribute list (order included), so the optimized expression is
//! interchangeable with the original under [`AlgebraExpr::eval`] — the
//! property the `prop_physical` suite checks against the naive backend.
//! Where a rule would permute columns (join reordering), the rewritten
//! subtree is wrapped in a `Project` restoring the original order.

use crate::algebra::{AlgebraExpr, Condition};
use crate::state::{State, Value};
use crate::val::ColStats;
use std::collections::BTreeSet;

/// An optimized expression plus the human-readable log of rewrites
/// applied, in application order — surfaced by `fq explain`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimizedExpr {
    pub expr: AlgebraExpr,
    pub rewrites: Vec<String>,
}

/// Rewrite `expr` to a cheaper equivalent for `state`. Deterministic:
/// the same (expression, state) pair always yields the same plan.
pub fn optimize(expr: &AlgebraExpr, state: &State) -> OptimizedExpr {
    let mut cur = expr.clone();
    let mut rewrites = Vec::new();
    // Each pass sweeps bottom-up applying local rules; a fixed cap keeps
    // termination obvious even if estimates make two rules disagree.
    for _ in 0..12 {
        let (next, changed) = sweep(cur, state, &mut rewrites);
        cur = next;
        if !changed {
            break;
        }
    }
    debug_assert_eq!(cur.attrs(), expr.attrs(), "rewrites must preserve attrs");
    OptimizedExpr {
        expr: cur,
        rewrites,
    }
}

/// Estimated output cardinality. Where an attribute traces back to a
/// stored column, the estimate uses that column's statistics (distinct
/// count, min/max) from the [`State`]'s columnar store: an equality
/// selection keeps `rows / distinct` tuples — zero when the constant
/// falls outside the column's value range or is interned nowhere in the
/// state — and an equijoin keeps `|A|·|B| / max(distinct keys)`. Where
/// no statistics apply, the old coarse heuristics remain: equality
/// selections keep a quarter, joins with a shared key keep the larger
/// input, attribute-disjoint joins are cross products.
pub fn estimate(expr: &AlgebraExpr, state: &State) -> usize {
    match expr {
        AlgebraExpr::Base { name, .. } => state.relation_size(name),
        AlgebraExpr::Empty(_) => 0,
        AlgebraExpr::Singleton(_) => 1,
        AlgebraExpr::Select(e, cond) => {
            let n = estimate(e, state);
            match cond {
                Condition::EqConst(attr, v) => match column_of(e, attr, state) {
                    Some(stats) => eq_const_estimate(n, stats, v, state),
                    None => n.div_ceil(4),
                },
                Condition::EqAttr(a, _) => match column_of(e, a, state) {
                    Some(stats) => n.div_ceil(stats.distinct.max(1)).max(usize::from(n > 0)),
                    None => n.div_ceil(4),
                },
                Condition::NeqAttr(..) | Condition::NeqConst(..) => n,
            }
        }
        AlgebraExpr::Project(e, _) | AlgebraExpr::Extend(e, _, _) => estimate(e, state),
        AlgebraExpr::Join(a, b) => {
            let (ea, eb) = (estimate(a, state), estimate(b, state));
            let shared = a.attrs().iter().any(|x| b.attrs().contains(x));
            if shared {
                join_estimate(a, b, ea, eb, state)
            } else {
                ea.saturating_mul(eb)
            }
        }
        AlgebraExpr::Union(a, b) => estimate(a, state).saturating_add(estimate(b, state)),
        AlgebraExpr::Diff(a, _) => estimate(a, state),
    }
}

/// Equality-selection estimate from column statistics: uniform
/// `rows / distinct`, clamped to zero when the constant provably matches
/// no stored value — outside the column's [min, max] window, or a string
/// or oversized natural the state's dictionary never interned (small
/// naturals are inline words and can't be ruled out by the dictionary).
fn eq_const_estimate(n: usize, stats: &ColStats, v: &Value, state: &State) -> usize {
    let (Some(min), Some(max)) = (&stats.min, &stats.max) else {
        return 0; // empty column
    };
    if v < min || v > max {
        return 0;
    }
    if state.dict().lookup(v).is_none() {
        return 0;
    }
    n.div_ceil(stats.distinct.max(1)).max(usize::from(n > 0))
}

/// Equijoin estimate: `|A|·|B| / max(distinct key values)` when the
/// (single) shared attribute resolves to stored columns on both sides,
/// else the coarse `max(|A|, |B|)` bound.
fn join_estimate(a: &AlgebraExpr, b: &AlgebraExpr, ea: usize, eb: usize, state: &State) -> usize {
    let shared: Vec<String> = a
        .attrs()
        .into_iter()
        .filter(|x| b.attrs().contains(x))
        .collect();
    if let [key] = shared.as_slice() {
        if let (Some(sa), Some(sb)) = (column_of(a, key, state), column_of(b, key, state)) {
            let d = sa.distinct.max(sb.distinct).max(1);
            let est = ea.saturating_mul(eb) / d;
            return est.max(usize::from(ea > 0 && eb > 0));
        }
    }
    ea.max(eb)
}

/// Trace an attribute through selections, projections, and extensions to
/// the stored base column it reads, and return that column's statistics.
/// `None` when the attribute is computed (singletons, unions, joins) or
/// the relation is not stored.
fn column_of<'s>(expr: &AlgebraExpr, attr: &str, state: &'s State) -> Option<&'s ColStats> {
    match expr {
        AlgebraExpr::Base { name, attrs } => {
            let idx = attrs.iter().position(|a| a == attr)?;
            state.column_stats(name)?.get(idx)
        }
        AlgebraExpr::Select(e, _) | AlgebraExpr::Project(e, _) => column_of(e, attr, state),
        AlgebraExpr::Extend(e, new, src) => {
            let follow = if attr == new { src } else { attr };
            column_of(e, follow, state)
        }
        _ => None,
    }
}

/// One bottom-up sweep: children first, then the local rules at this
/// node. Returns the rewritten node and whether anything changed.
fn sweep(expr: AlgebraExpr, state: &State, log: &mut Vec<String>) -> (AlgebraExpr, bool) {
    let (expr, mut changed) = match expr {
        AlgebraExpr::Select(e, cond) => {
            let (e, c) = sweep(*e, state, log);
            (AlgebraExpr::Select(Box::new(e), cond), c)
        }
        AlgebraExpr::Project(e, attrs) => {
            let (e, c) = sweep(*e, state, log);
            (AlgebraExpr::Project(Box::new(e), attrs), c)
        }
        AlgebraExpr::Join(a, b) => {
            let (a, ca) = sweep(*a, state, log);
            let (b, cb) = sweep(*b, state, log);
            (AlgebraExpr::Join(Box::new(a), Box::new(b)), ca || cb)
        }
        AlgebraExpr::Union(a, b) => {
            let (a, ca) = sweep(*a, state, log);
            let (b, cb) = sweep(*b, state, log);
            (AlgebraExpr::Union(Box::new(a), Box::new(b)), ca || cb)
        }
        AlgebraExpr::Diff(a, b) => {
            let (a, ca) = sweep(*a, state, log);
            let (b, cb) = sweep(*b, state, log);
            (AlgebraExpr::Diff(Box::new(a), Box::new(b)), ca || cb)
        }
        AlgebraExpr::Extend(e, new, src) => {
            let (e, c) = sweep(*e, state, log);
            (AlgebraExpr::Extend(Box::new(e), new, src), c)
        }
        leaf => (leaf, false),
    };
    let (expr, local) = rewrite_node(expr, state, log);
    changed |= local;
    (expr, changed)
}

/// Apply at most one local rule at this node.
fn rewrite_node(expr: AlgebraExpr, state: &State, log: &mut Vec<String>) -> (AlgebraExpr, bool) {
    match expr {
        AlgebraExpr::Select(inner, cond) => rewrite_select(*inner, cond, log),
        AlgebraExpr::Project(inner, attrs) => rewrite_project(*inner, attrs, log),
        e @ AlgebraExpr::Join(..) => rewrite_join_chain(e, state, log),
        other => (other, false),
    }
}

/// Selection pushdown.
fn rewrite_select(
    inner: AlgebraExpr,
    cond: Condition,
    log: &mut Vec<String>,
) -> (AlgebraExpr, bool) {
    let needed = cond_attrs(&cond);
    let covers = |e: &AlgebraExpr| {
        let attrs = e.attrs();
        needed.iter().all(|a| attrs.contains(a))
    };
    match inner {
        AlgebraExpr::Join(a, b) => {
            if covers(&a) {
                log.push(format!(
                    "pushdown: σ[{}] below ⋈ into the left input",
                    fmt_cond(&cond)
                ));
                let sel = AlgebraExpr::Select(a, cond);
                (AlgebraExpr::Join(Box::new(sel), b), true)
            } else if covers(&b) {
                log.push(format!(
                    "pushdown: σ[{}] below ⋈ into the right input",
                    fmt_cond(&cond)
                ));
                let sel = AlgebraExpr::Select(b, cond);
                (AlgebraExpr::Join(a, Box::new(sel)), true)
            } else {
                (
                    AlgebraExpr::Select(Box::new(AlgebraExpr::Join(a, b)), cond),
                    false,
                )
            }
        }
        AlgebraExpr::Union(a, b) => {
            log.push(format!(
                "pushdown: σ[{}] distributed over ∪",
                fmt_cond(&cond)
            ));
            let sa = AlgebraExpr::Select(a, cond.clone());
            let sb = AlgebraExpr::Select(b, cond);
            (AlgebraExpr::Union(Box::new(sa), Box::new(sb)), true)
        }
        AlgebraExpr::Diff(a, b) => {
            // σ_c(A − B) = σ_c(A) − B: the difference only removes tuples.
            log.push(format!(
                "pushdown: σ[{}] below − into the left input",
                fmt_cond(&cond)
            ));
            let sa = AlgebraExpr::Select(a, cond);
            (AlgebraExpr::Diff(Box::new(sa), b), true)
        }
        AlgebraExpr::Project(e, attrs) => {
            // The condition only mentions attributes the projection keeps,
            // so it commutes with the (set-semantics) projection.
            log.push(format!("pushdown: σ[{}] below π", fmt_cond(&cond)));
            let sel = AlgebraExpr::Select(e, cond);
            (AlgebraExpr::Project(Box::new(sel), attrs), true)
        }
        AlgebraExpr::Extend(e, new, src) if !needed.contains(&new) => {
            log.push(format!("pushdown: σ[{}] below extend", fmt_cond(&cond)));
            let sel = AlgebraExpr::Select(e, cond);
            (AlgebraExpr::Extend(Box::new(sel), new, src), true)
        }
        other => (AlgebraExpr::Select(Box::new(other), cond), false),
    }
}

/// Projection fusion, identity elimination, and pruning.
fn rewrite_project(
    inner: AlgebraExpr,
    attrs: Vec<String>,
    log: &mut Vec<String>,
) -> (AlgebraExpr, bool) {
    if inner.attrs() == attrs {
        log.push(format!("fuse: identity π[{}] removed", attrs.join(", ")));
        return (inner, true);
    }
    match inner {
        AlgebraExpr::Project(e, _) => {
            log.push("fuse: π∘π collapsed into one projection".to_string());
            (AlgebraExpr::Project(e, attrs), true)
        }
        AlgebraExpr::Extend(e, new, _) if !attrs.contains(&new) => {
            log.push(format!("prune: unused extended column `{new}` dropped"));
            (AlgebraExpr::Project(e, attrs), true)
        }
        AlgebraExpr::Union(a, b) => {
            log.push("pushdown: π distributed over ∪".to_string());
            let pa = AlgebraExpr::Project(a, attrs.clone());
            let pb = AlgebraExpr::Project(b, attrs.clone());
            (
                AlgebraExpr::Project(
                    Box::new(AlgebraExpr::Union(Box::new(pa), Box::new(pb))),
                    attrs,
                ),
                true,
            )
        }
        AlgebraExpr::Join(a, b) => {
            // Keep only the attributes the projection or the join key
            // needs; the join key must survive or the join would change.
            let a_attrs = a.attrs();
            let b_attrs = b.attrs();
            let shared: BTreeSet<&String> =
                a_attrs.iter().filter(|x| b_attrs.contains(*x)).collect();
            let keep = |side: &[String]| -> Vec<String> {
                side.iter()
                    .filter(|x| attrs.contains(*x) || shared.contains(*x))
                    .cloned()
                    .collect()
            };
            let ka = keep(&a_attrs);
            let kb = keep(&b_attrs);
            let mut changed = false;
            let na = if ka.len() < a_attrs.len() {
                changed = true;
                log.push(format!(
                    "prune: left join input narrowed to π[{}]",
                    ka.join(", ")
                ));
                Box::new(AlgebraExpr::Project(a, ka))
            } else {
                a
            };
            let nb = if kb.len() < b_attrs.len() {
                changed = true;
                log.push(format!(
                    "prune: right join input narrowed to π[{}]",
                    kb.join(", ")
                ));
                Box::new(AlgebraExpr::Project(b, kb))
            } else {
                b
            };
            (
                AlgebraExpr::Project(Box::new(AlgebraExpr::Join(na, nb)), attrs),
                changed,
            )
        }
        other => (AlgebraExpr::Project(Box::new(other), attrs), false),
    }
}

/// Greedy join ordering: flatten the chain, start from the smallest
/// estimated operand, and repeatedly take the smallest operand that
/// shares an attribute with what has been joined so far (avoiding cross
/// products when any connected choice exists). Natural join is
/// associative and commutative on tuple *sets*; a final projection
/// restores the original column order.
fn rewrite_join_chain(
    expr: AlgebraExpr,
    state: &State,
    log: &mut Vec<String>,
) -> (AlgebraExpr, bool) {
    let orig_attrs = expr.attrs();
    let mut ops = Vec::new();
    flatten_join(&expr, &mut ops);
    if ops.len() < 2 {
        return (expr, false);
    }
    let ests: Vec<usize> = ops.iter().map(|e| estimate(e, state)).collect();
    let mut remaining: Vec<usize> = (0..ops.len()).collect();
    let first = *remaining
        .iter()
        .min_by_key(|&&i| (ests[i], i))
        .expect("non-empty");
    remaining.retain(|&i| i != first);
    let mut order = vec![first];
    let mut acc_attrs: BTreeSet<String> = ops[first].attrs().into_iter().collect();
    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| ops[i].attrs().iter().any(|a| acc_attrs.contains(a)))
            .collect();
        let pool = if connected.is_empty() {
            remaining.clone()
        } else {
            connected
        };
        let pick = *pool
            .iter()
            .min_by_key(|&&i| (ests[i], i))
            .expect("non-empty");
        remaining.retain(|&i| i != pick);
        acc_attrs.extend(ops[pick].attrs());
        order.push(pick);
    }
    if order.iter().copied().eq(0..ops.len()) {
        return (expr, false);
    }
    log.push(format!(
        "join-order: {} (est. rows {})",
        order
            .iter()
            .map(|&i| operand_name(&ops[i]))
            .collect::<Vec<_>>()
            .join(" ⋈ "),
        order
            .iter()
            .map(|&i| ests[i].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let mut iter = order.into_iter();
    let mut tree = ops[iter.next().expect("non-empty")].clone();
    for i in iter {
        tree = AlgebraExpr::Join(Box::new(tree), Box::new(ops[i].clone()));
    }
    let rewritten = if tree.attrs() == orig_attrs {
        tree
    } else {
        AlgebraExpr::Project(Box::new(tree), orig_attrs)
    };
    (rewritten, true)
}

fn flatten_join(expr: &AlgebraExpr, out: &mut Vec<AlgebraExpr>) {
    if let AlgebraExpr::Join(a, b) = expr {
        flatten_join(a, out);
        flatten_join(b, out);
    } else {
        out.push(expr.clone());
    }
}

fn cond_attrs(cond: &Condition) -> Vec<String> {
    match cond {
        Condition::EqAttr(a, b) | Condition::NeqAttr(a, b) => vec![a.clone(), b.clone()],
        Condition::EqConst(a, _) | Condition::NeqConst(a, _) => vec![a.clone()],
    }
}

fn fmt_cond(cond: &Condition) -> String {
    match cond {
        Condition::EqAttr(a, b) => format!("{a} = {b}"),
        Condition::NeqAttr(a, b) => format!("{a} ≠ {b}"),
        Condition::EqConst(a, v) => format!("{a} = {v}"),
        Condition::NeqConst(a, v) => format!("{a} ≠ {v}"),
    }
}

/// A short label for a join operand in the rewrite log.
fn operand_name(expr: &AlgebraExpr) -> String {
    match expr {
        AlgebraExpr::Base { name, .. } => name.clone(),
        AlgebraExpr::Select(e, _) => format!("σ({})", operand_name(e)),
        AlgebraExpr::Project(e, _) => operand_name(e),
        AlgebraExpr::Extend(e, _, _) => operand_name(e),
        AlgebraExpr::Singleton(_) => "const".to_string(),
        AlgebraExpr::Empty(_) => "∅".to_string(),
        AlgebraExpr::Join(..) => "join".to_string(),
        AlgebraExpr::Union(..) => "union".to_string(),
        AlgebraExpr::Diff(..) => "diff".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::compile;
    use crate::schema::Schema;
    use crate::state::Value;
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2).with_relation("S", 1);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
            .with_tuple("S", vec![Value::Nat(2)])
    }

    fn check(query: &str) {
        let state = fathers();
        let f = parse_formula(query).unwrap();
        let expr = compile(state.schema(), &f).expect("compiles");
        let opt = optimize(&expr, &state);
        let naive = expr.eval(&state);
        let optimized = opt.expr.eval(&state);
        assert_eq!(
            naive, optimized,
            "query: {query}\nrewrites: {:?}",
            opt.rewrites
        );
    }

    #[test]
    fn optimized_expressions_evaluate_identically() {
        for q in [
            "F(x, y)",
            "exists y z. y != z & F(x, y) & F(x, z)",
            "exists y. F(x, y) & F(y, z)",
            "F(x, y) & S(y)",
            "F(1, y)",
            "F(x, x)",
            "F(x, y) | (x = 9 & y = 9)",
            "F(x, y) & !F(y, x)",
            "(exists y. F(x, y)) & !(exists g. exists f. F(g, f) & F(f, x))",
            "F(x, y) & x != y",
            "F(x, y) & y != 2",
            "x = 2 & (exists z. F(y, z) & x != 0)",
            "(exists y. F(x, y)) & forall y. F(x, y) -> y = 2 | y = 3",
        ] {
            check(q);
        }
    }

    #[test]
    fn select_sinks_below_join() {
        // σ over a join of two bases must end up on one input.
        let e = AlgebraExpr::Select(
            Box::new(AlgebraExpr::Join(
                Box::new(AlgebraExpr::Base {
                    name: "F".into(),
                    attrs: vec!["x".into(), "y".into()],
                }),
                Box::new(AlgebraExpr::Base {
                    name: "S".into(),
                    attrs: vec!["y".into()],
                }),
            )),
            Condition::EqConst("x".into(), Value::Nat(1)),
        );
        let opt = optimize(&e, &fathers());
        assert!(
            opt.rewrites.iter().any(|r| r.starts_with("pushdown")),
            "{:?}",
            opt.rewrites
        );
        assert_eq!(e.eval(&fathers()), opt.expr.eval(&fathers()));
        // The selection is no longer at the root (it sank into a join
        // input; join reordering may add a column-restoring π on top).
        assert!(!matches!(opt.expr, AlgebraExpr::Select(..)));
    }

    #[test]
    fn join_chain_reorders_by_estimate_and_preserves_attrs() {
        // F (3 rows) ⋈ S (1 row): the chain should start from S.
        let e = AlgebraExpr::Join(
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["x".into(), "y".into()],
            }),
            Box::new(AlgebraExpr::Base {
                name: "S".into(),
                attrs: vec!["y".into()],
            }),
        );
        let state = fathers();
        let opt = optimize(&e, &state);
        assert!(
            opt.rewrites.iter().any(|r| r.contains("join-order: S ⋈ F")),
            "{:?}",
            opt.rewrites
        );
        assert_eq!(opt.expr.attrs(), e.attrs());
        assert_eq!(e.eval(&state), opt.expr.eval(&state));
    }

    #[test]
    fn cascaded_projects_fuse() {
        let base = AlgebraExpr::Base {
            name: "F".into(),
            attrs: vec!["x".into(), "y".into()],
        };
        let e = AlgebraExpr::Project(
            Box::new(AlgebraExpr::Project(
                Box::new(base),
                vec!["x".into(), "y".into()],
            )),
            vec!["x".into()],
        );
        let opt = optimize(&e, &fathers());
        assert!(
            opt.rewrites.iter().any(|r| r.starts_with("fuse")),
            "{:?}",
            opt.rewrites
        );
        assert!(matches!(
            &opt.expr,
            AlgebraExpr::Project(inner, _) if matches!(**inner, AlgebraExpr::Base { .. })
        ));
    }

    #[test]
    fn optimization_is_deterministic() {
        let state = fathers();
        let f = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let expr = compile(state.schema(), &f).unwrap();
        assert_eq!(optimize(&expr, &state), optimize(&expr, &state));
    }
}
