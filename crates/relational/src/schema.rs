//! Database schemes.
//!
//! "Names of the relations and their arities (numbers of argument places)
//! are fixed and called a database scheme." Schemes may also declare
//! scheme constants — Theorem 3.1 works with "a database scheme that
//! consists of one constant symbol c".

use fq_json::{FromJson, JsonError, ToJson, Value};
use fq_logic::{Signature, SymbolKind};
use std::collections::BTreeMap;

/// A database scheme: relation names with arities, plus scheme constants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<String, usize>,
    constants: Vec<String>,
}

impl Schema {
    /// The empty scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation.
    ///
    /// # Panics
    ///
    /// Panics if the relation is redeclared with a different arity.
    pub fn with_relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        let name = name.into();
        if let Some(prev) = self.relations.insert(name.clone(), arity) {
            assert_eq!(
                prev, arity,
                "relation `{name}` redeclared with different arity"
            );
        }
        self
    }

    /// Add a scheme constant.
    pub fn with_constant(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if !self.constants.contains(&name) {
            self.constants.push(name);
        }
        self
    }

    /// Arity of a relation.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.relations.get(name).copied()
    }

    /// Iterate over relations as `(name, arity)`.
    pub fn relations(&self) -> impl Iterator<Item = (&str, usize)> {
        self.relations.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// The scheme constants.
    pub fn constants(&self) -> &[String] {
        &self.constants
    }

    /// Extend a domain signature with this scheme's symbols.
    pub fn extend_signature(&self, mut sig: Signature) -> Signature {
        for (name, arity) in &self.relations {
            sig = sig.with(name, SymbolKind::DatabaseRelation, *arity);
        }
        for c in &self.constants {
            sig = sig.with(c, SymbolKind::SchemeConstant, 0);
        }
        sig
    }
}

impl ToJson for Schema {
    fn to_json(&self) -> Value {
        fq_json::object([
            ("relations", self.relations.to_json()),
            ("constants", self.constants.to_json()),
        ])
    }
}

impl FromJson for Schema {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(Schema {
            relations: FromJson::from_json(fq_json::member(value, "relations")?)?,
            constants: FromJson::from_json(fq_json::member(value, "constants")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fathers_sons_scheme() {
        let s = Schema::new().with_relation("F", 2);
        assert_eq!(s.arity("F"), Some(2));
        assert_eq!(s.arity("G"), None);
    }

    #[test]
    fn theorem_3_1_scheme() {
        let s = Schema::new().with_constant("c");
        assert_eq!(s.constants(), &["c".to_string()]);
        assert_eq!(s.relations().count(), 0);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn conflicting_arity_panics() {
        let _ = Schema::new().with_relation("R", 2).with_relation("R", 3);
    }

    #[test]
    fn idempotent_redeclaration() {
        let s = Schema::new()
            .with_relation("R", 2)
            .with_relation("R", 2)
            .with_constant("c")
            .with_constant("c");
        assert_eq!(s.relations().count(), 1);
        assert_eq!(s.constants().len(), 1);
    }

    #[test]
    fn signature_extension() {
        let s = Schema::new().with_relation("F", 2).with_constant("c");
        let sig = s.extend_signature(Signature::new());
        assert_eq!(sig.get("F"), Some((SymbolKind::DatabaseRelation, 2)));
        assert_eq!(sig.get("c"), Some((SymbolKind::SchemeConstant, 0)));
    }

    #[test]
    fn json_round_trip() {
        let s = Schema::new().with_relation("F", 2).with_constant("c");
        let json = fq_json::to_string(&s);
        let back: Schema = fq_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
