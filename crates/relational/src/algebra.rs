//! A named-attribute relational algebra with an evaluator, and the
//! compilation of safe-range calculus queries into it (Codd's theorem).
//!
//! The algebra is the execution target for the effective syntaxes: a
//! safe-range query compiles to an expression whose evaluation touches
//! only the stored relations, making domain independence obvious.

use crate::safe_range::srnf;
use crate::schema::Schema;
use crate::state::{State, Tuple, Value};
use fq_logic::{Formula, Term};
use std::collections::BTreeSet;

/// A relation instance during algebra evaluation: named attributes and a
/// set of tuples (columns ordered as `attrs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    pub attrs: Vec<String>,
    pub tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation over the given attributes.
    pub fn empty(attrs: Vec<String>) -> Self {
        Relation {
            attrs,
            tuples: BTreeSet::new(),
        }
    }

    /// Column index of an attribute.
    fn col(&self, attr: &str) -> usize {
        self.attrs
            .iter()
            .position(|a| a == attr)
            .unwrap_or_else(|| panic!("attribute `{attr}` not in {:?}", self.attrs))
    }

    /// Reorder columns to the given attribute order.
    pub fn reorder(&self, attrs: &[String]) -> Relation {
        let idx: Vec<usize> = attrs.iter().map(|a| self.col(a)).collect();
        Relation {
            attrs: attrs.to_vec(),
            tuples: self
                .tuples
                .iter()
                .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                .collect(),
        }
    }
}

/// A selection condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Condition {
    /// Two attributes are equal.
    EqAttr(String, String),
    /// Two attributes differ.
    NeqAttr(String, String),
    /// Attribute equals a constant.
    EqConst(String, Value),
    /// Attribute differs from a constant.
    NeqConst(String, Value),
}

/// A relational algebra expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgebraExpr {
    /// A stored relation with attribute names for its columns.
    Base { name: String, attrs: Vec<String> },
    /// The empty relation over the given attributes (a contradictory
    /// subformula compiles to this).
    Empty(Vec<String>),
    /// A one-tuple constant relation.
    Singleton(Vec<(String, Value)>),
    /// Selection.
    Select(Box<AlgebraExpr>, Condition),
    /// Projection onto the listed attributes.
    Project(Box<AlgebraExpr>, Vec<String>),
    /// Natural join on shared attribute names.
    Join(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Union (attribute sets must coincide).
    Union(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Difference (attribute sets must coincide).
    Diff(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Duplicate an existing column under a new attribute name.
    Extend(Box<AlgebraExpr>, String, String),
}

impl AlgebraExpr {
    /// The output attributes of the expression.
    pub fn attrs(&self) -> Vec<String> {
        match self {
            AlgebraExpr::Base { attrs, .. } => attrs.clone(),
            AlgebraExpr::Empty(attrs) => attrs.clone(),
            AlgebraExpr::Singleton(cols) => cols.iter().map(|(a, _)| a.clone()).collect(),
            AlgebraExpr::Select(e, _) => e.attrs(),
            AlgebraExpr::Project(_, attrs) => attrs.clone(),
            AlgebraExpr::Join(a, b) => {
                let mut out = a.attrs();
                for attr in b.attrs() {
                    if !out.contains(&attr) {
                        out.push(attr);
                    }
                }
                out
            }
            AlgebraExpr::Union(a, _) | AlgebraExpr::Diff(a, _) => a.attrs(),
            AlgebraExpr::Extend(e, new, _) => {
                let mut out = e.attrs();
                out.push(new.clone());
                out
            }
        }
    }

    /// Evaluate the expression over a state.
    pub fn eval(&self, state: &State) -> Relation {
        match self {
            AlgebraExpr::Base { name, attrs } => Relation {
                attrs: attrs.clone(),
                tuples: state.tuples(name).collect(),
            },
            AlgebraExpr::Empty(attrs) => Relation::empty(attrs.clone()),
            AlgebraExpr::Singleton(cols) => {
                let attrs: Vec<String> = cols.iter().map(|(a, _)| a.clone()).collect();
                let tuple: Tuple = cols.iter().map(|(_, v)| v.clone()).collect();
                Relation {
                    attrs,
                    tuples: [tuple].into_iter().collect(),
                }
            }
            AlgebraExpr::Select(e, cond) => {
                let r = e.eval(state);
                let keep = |t: &Tuple| -> bool {
                    match cond {
                        Condition::EqAttr(a, b) => t[r.col(a)] == t[r.col(b)],
                        Condition::NeqAttr(a, b) => t[r.col(a)] != t[r.col(b)],
                        Condition::EqConst(a, v) => t[r.col(a)] == *v,
                        Condition::NeqConst(a, v) => t[r.col(a)] != *v,
                    }
                };
                Relation {
                    attrs: r.attrs.clone(),
                    tuples: r.tuples.iter().filter(|t| keep(t)).cloned().collect(),
                }
            }
            AlgebraExpr::Project(e, attrs) => {
                let r = e.eval(state);
                let idx: Vec<usize> = attrs.iter().map(|a| r.col(a)).collect();
                Relation {
                    attrs: attrs.clone(),
                    tuples: r
                        .tuples
                        .iter()
                        .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                        .collect(),
                }
            }
            AlgebraExpr::Join(a, b) => {
                let ra = a.eval(state);
                let rb = b.eval(state);
                let shared: Vec<(usize, usize)> = ra
                    .attrs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, attr)| rb.attrs.iter().position(|x| x == attr).map(|j| (i, j)))
                    .collect();
                let extra: Vec<usize> = rb
                    .attrs
                    .iter()
                    .enumerate()
                    .filter(|(_, attr)| !ra.attrs.contains(attr))
                    .map(|(j, _)| j)
                    .collect();
                let mut attrs = ra.attrs.clone();
                attrs.extend(extra.iter().map(|&j| rb.attrs[j].clone()));
                let mut tuples = BTreeSet::new();
                for ta in &ra.tuples {
                    for tb in &rb.tuples {
                        if shared.iter().all(|&(i, j)| ta[i] == tb[j]) {
                            let mut t = ta.clone();
                            t.extend(extra.iter().map(|&j| tb[j].clone()));
                            tuples.insert(t);
                        }
                    }
                }
                Relation { attrs, tuples }
            }
            AlgebraExpr::Union(a, b) => {
                let ra = a.eval(state);
                let rb = b.eval(state).reorder(&ra.attrs);
                Relation {
                    attrs: ra.attrs.clone(),
                    tuples: ra.tuples.union(&rb.tuples).cloned().collect(),
                }
            }
            AlgebraExpr::Diff(a, b) => {
                let ra = a.eval(state);
                let rb = b.eval(state).reorder(&ra.attrs);
                Relation {
                    attrs: ra.attrs.clone(),
                    tuples: ra.tuples.difference(&rb.tuples).cloned().collect(),
                }
            }
            AlgebraExpr::Extend(e, new, source) => {
                let r = e.eval(state);
                let src = r.col(source);
                let mut attrs = r.attrs.clone();
                attrs.push(new.clone());
                Relation {
                    attrs,
                    tuples: r
                        .tuples
                        .iter()
                        .map(|t| {
                            let mut t2 = t.clone();
                            t2.push(t[src].clone());
                            t2
                        })
                        .collect(),
                }
            }
        }
    }
}

/// Why a safe-range query could not be compiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot compile to algebra: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Compile a safe-range query into the algebra. The output attributes are
/// the query's free variables.
pub fn compile(schema: &Schema, query: &Formula) -> Result<AlgebraExpr, CompileError> {
    crate::safe_range::check_safe_range(schema, query).map_err(|e| CompileError(e.to_string()))?;
    compile_inner(schema, &srnf(query))
}

fn compile_inner(schema: &Schema, f: &Formula) -> Result<AlgebraExpr, CompileError> {
    match f {
        Formula::Pred(name, args) if schema.arity(name).is_some() => compile_atom(name, args),
        Formula::Eq(a, b) => match (a, b) {
            (Term::Var(v), t) | (t, Term::Var(v)) if t.is_ground() => {
                let value = Value::from_term(t)
                    .ok_or_else(|| CompileError(format!("unsupported ground term `{t}`")))?;
                Ok(AlgebraExpr::Singleton(vec![(v.to_string(), value)]))
            }
            _ => Err(CompileError(format!(
                "equality `{f}` does not define a range"
            ))),
        },
        Formula::And(gs) => compile_conjunction(schema, gs),
        Formula::Or(gs) => {
            let mut iter = gs.iter();
            let first = compile_inner(
                schema,
                iter.next()
                    .ok_or_else(|| CompileError("empty disjunction".into()))?,
            )?;
            let attrs = first.attrs();
            let mut acc = first;
            for g in iter {
                let e = compile_inner(schema, g)?;
                if e.attrs().iter().collect::<BTreeSet<_>>()
                    != attrs.iter().collect::<BTreeSet<_>>()
                {
                    return Err(CompileError(
                        "union branches have different attributes".into(),
                    ));
                }
                let aligned = AlgebraExpr::Project(Box::new(e), attrs.clone());
                acc = AlgebraExpr::Union(Box::new(acc), Box::new(aligned));
            }
            Ok(acc)
        }
        Formula::Exists(v, g) => {
            let inner = compile_inner(schema, g)?;
            let attrs: Vec<String> = inner.attrs().into_iter().filter(|a| a != v).collect();
            Ok(AlgebraExpr::Project(Box::new(inner), attrs))
        }
        other => Err(CompileError(format!(
            "subformula `{other}` is outside the compilable safe-range fragment"
        ))),
    }
}

/// Compile a relation atom: base relation with positional attributes, then
/// selections for constants and repeated variables, projected to the
/// variables.
fn compile_atom(name: &str, args: &[Term]) -> Result<AlgebraExpr, CompileError> {
    let positional: Vec<String> = (0..args.len()).map(|i| format!("@{name}_{i}")).collect();
    let mut expr = AlgebraExpr::Base {
        name: name.to_string(),
        attrs: positional.clone(),
    };
    let mut seen: Vec<(String, String)> = Vec::new(); // (var, attr)
    let mut out_attrs: Vec<String> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        match arg {
            Term::Var(v) => {
                if let Some((_, prev)) = seen.iter().find(|(var, _)| var == v) {
                    expr = AlgebraExpr::Select(
                        Box::new(expr),
                        Condition::EqAttr(prev.clone(), positional[i].clone()),
                    );
                } else {
                    seen.push((v.to_string(), positional[i].clone()));
                }
            }
            ground if ground.is_ground() => {
                let value = Value::from_term(ground)
                    .ok_or_else(|| CompileError(format!("unsupported ground term `{ground}`")))?;
                expr = AlgebraExpr::Select(
                    Box::new(expr),
                    Condition::EqConst(positional[i].clone(), value),
                );
            }
            other => {
                return Err(CompileError(format!(
                    "non-variable, non-ground argument `{other}`"
                )))
            }
        }
    }
    // Rename positional attrs to variables via Extend + Project.
    for (v, attr) in &seen {
        expr = AlgebraExpr::Extend(Box::new(expr), v.clone(), attr.clone());
        out_attrs.push(v.clone());
    }
    Ok(AlgebraExpr::Project(Box::new(expr), out_attrs))
}

fn compile_conjunction(schema: &Schema, gs: &[Formula]) -> Result<AlgebraExpr, CompileError> {
    // 0. Constant propagation: a conjunct `v = c` substitutes `c` for `v`
    // inside every other conjunct, so subformulas that mention `v` under
    // quantifiers or negations (e.g. `x = 2 & ∃z(R(y,z) ∧ x ≠ 0)`) become
    // locally well-scoped.
    let original_free: Vec<String> = Formula::And(gs.to_vec()).free_vars().into_iter().collect();
    let mut gs: Vec<Formula> = gs.to_vec();
    let mut propagated = true;
    while propagated {
        propagated = false;
        let bindings: Vec<(String, Term)> = gs
            .iter()
            .filter_map(|g| match g {
                Formula::Eq(Term::Var(v), t) | Formula::Eq(t, Term::Var(v)) if t.is_ground() => {
                    Some((v.to_string(), t.clone()))
                }
                _ => None,
            })
            .collect();
        for (v, t) in bindings {
            for g in gs.iter_mut() {
                // Keep the defining equality itself so the attribute
                // still appears in the output.
                if matches!(g, Formula::Eq(Term::Var(gv), gt) if gv == &v && gt == &t)
                    || matches!(g, Formula::Eq(gt, Term::Var(gv)) if gv == &v && gt == &t)
                {
                    continue;
                }
                let substituted = fq_logic::substitute(g, &v, &t);
                if substituted != *g {
                    *g = substituted;
                    propagated = true;
                }
            }
        }
    }
    // Ground residues left by the propagation (`¬(2 = 0)` etc.) fold away;
    // a ground `False` marks the whole conjunction contradictory.
    let gs: Vec<Formula> = gs.iter().map(fq_logic::transform::simplify).collect();
    let mut contradiction = false;
    let gs: Vec<&Formula> = gs
        .iter()
        .filter(|g| match g {
            Formula::True => false,
            Formula::False => {
                contradiction = true;
                false
            }
            _ => true,
        })
        .collect();

    // 1. Positive range-giving parts join together.
    let mut positive: Option<AlgebraExpr> = None;
    let mut equalities: Vec<(&fq_logic::Sym, &fq_logic::Sym)> = Vec::new();
    let mut negations: Vec<&Formula> = Vec::new();
    for g in gs {
        match g {
            Formula::Not(inner) => negations.push(inner),
            Formula::Eq(Term::Var(a), Term::Var(b)) => equalities.push((a, b)),
            other => {
                let e = compile_inner(schema, other)?;
                positive = Some(match positive {
                    None => e,
                    Some(p) => AlgebraExpr::Join(Box::new(p), Box::new(e)),
                });
            }
        }
    }
    if contradiction {
        // Empty relation over every original free variable (range-giving
        // parts may have collapsed together with the contradiction).
        return Ok(AlgebraExpr::Empty(original_free));
    }
    let mut expr = positive
        .ok_or_else(|| CompileError("conjunction has no positive range-giving part".into()))?;

    // 2. Variable equalities: select when both bound, extend when one new.
    let mut changed = true;
    let mut pending = equalities;
    while changed {
        changed = false;
        let mut rest = Vec::new();
        for (a, b) in pending {
            let attrs = expr.attrs();
            let has = |v: &fq_logic::Sym| attrs.iter().any(|x| v == x);
            match (has(a), has(b)) {
                (true, true) => {
                    expr = AlgebraExpr::Select(
                        Box::new(expr),
                        Condition::EqAttr(a.to_string(), b.to_string()),
                    );
                    changed = true;
                }
                (true, false) => {
                    expr = AlgebraExpr::Extend(Box::new(expr), b.to_string(), a.to_string());
                    changed = true;
                }
                (false, true) => {
                    expr = AlgebraExpr::Extend(Box::new(expr), a.to_string(), b.to_string());
                    changed = true;
                }
                (false, false) => rest.push((a, b)),
            }
        }
        pending = rest;
    }
    if !pending.is_empty() {
        return Err(CompileError(
            "variable equality over unbound variables".into(),
        ));
    }

    // 3. Negations: anti-join against the positive part.
    for inner in negations {
        let attrs = expr.attrs();
        let neg = match inner {
            // ¬(x = y) with both bound: a plain selection.
            Formula::Eq(Term::Var(a), Term::Var(b))
                if attrs.iter().any(|x| a == x) && attrs.iter().any(|x| b == x) =>
            {
                expr = AlgebraExpr::Select(
                    Box::new(expr),
                    Condition::NeqAttr(a.to_string(), b.to_string()),
                );
                continue;
            }
            Formula::Eq(Term::Var(v), t) | Formula::Eq(t, Term::Var(v))
                if attrs.iter().any(|x| v == x) && t.is_ground() =>
            {
                let value = Value::from_term(t)
                    .ok_or_else(|| CompileError(format!("unsupported ground term `{t}`")))?;
                expr =
                    AlgebraExpr::Select(Box::new(expr), Condition::NeqConst(v.to_string(), value));
                continue;
            }
            other => compile_inner(schema, other)?,
        };
        // The anti-join is only correct when every free variable of the
        // negated subformula is bound by THIS conjunction's positive part.
        // (A variable bound further out — e.g. `x = 2 & ∃z(R(y,z) ∧ x ≠ 0)`
        // — would make `E ⋈ neg` a cross product and silently wrong.)
        let neg_free = inner.free_vars();
        if !neg_free.iter().all(|v| attrs.contains(v)) {
            return Err(CompileError(format!(
                "negation `!({inner})` mentions variables not bound by the                  enclosing conjunction (a RANF rewrite would be needed)"
            )));
        }
        let joined = AlgebraExpr::Join(Box::new(expr.clone()), Box::new(neg));
        let aligned = AlgebraExpr::Project(Box::new(joined), attrs);
        expr = AlgebraExpr::Diff(Box::new(expr), Box::new(aligned));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active_eval::{eval_query, NoOps};
    use fq_logic::parse_formula;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
    }

    /// Compile, evaluate, and compare with active-domain evaluation —
    /// they agree on safe-range (hence domain-independent) queries.
    fn check_against_calculus(query: &str) {
        let state = fathers();
        let f = parse_formula(query).unwrap();
        let expr = compile(state.schema(), &f).expect("compiles");
        let rel = expr.eval(&state);
        let vars: Vec<String> = f.free_vars().into_iter().collect();
        let reference = eval_query(&state, &NoOps, &f, &vars).unwrap();
        let algebra: BTreeSet<Tuple> = rel.reorder(&vars).tuples;
        let reference: BTreeSet<Tuple> = reference.into_iter().collect();
        assert_eq!(algebra, reference, "query: {query}");
    }

    #[test]
    fn base_relation_round_trip() {
        check_against_calculus("F(x, y)");
    }

    #[test]
    fn papers_m_and_g_queries() {
        check_against_calculus("exists y z. y != z & F(x, y) & F(x, z)");
        check_against_calculus("exists y. F(x, y) & F(y, z)");
    }

    #[test]
    fn constants_and_repeated_vars() {
        check_against_calculus("F(1, y)");
        check_against_calculus("F(x, x)");
        check_against_calculus("F(x, y) & y = 2");
    }

    #[test]
    fn union_and_difference() {
        check_against_calculus("F(x, y) | (x = 9 & y = 9)");
        check_against_calculus("F(x, y) & !F(y, x)");
        // Fathers who are not grandsons of anyone.
        check_against_calculus("(exists y. F(x, y)) & !(exists g. exists f. F(g, f) & F(f, x))");
    }

    #[test]
    fn variable_equality_extension() {
        check_against_calculus("F(x, y) & z = y");
    }

    #[test]
    fn negated_equalities() {
        check_against_calculus("F(x, y) & x != y");
        check_against_calculus("F(x, y) & y != 2");
    }

    #[test]
    fn unsafe_queries_do_not_compile() {
        let schema = Schema::new().with_relation("F", 2);
        for q in ["!F(x, y)", "x = y", "F(x, y) | x = 1"] {
            assert!(
                compile(&schema, &parse_formula(q).unwrap()).is_err(),
                "{q} should not compile"
            );
        }
    }

    #[test]
    fn boolean_query_compiles_to_nullary_relation() {
        let state = fathers();
        let f = parse_formula("exists x y. F(x, y)").unwrap();
        let expr = compile(state.schema(), &f).unwrap();
        let rel = expr.eval(&state);
        assert!(rel.attrs.is_empty());
        assert_eq!(rel.tuples.len(), 1); // non-empty: true
    }

    #[test]
    fn singleton_and_join() {
        let e = AlgebraExpr::Join(
            Box::new(AlgebraExpr::Singleton(vec![("x".into(), Value::Nat(1))])),
            Box::new(AlgebraExpr::Base {
                name: "F".into(),
                attrs: vec!["x".into(), "y".into()],
            }),
        );
        let rel = e.eval(&fathers());
        assert_eq!(rel.tuples.len(), 2);
    }

    #[test]
    fn outer_constant_propagates_into_quantified_negation() {
        // The proptest-found case: x is pinned at the top level but used
        // inside a quantified subformula's negation.
        check_against_calculus("x = 2 & (exists z. F(y, z) & x != 0)");
        check_against_calculus("x = 1 & (exists z. F(y, z) & x != 1)");
    }

    #[test]
    fn forall_via_srnf() {
        // Fathers all of whose sons are 2 or 3.
        check_against_calculus("(exists y. F(x, y)) & forall y. F(x, y) -> y = 2 | y = 3");
    }
}
