//! The shared decision-engine layer.
//!
//! Every decision procedure in the workspace — Cooper elimination for
//! ⟨ℕ, <, +⟩, the Reach-theory QE for the trace domain, and the
//! Theorem 3.1 machines × formulas dovetail — funnels its hot loops
//! through one [`Engine`] handle, which provides three services:
//!
//! 1. **Hash-consing** ([`Engine::intern`]): structurally equal values
//!    intern to one [`Interned`] id, giving `O(1)` equality and compact
//!    cache keys.
//! 2. **Memoization** ([`Engine::cached`]): bounded per-type caches so
//!    the DNF/B-expansion blowup stops re-eliminating duplicate
//!    subproblems.
//! 3. **Multi-core fan-out** ([`Engine::parallel_map`]): a
//!    `std::thread::scope`-based parallel map over independent
//!    subproblems. Results are merged in input order — parallel and
//!    sequential runs produce *identical* output, never first-wins.
//!
//! The handle is cheap to clone (an `Arc`) and configured by
//! [`EngineConfig`]`{ threads, cache_capacity }`, so benchmarks can A/B
//! sequential vs parallel and cold vs cached runs of the same code.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Lock shards per memo cache / intern pool. Concurrent executors map
/// to different shards with probability `1 - 1/SHARDS` per key pair, so
/// the hot read path (`RwLock::read` on one shard) effectively never
/// serializes; `bench_serve`'s contention rows measure exactly this.
const SHARDS: usize = 16;

/// The shard a key hashes to. Uses the std hasher (the shard's inner
/// `HashMap` pays the same hash anyway) — what matters is that equal
/// keys always pick the same shard.
fn shard_of<K: Hash + ?Sized>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Tuning knobs for an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads the engine may use, including the calling thread.
    /// `1` means fully sequential.
    pub threads: usize,
    /// Entries each memo cache may hold before it is reset.
    /// `0` disables memoization.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            cache_capacity: 1 << 16,
        }
    }
}

/// Type-erased per-namespace engine state: memo caches and intern pools.
type StateMap = HashMap<(TypeId, &'static str), Arc<dyn Any + Send + Sync>>;

struct Inner {
    config: EngineConfig,
    /// Extra worker threads currently running across all nested
    /// `parallel_map` calls; used to keep total concurrency at
    /// `threads` instead of multiplying at every nesting level.
    borrowed_workers: AtomicUsize,
    /// Type-erased map from `(TypeId, namespace)` to a `MemoCache<K, V>`
    /// or `InternPool<T>` for that type. Read-locked on the hot path
    /// (the namespace set stabilizes after warm-up); write-locked only
    /// to install a new namespace.
    state: RwLock<StateMap>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// A cheaply clonable handle to shared engine state.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<Inner>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.inner.config.threads)
            .field("cache_capacity", &self.inner.config.cache_capacity)
            .finish()
    }
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            inner: Arc::new(Inner {
                config,
                borrowed_workers: AtomicUsize::new(0),
                state: RwLock::new(HashMap::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
            }),
        }
    }

    /// Single-threaded, memoizing engine (the default for plain
    /// `decide()` calls).
    pub fn sequential() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Engine using every available core.
    pub fn parallel() -> Self {
        Engine::new(EngineConfig {
            threads: available_threads(),
            ..EngineConfig::default()
        })
    }

    /// Engine with caching disabled (for cold-run baselines).
    pub fn uncached(threads: usize) -> Self {
        Engine::new(EngineConfig {
            threads,
            cache_capacity: 0,
        })
    }

    pub fn config(&self) -> EngineConfig {
        self.inner.config
    }

    pub fn threads(&self) -> usize {
        self.inner.config.threads
    }

    /// (cache hits, cache misses) since construction.
    pub fn cache_stats(&self) -> (usize, usize) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }

    // -----------------------------------------------------------------
    // Hash-consing.
    // -----------------------------------------------------------------

    /// Intern a value: structurally equal values (under `Eq`/`Hash`)
    /// yield [`Interned`] handles with the same id and shared storage.
    pub fn intern<T>(&self, value: T) -> Interned<T>
    where
        T: Eq + Hash + Send + Sync + 'static,
    {
        let pool = self.typed::<InternPool<T>>("intern");
        pool.intern(value)
    }

    // -----------------------------------------------------------------
    // Memoization.
    // -----------------------------------------------------------------

    /// Return the cached value for `key` in `namespace`, computing and
    /// storing it on a miss. With `cache_capacity == 0` this is just
    /// `compute()`.
    ///
    /// The cache is semantically transparent: `compute` must be a pure
    /// function of `key`.
    pub fn cached<K, V, F>(&self, namespace: &'static str, key: K, compute: F) -> V
    where
        K: Eq + Hash + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        F: FnOnce() -> V,
    {
        if self.inner.config.cache_capacity == 0 {
            return compute();
        }
        let cache = self.typed::<MemoCache<K, V>>(namespace);
        if let Some(v) = cache.get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        cache.put(key, v.clone(), self.inner.config.cache_capacity);
        v
    }

    /// Fetch-or-create the typed state object for `(T, namespace)`.
    /// Concurrent readers of an existing namespace share a read lock;
    /// only the first touch of a namespace takes the write lock.
    fn typed<T: Default + Send + Sync + 'static>(&self, namespace: &'static str) -> Arc<T> {
        let key = (TypeId::of::<T>(), namespace);
        if let Some(entry) = self
            .inner
            .state
            .read()
            .expect("engine state poisoned")
            .get(&key)
        {
            return Arc::clone(entry)
                .downcast::<T>()
                .expect("state keyed by TypeId");
        }
        let mut state = self.inner.state.write().expect("engine state poisoned");
        let entry = state
            .entry(key)
            .or_insert_with(|| Arc::new(T::default()) as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .expect("state keyed by TypeId")
    }

    // -----------------------------------------------------------------
    // Parallel fan-out.
    // -----------------------------------------------------------------

    /// Apply `f` to every item, in parallel when the engine has spare
    /// worker slots, and return the results **in input order**.
    ///
    /// Determinism: `results[i] == f(&items[i])` exactly as in the
    /// sequential loop; only wall-clock order differs.
    pub fn parallel_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let n = items.len();
        let want = self.inner.config.threads.min(n).saturating_sub(1);
        let helpers = if n < 2 || want == 0 {
            0
        } else {
            self.borrow_workers(want)
        };
        if helpers == 0 {
            return items.iter().map(&f).collect();
        }

        // `Mutex<Option<U>>` slots (rather than `OnceLock`) keep the
        // bound at `U: Send`; each slot is written exactly once.
        let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let value = f(&items[i]);
            *slots[i].lock().expect("result slot poisoned") = Some(value);
        };
        std::thread::scope(|scope| {
            for _ in 0..helpers {
                scope.spawn(work);
            }
            work();
        });
        self.return_workers(helpers);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("all indices processed")
            })
            .collect()
    }

    /// [`Engine::parallel_map`] over **owned** items: each item is moved
    /// into `f` exactly once, so workers can consume large buffers
    /// (staged relation batches, morsel outputs) without cloning them.
    /// Results come back **in input order**, identically to the
    /// sequential `items.into_iter().map(f)` loop.
    pub fn parallel_map_owned<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = items.len();
        let want = self.inner.config.threads.min(n).saturating_sub(1);
        let helpers = if n < 2 || want == 0 {
            0
        } else {
            self.borrow_workers(want)
        };
        if helpers == 0 {
            return items.into_iter().map(f).collect();
        }
        // Items are parked in take-once slots; each worker claims the
        // next index, takes the item, and writes the result slot.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("each index claimed once");
            let value = f(item);
            *results[i].lock().expect("result slot poisoned") = Some(value);
        };
        std::thread::scope(|scope| {
            for _ in 0..helpers {
                scope.spawn(work);
            }
            work();
        });
        self.return_workers(helpers);
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("all indices processed")
            })
            .collect()
    }

    /// Claim up to `want` extra worker slots, respecting the global
    /// thread budget across nested `parallel_map` calls.
    fn borrow_workers(&self, want: usize) -> usize {
        let budget = self.inner.config.threads.saturating_sub(1);
        let mut current = self.inner.borrowed_workers.load(Ordering::Relaxed);
        loop {
            let available = budget.saturating_sub(current);
            let take = want.min(available);
            if take == 0 {
                return 0;
            }
            match self.inner.borrowed_workers.compare_exchange_weak(
                current,
                current + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(actual) => current = actual,
            }
        }
    }

    fn return_workers(&self, count: usize) {
        self.inner
            .borrowed_workers
            .fetch_sub(count, Ordering::Relaxed);
    }
}

/// Number of threads a parallel engine uses by default.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker-thread count requested through the environment: the
/// `FQ_THREADS` variable when it parses as a positive integer, the
/// hardware thread count otherwise. `FQ_THREADS=1` pins every consumer
/// (CLI, benches, tests that honour it) to the sequential path — the
/// parallel ≡ sequential property contracts make this purely a
/// performance knob, never a semantic one.
pub fn threads_from_env() -> usize {
    match std::env::var("FQ_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_threads(),
        },
        Err(_) => available_threads(),
    }
}

impl Engine {
    /// Engine configured from the environment: `FQ_THREADS` worker
    /// threads (hardware threads when unset), default cache capacity.
    pub fn from_env() -> Self {
        Engine::new(EngineConfig {
            threads: threads_from_env(),
            ..EngineConfig::default()
        })
    }
}

// ---------------------------------------------------------------------
// Interner.
// ---------------------------------------------------------------------

/// A hash-consed value: one shared allocation per distinct value, with
/// id-based `O(1)` equality and hashing.
#[derive(Debug)]
pub struct Interned<T> {
    id: u64,
    value: Arc<T>,
}

impl<T> Interned<T> {
    /// The value's id: equal ids ⟺ structurally equal values (within
    /// one engine).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl<T> Clone for Interned<T> {
    fn clone(&self) -> Self {
        Interned {
            id: self.id,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> std::ops::Deref for Interned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> PartialEq for Interned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<T> Eq for Interned<T> {}

impl<T> Hash for Interned<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

/// Per-type hash-consing pool, sharded by value hash so concurrent
/// interners of *different* values rarely touch the same lock, and
/// re-interning an existing value (the hot case) takes only a shard
/// read lock. A value's shard is a pure function of its hash, so ids —
/// `slot_in_shard * SHARDS + shard` — stay canonical: one id per
/// distinct value for the engine's lifetime.
struct InternPool<T> {
    shards: Vec<RwLock<HashMap<Arc<T>, u64>>>,
}

impl<T> Default for InternPool<T> {
    fn default() -> Self {
        InternPool {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }
}

impl<T: Eq + Hash> InternPool<T> {
    fn intern(&self, value: T) -> Interned<T> {
        let shard = &self.shards[shard_of(&value)];
        {
            let map = shard.read().expect("intern pool poisoned");
            if let Some((stored, id)) = map.get_key_value(&value) {
                return Interned {
                    id: *id,
                    value: Arc::clone(stored),
                };
            }
        }
        let mut map = shard.write().expect("intern pool poisoned");
        // Re-check: another thread may have interned between the locks.
        if let Some((stored, id)) = map.get_key_value(&value) {
            return Interned {
                id: *id,
                value: Arc::clone(stored),
            };
        }
        let id = (map.len() * SHARDS + shard_of(&value)) as u64;
        let stored = Arc::new(value);
        map.insert(Arc::clone(&stored), id);
        Interned { id, value: stored }
    }
}

// ---------------------------------------------------------------------
// Memo cache.
// ---------------------------------------------------------------------

/// Bounded map cache, sharded by key hash: lookups take one shard's
/// read lock, so concurrent executors sharing an engine's caches read
/// without serializing. Capacity splits evenly across shards, and an
/// overflowing *shard* resets — predictable, allocation-cheap, and safe
/// for purely-memoizing uses (a reset only costs recomputation).
struct MemoCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    fn get(&self, key: &K) -> Option<V> {
        self.shards[shard_of(key)]
            .read()
            .expect("memo cache poisoned")
            .get(key)
            .cloned()
    }

    fn put(&self, key: K, value: V, capacity: usize) {
        let mut map = self.shards[shard_of(&key)]
            .write()
            .expect("memo cache poisoned");
        if map.len() >= capacity.div_ceil(SHARDS).max(1) {
            map.clear();
        }
        map.insert(key, value);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("memo cache poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_sequential_order() {
        let items: Vec<u64> = (0..500).collect();
        let sequential: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let engine = Engine::new(EngineConfig {
                threads,
                cache_capacity: 0,
            });
            let parallel = engine.parallel_map(&items, |x| x * x);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_owned_moves_items_and_keeps_order() {
        let items: Vec<Vec<u64>> = (0..100).map(|i| vec![i; 3]).collect();
        let expected: Vec<u64> = items.iter().map(|v| v.iter().sum()).collect();
        for threads in [1, 2, 4] {
            let engine = Engine::new(EngineConfig {
                threads,
                cache_capacity: 0,
            });
            let got = engine.parallel_map_owned(items.clone(), |v| v.into_iter().sum::<u64>());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn nested_parallel_maps_stay_within_budget() {
        let engine = Engine::new(EngineConfig {
            threads: 4,
            cache_capacity: 0,
        });
        let outer: Vec<u64> = (0..8).collect();
        let result = engine.parallel_map(&outer, |&i| {
            let inner: Vec<u64> = (0..50).collect();
            engine
                .parallel_map(&inner, |&j| i * 100 + j)
                .into_iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|i| (0..50).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(result, expected);
        assert_eq!(engine.inner.borrowed_workers.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn interning_shares_ids() {
        let engine = Engine::default();
        let a = engine.intern("hello".to_string());
        let b = engine.intern("hello".to_string());
        let c = engine.intern("world".to_string());
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(&*a, "hello");
    }

    #[test]
    fn cache_memoizes_and_respects_capacity_zero() {
        let engine = Engine::default();
        let mut calls = 0;
        let v1 = engine.cached("t", 7u64, || {
            calls += 1;
            42u64
        });
        let mut calls2 = 0;
        let v2 = engine.cached("t", 7u64, || {
            calls2 += 1;
            42u64
        });
        assert_eq!((v1, v2), (42, 42));
        assert_eq!((calls, calls2), (1, 0));
        assert_eq!(engine.cache_stats(), (1, 1));

        let cold = Engine::uncached(1);
        let mut cold_calls = 0;
        for _ in 0..3 {
            cold.cached("t", 7u64, || {
                cold_calls += 1;
                1u64
            });
        }
        assert_eq!(cold_calls, 3);
    }

    #[test]
    fn cache_namespaces_are_disjoint() {
        let engine = Engine::default();
        let a = engine.cached("ns-a", 1u64, || "a".to_string());
        let b = engine.cached("ns-b", 1u64, || "b".to_string());
        assert_eq!((a.as_str(), b.as_str()), ("a", "b"));
    }

    #[test]
    fn cache_overflow_resets_instead_of_growing() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            cache_capacity: 4,
        });
        for k in 0..1000u64 {
            engine.cached("bounded", k, || k);
        }
        let cache = engine.typed::<MemoCache<u64, u64>>("bounded");
        // Capacity splits across shards; each shard resets on overflow,
        // so the total stays bounded by one entry per shard slot.
        assert!(cache.len() <= SHARDS * 4usize.div_ceil(SHARDS).max(1));
    }

    #[test]
    fn caches_and_interner_are_shared_across_threads() {
        // One engine, many executors: concurrent interns of the same
        // value agree on one id, and a value cached by any thread is a
        // hit for every other.
        let engine = Engine::new(EngineConfig {
            threads: 1, // worker budget is irrelevant here
            ..EngineConfig::default()
        });
        let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        (0..200u64)
                            .map(|k| {
                                engine.cached("shared", k % 50, |/* pure */| k % 50);
                                engine.intern(format!("v{}", k % 50)).id()
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "interned ids are canonical");
        }
        let (hits, misses) = engine.cache_stats();
        assert_eq!(hits + misses, 8 * 200);
        assert!(misses <= 50 * 8, "worst case: every thread misses first");
        assert!(hits >= 8 * 200 - 50 * 8);
    }

    #[test]
    fn parallel_map_usable_from_cached_compute() {
        // The common composition: a cached QE step fans out internally.
        let engine = Engine::new(EngineConfig {
            threads: 4,
            cache_capacity: 16,
        });
        let items: Vec<u64> = (0..40).collect();
        let total = engine.cached("combo", 1u64, || {
            engine
                .parallel_map(&items, |x| x + 1)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(total, (1..=40).sum());
    }
}
