//! Concurrency properties behind `fq serve`: snapshot isolation (a
//! reader pinned to a snapshot sees bit-identical answers no matter how
//! many epochs a writer publishes mid-flight, and a fresh snapshot only
//! ever shows *whole* published batches) and cache transparency (an
//! executor whose plan/memo caches are shared across threads answers
//! exactly like a private, cold-cache executor).

use fq_engine::{Engine, EngineConfig};
use fq_json::ToJson;
use fq_query::{DomainId, Executor, QueryService};
use fq_relational::{Schema, SharedState, State, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new().with_relation("R", 2).with_relation("S", 1)
}

fn arb_state() -> impl Strategy<Value = State> {
    (
        proptest::collection::btree_set((0u64..5, 0u64..5), 0..6),
        proptest::collection::btree_set(0u64..5, 0..4),
    )
        .prop_map(|(r, s)| {
            let mut state = State::new(schema());
            for (a, b) in r {
                state.insert("R", vec![Value::Nat(a), Value::Nat(b)]);
            }
            for a in s {
                state.insert("S", vec![Value::Nat(a)]);
            }
            state
        })
}

/// Safe-range query pool exercising every operator the serve loop can
/// meet: scans, joins, negation, projection-with-dedup, disjunction,
/// and a closed sentence (decided, not enumerated).
const QUERIES: &[&str] = &[
    "R(x, y)",
    "S(x)",
    "R(x, y) & S(y)",
    "exists y. R(x, y)",
    "R(x, y) & !S(x)",
    "S(x) & !(exists y. R(x, y))",
    "R(x, y) | R(y, x)",
    "exists x. exists y. R(x, y) & S(x)",
    "R(x, x)",
    "exists y. R(x, y) & R(y, z)",
];

const INITIAL_ROWS: u64 = 10;
const BATCH: u64 = 5;
const BATCHES: u64 = 20;

fn seeded_shared() -> Arc<SharedState> {
    let mut state = State::new(schema());
    for i in 0..INITIAL_ROWS {
        state.insert("R", vec![Value::Nat(i), Value::Nat(i + 1)]);
        if i % 3 == 0 {
            state.insert("S", vec![Value::Nat(i)]);
        }
    }
    Arc::new(SharedState::new(state))
}

/// Batch `b` of the writer: `BATCH` rows that exist in no other batch
/// and not in the seed, so every publish grows `R` by exactly `BATCH`.
fn batch_rows(b: u64) -> Vec<Vec<Value>> {
    (0..BATCH)
        .map(|i| vec![Value::Nat(1_000 + b * 100 + i), Value::Nat(b)])
        .collect()
}

/// Readers pinned to the epoch-0 snapshot re-execute the whole query
/// pool while a writer publishes twenty epochs; every re-execution must
/// be bit-identical to the pre-publish baseline, and every *fresh*
/// snapshot must show `R` grown by a whole number of batches — never a
/// torn publish.
#[test]
fn pinned_readers_are_isolated_and_publishes_are_atomic() {
    let shared = seeded_shared();
    let exec = Executor::new(Engine::new(EngineConfig {
        threads: 2,
        ..Default::default()
    }));

    let pinned = shared.snapshot();
    let baselines: Vec<_> = QUERIES
        .iter()
        .map(|q| exec.execute_snapshot(&pinned, q, DomainId::Eq).expect(q))
        .collect();

    std::thread::scope(|scope| {
        let writer = {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for b in 0..BATCHES {
                    let (added, epoch) = shared.ingest("R", batch_rows(b)).expect("ingest");
                    assert_eq!(added, BATCH as usize, "batch {b} rows are all fresh");
                    assert_eq!(epoch, b + 1, "one epoch per published batch");
                }
            })
        };

        // Pinned readers: the writer must be invisible to them.
        for reader in 0..3 {
            let exec = exec.clone();
            let pinned = pinned.clone();
            let baselines = &baselines;
            scope.spawn(move || {
                for round in 0..8 {
                    for (q, base) in QUERIES.iter().zip(baselines) {
                        let out = exec.execute_snapshot(&pinned, q, DomainId::Eq).expect(q);
                        assert_eq!(out.rows, base.rows, "reader {reader} round {round}: {q}");
                        assert_eq!(out.vars, base.vars);
                        assert_eq!(out.stats.snapshot_epoch, Some(0));
                    }
                }
            });
        }

        // Fresh-snapshot readers: only whole batches, epochs consistent.
        for _ in 0..2 {
            let shared = Arc::clone(&shared);
            let exec = exec.clone();
            scope.spawn(move || {
                for _ in 0..40 {
                    let snap = shared.snapshot();
                    let grown = snap.relation_size("R") as u64 - INITIAL_ROWS;
                    assert_eq!(grown % BATCH, 0, "no reader may see a half-published batch");
                    assert_eq!(grown / BATCH, snap.epoch(), "epoch counts whole batches");
                    let out = exec
                        .execute_snapshot(&snap, "R(x, y)", DomainId::Eq)
                        .expect("scan");
                    assert_eq!(out.rows.len() as u64, INITIAL_ROWS + grown);
                    assert_eq!(out.stats.snapshot_epoch, Some(snap.epoch()));
                }
            });
        }

        writer.join().expect("writer");
    });

    let final_snap = shared.snapshot();
    assert_eq!(final_snap.epoch(), BATCHES);
    assert_eq!(
        final_snap.relation_size("R") as u64,
        INITIAL_ROWS + BATCHES * BATCH
    );
    // The pinned snapshot still answers from epoch 0 after the fact.
    let after = exec
        .execute_snapshot(&pinned, "R(x, y)", DomainId::Eq)
        .expect("scan");
    assert_eq!(after.rows, baselines[0].rows);
}

/// The same invariant through the serve protocol layer: concurrent
/// `query` and `ingest` requests against one [`QueryService`] never
/// expose a row count that is not a whole number of batches, and every
/// response carries the epoch it executed against.
#[test]
fn service_requests_never_observe_torn_batches() {
    let service = Arc::new(QueryService::new(seeded_shared(), Executor::default()));

    std::thread::scope(|scope| {
        let writer = {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for b in 0..BATCHES {
                    let req = fq_json::object([
                        ("cmd", fq_json::Value::Str("ingest".into())),
                        ("relation", fq_json::Value::Str("R".into())),
                        ("rows", batch_rows(b).to_json()),
                    ]);
                    let resp =
                        fq_json::parse(&service.handle_line(&req.to_compact())).expect("json");
                    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
                    assert_eq!(
                        resp.get("added").and_then(|v| v.as_int()),
                        Some(BATCH as i128)
                    );
                }
            })
        };

        for _ in 0..3 {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let req = r#"{"cmd": "query", "query": "R(x, y)", "domain": "eq"}"#;
                for _ in 0..30 {
                    let resp = fq_json::parse(&service.handle_line(req)).expect("json");
                    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
                    let rows = resp
                        .get("rows")
                        .and_then(|v| v.as_array())
                        .expect("rows array");
                    let epoch = resp.get("epoch").and_then(|v| v.as_int()).expect("epoch") as u64;
                    let grown = rows.len() as u64 - INITIAL_ROWS;
                    assert_eq!(grown % BATCH, 0, "torn batch visible through serve");
                    assert_eq!(grown / BATCH, epoch);
                }
            });
        }

        writer.join().expect("writer");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An executor whose caches are *shared* — reused across a whole
    /// random workload and cloned into `threads` concurrent workers —
    /// answers every query exactly like a fresh private executor with
    /// cold caches. Caching and sharding must be invisible.
    #[test]
    fn shared_cache_executor_matches_private(
        state in arb_state(),
        picks in proptest::collection::vec(0usize..QUERIES.len(), 1..10),
        threads in 1usize..=8,
    ) {
        let shared_exec = Executor::new(Engine::new(EngineConfig {
            threads: threads.min(4),
            ..Default::default()
        }));
        let workload: Vec<&str> = picks.iter().map(|&i| QUERIES[i]).collect();

        // Private baseline: cold caches for every single query.
        let mut expected = Vec::new();
        for q in &workload {
            let private = Executor::new(Engine::new(EngineConfig {
                threads: 1,
                ..Default::default()
            }));
            expected.push(private.execute(&state, q, DomainId::Eq));
        }

        // `threads` workers hammer the one shared executor concurrently,
        // each running the full workload (so plans are hit repeatedly).
        let runs: Vec<Vec<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let exec = shared_exec.clone();
                    let workload = &workload;
                    let state = &state;
                    scope.spawn(move || {
                        workload
                            .iter()
                            .map(|q| exec.execute(state, q, DomainId::Eq))
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });

        for run in &runs {
            for (got, want) in run.iter().zip(&expected) {
                match (got, want) {
                    (Ok(got), Ok(want)) => {
                        prop_assert_eq!(&got.rows, &want.rows);
                        prop_assert_eq!(&got.vars, &want.vars);
                        prop_assert_eq!(&got.completeness, &want.completeness);
                    }
                    (Err(g), Err(w)) => prop_assert_eq!(g.to_string(), w.to_string()),
                    (got, want) => prop_assert!(
                        false,
                        "shared {:?} vs private {:?}",
                        got.is_ok(),
                        want.is_ok()
                    ),
                }
            }
        }
    }
}
