//! Errors of the compile → plan → execute pipeline.

use fq_domains::DomainError;
use fq_logic::LogicError;

/// Anything that can go wrong between receiving a query string and
/// returning a [`crate::QueryOutcome`]. Every variant carries enough
/// source context to be printed to a CLI user as-is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query text does not parse.
    Parse {
        /// The offending query text.
        source: String,
        /// The parser's diagnosis.
        error: LogicError,
    },
    /// A database relation is used with the wrong arity, or a scheme
    /// symbol is used in a position its kind forbids.
    Signature {
        /// The offending query text.
        source: String,
        /// What the signature check found.
        detail: String,
    },
    /// The domain name is not in the [`crate::DomainRegistry`].
    UnknownDomain {
        /// The name that failed to resolve.
        name: String,
    },
    /// A schema (or state) file failed to load. Both parse attempts are
    /// reported: the file is accepted either as a bare `Schema` or as a
    /// full `State`, and a malformed file must not hide the schema
    /// diagnosis behind the state one.
    SchemaLoad {
        /// The file path as given on the command line.
        path: String,
        /// Why the text is not a bare `Schema`.
        schema_error: String,
        /// Why the text is not a full `State` either.
        state_error: String,
    },
    /// A domain decision procedure failed during planning or execution.
    Domain(DomainError),
    /// Active-domain evaluation failed (an uninterpreted symbol, most
    /// commonly a predicate the chosen domain does not speak).
    Eval(LogicError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse { source, error } => {
                write!(f, "cannot parse query `{source}`: {error}")
            }
            QueryError::Signature { source, detail } => {
                write!(f, "query `{source}` does not match the scheme: {detail}")
            }
            QueryError::UnknownDomain { name } => {
                write!(
                    f,
                    "unknown domain `{name}` (expected one of {})",
                    crate::registry::domain_names().join("|")
                )
            }
            QueryError::SchemaLoad {
                path,
                schema_error,
                state_error,
            } => {
                write!(
                    f,
                    "`{path}` is neither a schema nor a state:\n  as a schema: {schema_error}\n  as a state:  {state_error}"
                )
            }
            QueryError::Domain(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<DomainError> for QueryError {
    fn from(e: DomainError) -> Self {
        QueryError::Domain(e)
    }
}
