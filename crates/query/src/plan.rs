//! Stage 2 — **plan**: choose an execution strategy for a compiled
//! query and record *why* it was chosen.
//!
//! The choice mirrors the paper's taxonomy. A safe-range query is
//! domain-independent and compiles to relational algebra (Codd's
//! theorem); a safe-range query whose atoms the algebra cannot express
//! falls back to active-domain evaluation (sound for exactly the
//! domain-independent queries); everything else goes through the
//! Section 1.1 enumerate-and-ask loop, preceded by a relative-safety
//! check (Theorems 2.5/2.6/3.3) that predicts whether the loop can
//! terminate; and a sentence needs no enumeration at all — translate
//! the state into it (Section 1.1) and hand it to the domain's decision
//! procedure.

use crate::compile::CompiledQuery;
use crate::error::QueryError;
use crate::registry::{DomainId, DomainRegistry};
use fq_relational::algebra::{compile as compile_algebra, AlgebraExpr};
use fq_relational::optimize::optimize;
use fq_relational::State;

/// What the relative-safety precheck said about the answer in this
/// state, before any enumeration started.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precheck {
    /// The answer is certified finite — enumerate-and-ask will
    /// terminate with a complete answer.
    Finite,
    /// The answer is certified infinite — only a budgeted partial
    /// answer is possible.
    Infinite,
    /// Relative safety is undecidable over this domain (Theorem 3.3):
    /// the loop runs under an honest budget.
    Undecidable,
}

/// The chosen execution strategy, with its justification.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryPlan {
    /// Safe-range ⟹ compile to relational algebra and evaluate over the
    /// stored relations only.
    Algebra {
        /// The direct Codd translation (kept as the reference form).
        expr: AlgebraExpr,
        /// The rewritten expression the physical executor runs —
        /// equivalent to `expr` on every state (the optimizer preserves
        /// the tuple set and attribute order).
        optimized: AlgebraExpr,
        /// The rewrites applied, in order (plans are per-state, so
        /// state-statistics-driven decisions are cache-safe).
        rewrites: Vec<String>,
        justification: String,
    },
    /// Safe-range but outside the algebra fragment ⟹ active-domain
    /// evaluation (equivalent for domain-independent queries).
    ActiveDomain { justification: String },
    /// Not safe-range ⟹ the Section 1.1 enumerate-and-ask loop with an
    /// explicit candidate budget, after a relative-safety precheck.
    EnumerateAndAsk {
        precheck: Precheck,
        max_candidates: usize,
        justification: String,
    },
    /// A sentence ⟹ translate the state into the query (Section 1.1)
    /// and decide it over the domain theory.
    QeDecide { justification: String },
}

impl QueryPlan {
    /// Short strategy name for reports and tests.
    pub fn strategy(&self) -> &'static str {
        match self {
            QueryPlan::Algebra { .. } => "algebra",
            QueryPlan::ActiveDomain { .. } => "active-domain",
            QueryPlan::EnumerateAndAsk { .. } => "enumerate-and-ask",
            QueryPlan::QeDecide { .. } => "qe-decide",
        }
    }

    /// Why this strategy was chosen.
    pub fn justification(&self) -> &str {
        match self {
            QueryPlan::Algebra { justification, .. }
            | QueryPlan::ActiveDomain { justification }
            | QueryPlan::EnumerateAndAsk { justification, .. }
            | QueryPlan::QeDecide { justification } => justification,
        }
    }

    /// The optimizer rewrites applied (algebra plans only).
    pub fn rewrites(&self) -> &[String] {
        match self {
            QueryPlan::Algebra { rewrites, .. } => rewrites,
            _ => &[],
        }
    }
}

/// A compiled query with its chosen plan — the unit the executor runs
/// and the plan cache stores.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedQuery {
    pub compiled: CompiledQuery,
    pub domain: DomainId,
    pub plan: QueryPlan,
}

impl PlannedQuery {
    /// Multi-line human-readable explanation of the plan.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("query:      {}\n", self.compiled.source));
        out.push_str(&format!("normalized: {}\n", self.compiled.normalized));
        out.push_str(&format!(
            "answer:     {}\n",
            if self.compiled.free_vars.is_empty() {
                "boolean (sentence)".to_string()
            } else {
                format!("({})", self.compiled.free_vars.join(", "))
            }
        ));
        out.push_str(&format!("domain:     {}\n", self.domain));
        out.push_str(&format!("strategy:   {}\n", self.plan.strategy()));
        out.push_str(&format!("why:        {}", self.plan.justification()));
        if let QueryPlan::Algebra { rewrites, .. } = &self.plan {
            if rewrites.is_empty() {
                out.push_str("\nrewrites:   none (expression already canonical)");
            } else {
                out.push_str("\nrewrites:");
                for r in rewrites {
                    out.push_str(&format!("\n  - {r}"));
                }
            }
        }
        out
    }
}

/// Choose a plan for `compiled` over `domain` in `state`.
///
/// The choice is deterministic: the same (query, domain, state) triple
/// always yields the same plan, which is what makes the plan cache
/// semantically transparent.
pub fn plan(
    compiled: &CompiledQuery,
    domain: DomainId,
    state: &State,
    max_candidates: usize,
) -> Result<PlannedQuery, QueryError> {
    let registry = DomainRegistry;
    let chosen = if compiled.is_sentence() {
        QueryPlan::QeDecide {
            justification: format!(
                "the query is a sentence: fold the state into it (§1.1 translation) and \
                 decide it with the {} decision procedure",
                domain
            ),
        }
    } else {
        match compiled.safe_range() {
            Ok(()) => match compile_algebra(&compiled.schema, &compiled.query) {
                Ok(expr) => {
                    let opt = optimize(&expr, state);
                    QueryPlan::Algebra {
                        expr,
                        optimized: opt.expr,
                        rewrites: opt.rewrites,
                        justification: "the query is safe-range, hence domain-independent; \
                                        compiled to relational algebra (Codd's theorem) and \
                                        evaluated over the stored relations only"
                            .to_string(),
                    }
                }
                Err(e) => QueryPlan::ActiveDomain {
                    justification: format!(
                        "the query is safe-range, hence domain-independent, but outside \
                         the algebra fragment ({e}); active-domain evaluation is \
                         equivalent for domain-independent queries"
                    ),
                },
            },
            Err(not_sr) => {
                let precheck = match registry.relative_safety(
                    domain,
                    state,
                    &compiled.normalized,
                    &compiled.free_vars,
                )? {
                    Some(true) => Precheck::Finite,
                    Some(false) => Precheck::Infinite,
                    None => Precheck::Undecidable,
                };
                let outlook = match precheck {
                    Precheck::Finite => {
                        "relative safety certifies a FINITE answer in this state, so \
                         enumerate-and-ask (§1.1) terminates with a complete answer"
                    }
                    Precheck::Infinite => {
                        "relative safety certifies an INFINITE answer in this state, so \
                         only a budgeted partial answer is possible"
                    }
                    Precheck::Undecidable => {
                        "relative safety is undecidable over T (Theorem 3.3), so the loop \
                         runs under an honest budget"
                    }
                };
                QueryPlan::EnumerateAndAsk {
                    precheck,
                    max_candidates,
                    justification: format!(
                        "the query is not safe-range ({not_sr}); {outlook} \
                         (budget: {max_candidates} candidates)"
                    ),
                }
            }
        }
    };
    Ok(PlannedQuery {
        compiled: compiled.clone(),
        domain,
        plan: chosen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use fq_engine::Engine;
    use fq_relational::{Schema, Value};

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
    }

    fn plan_for(src: &str, domain: DomainId) -> PlannedQuery {
        let state = fathers();
        let engine = Engine::sequential();
        let compiled = compile(state.schema(), src, &engine).unwrap();
        plan(&compiled, domain, &state, 100).unwrap()
    }

    #[test]
    fn safe_range_relational_query_plans_to_algebra() {
        let p = plan_for("exists y. F(x, y) & F(y, z)", DomainId::Eq);
        assert_eq!(p.plan.strategy(), "algebra");
        assert!(p.plan.justification().contains("safe-range"));
    }

    #[test]
    fn safe_range_with_domain_predicate_plans_to_active_domain() {
        let p = plan_for("exists y. F(x, y) & x < y", DomainId::Nat);
        assert_eq!(p.plan.strategy(), "active-domain");
        assert!(p
            .plan
            .justification()
            .contains("outside the algebra fragment"));
    }

    #[test]
    fn unsafe_query_plans_to_enumerate_and_ask() {
        let p = plan_for("!F(x, y)", DomainId::Nat);
        match &p.plan {
            QueryPlan::EnumerateAndAsk { precheck, .. } => {
                assert_eq!(*precheck, Precheck::Infinite);
            }
            other => panic!("unexpected plan {other:?}"),
        }
        // A finite-but-unsafe query prechecks Finite.
        let p = plan_for(
            "(forall y. (exists p. F(y, p) | F(p, y)) -> y < x) & \
             forall z. z < x -> exists y. (exists p. F(y, p) | F(p, y)) & z <= y",
            DomainId::Presburger,
        );
        match &p.plan {
            QueryPlan::EnumerateAndAsk { precheck, .. } => {
                assert_eq!(*precheck, Precheck::Finite);
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn sentences_plan_to_qe_decide() {
        let p = plan_for("exists x y. F(x, y)", DomainId::Eq);
        assert_eq!(p.plan.strategy(), "qe-decide");
    }

    #[test]
    fn planning_is_deterministic() {
        for src in ["exists y. F(x, y)", "!F(x, y)", "exists x. F(x, x)"] {
            let a = plan_for(src, DomainId::Nat);
            let b = plan_for(src, DomainId::Nat);
            assert_eq!(a, b, "{src}");
        }
    }
}
