//! Stage 1 — **compile**: parse the query text, bind scheme constants,
//! check it against the scheme's signature, and normalize it once
//! (NNF + constant folding) so every later stage and every cache key
//! works on the same canonical formula.

use crate::error::QueryError;
use fq_engine::Engine;
use fq_logic::transform::{nnf, simplify};
use fq_logic::{bind_constants, parse_formula, Formula};
use fq_relational::safe_range::{check_safe_range, NotSafeRange};
use fq_relational::Schema;

/// A query after the compile stage: parsed, constant-bound, checked
/// against the scheme, and normalized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledQuery {
    /// The query text as received.
    pub source: String,
    /// The scheme the query was compiled against.
    pub schema: Schema,
    /// Parse result with scheme constants bound (`c` becomes a named
    /// constant rather than a free variable).
    pub query: Formula,
    /// One-time normalization: negation normal form, constants folded.
    /// All execution strategies run on this form.
    pub normalized: Formula,
    /// Free (answer) variables, sorted.
    pub free_vars: Vec<String>,
    /// Hash-consed id of the normalized formula in the compiling
    /// engine's intern pool — `O(1)` equality for cache keys.
    pub query_id: u64,
}

impl CompiledQuery {
    /// Is the query a sentence (no answer variables)?
    pub fn is_sentence(&self) -> bool {
        self.free_vars.is_empty()
    }

    /// The classic syntactic safe-range test against the compiled
    /// scheme — `Ok` means provably domain-independent.
    pub fn safe_range(&self) -> Result<(), NotSafeRange> {
        check_safe_range(&self.schema, &self.query)
    }
}

/// Compile `source` against `schema`.
pub fn compile(
    schema: &Schema,
    source: &str,
    engine: &Engine,
) -> Result<CompiledQuery, QueryError> {
    let raw = parse_formula(source).map_err(|error| QueryError::Parse {
        source: source.to_string(),
        error,
    })?;
    let query = bind_constants(&raw, &schema.constants().iter().cloned().collect());
    check_relation_arities(schema, &query).map_err(|detail| QueryError::Signature {
        source: source.to_string(),
        detail,
    })?;
    let normalized = simplify(&nnf(&query));
    let free_vars: Vec<String> = query.free_vars().into_iter().collect();
    let query_id = engine.intern(normalized.to_string()).id();
    Ok(CompiledQuery {
        source: source.to_string(),
        schema: schema.clone(),
        query,
        normalized,
        free_vars,
        query_id,
    })
}

/// Check every database relation atom against its declared arity.
/// Domain predicates (anything the scheme does not declare) pass — the
/// chosen domain interprets or rejects them at plan/execute time.
fn check_relation_arities(schema: &Schema, query: &Formula) -> Result<(), String> {
    let mut problem = None;
    query.visit(&mut |f| {
        if problem.is_some() {
            return;
        }
        if let Formula::Pred(name, args) = f {
            if let Some(arity) = schema.arity(name.as_str()) {
                if args.len() != arity {
                    problem = Some(format!(
                        "relation `{name}` has arity {arity}, used with {} arguments",
                        args.len()
                    ));
                }
            }
        }
    });
    match problem {
        None => Ok(()),
        Some(p) => Err(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new().with_relation("F", 2).with_constant("c")
    }

    #[test]
    fn compiles_and_normalizes() {
        let engine = Engine::sequential();
        let c = compile(&schema(), "!(!F(x, y) | x = y)", &engine).unwrap();
        assert_eq!(c.free_vars, vec!["x".to_string(), "y".to_string()]);
        // NNF pushed the negation inward.
        assert_eq!(c.normalized.to_string(), "F(x, y) & x != y");
    }

    #[test]
    fn parse_errors_carry_the_source() {
        let engine = Engine::sequential();
        match compile(&schema(), "exists x. (", &engine) {
            Err(QueryError::Parse { source, .. }) => assert_eq!(source, "exists x. ("),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_a_signature_error() {
        let engine = Engine::sequential();
        match compile(&schema(), "F(x, y, z)", &engine) {
            Err(QueryError::Signature { detail, .. }) => {
                assert!(detail.contains("arity 2"), "{detail}")
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn scheme_constants_are_bound_not_free() {
        let engine = Engine::sequential();
        let c = compile(&schema(), "F(c, x)", &engine).unwrap();
        assert_eq!(c.free_vars, vec!["x".to_string()]);
        assert!(!c.is_sentence());
    }

    #[test]
    fn interning_gives_equal_ids_for_equal_queries() {
        let engine = Engine::sequential();
        let a = compile(&schema(), "F(x, y) & x != y", &engine).unwrap();
        // A differently written but normalization-equal query.
        let b = compile(&schema(), "!(!F(x, y) | x = y)", &engine).unwrap();
        assert_eq!(a.query_id, b.query_id);
    }
}
