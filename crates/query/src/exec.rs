//! Stage 3 — **execute**: run a planned query through the engine,
//! memoizing plans in the `query.plan` namespace so a repeated query
//! skips the whole compile + plan work (including any relative-safety
//! precheck, the expensive part), and return a uniform [`QueryOutcome`].

use crate::compile::{compile, CompiledQuery};
use crate::error::QueryError;
use crate::plan::{plan, PlannedQuery, QueryPlan};
use crate::registry::{DomainId, DomainRegistry};
use fq_core::answer::AnswerOutcome;
use fq_engine::Engine;
use fq_relational::{
    translate_to_domain_formula, ExecOpts, OpStat, PhysicalPlan, Schema, Snapshot, State, Value,
    DEFAULT_MORSEL_ROWS,
};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The memo namespace holding planned queries.
pub const PLAN_CACHE_NAMESPACE: &str = "query.plan";

/// Default candidate budget for the enumerate-and-ask strategy.
pub const DEFAULT_MAX_CANDIDATES: usize = 10_000;

/// How complete the returned answer is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// The answer is provably complete (algebra / active-domain on a
    /// domain-independent query, or a certified enumerate-and-ask run).
    Certified,
    /// The candidate budget ran out; `rows` is a partial answer.
    Partial {
        candidates_tried: usize,
        max_candidates: usize,
    },
    /// The query was a sentence; `value` is its truth in the state.
    Decided { value: bool },
}

/// Engine, cache, and storage counters observed during one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Did the plan come from the `query.plan` cache?
    pub plan_cached: bool,
    /// Engine-wide memo hits after this execution.
    pub engine_hits: usize,
    /// Engine-wide memo misses after this execution.
    pub engine_misses: usize,
    /// Entries in the state's interning dictionary (strings plus
    /// naturals too large to store inline).
    pub dict_entries: usize,
    /// Interned strings among those entries.
    pub dict_strings: usize,
    /// Tuples in the state's columnar store, across all relations.
    pub stored_rows: usize,
    /// Worker threads the physical executor may fan out on (1 means the
    /// fully sequential path ran).
    pub threads: usize,
    /// Rows per morsel in the parallel executor's schedule.
    pub morsel_rows: usize,
    /// Publication epoch of the snapshot executed against (`None` when
    /// the query ran on a free-standing state).
    pub snapshot_epoch: Option<u64>,
    /// `query.plan` cache hits across this executor's lifetime (shared
    /// by every clone, so serve workers aggregate into one counter).
    pub plan_hits: usize,
    /// `query.plan` cache misses across this executor's lifetime.
    pub plan_misses: usize,
    /// Content fingerprint of the state executed against — the same
    /// value plan-cache keys and `snapshot-info` report, so callers can
    /// correlate an outcome with a published snapshot cheaply.
    pub state_fingerprint: u128,
}

/// The uniform result of the pipeline: answers, a completeness
/// certificate, the plan that produced them, and engine statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// Answer variables, sorted (column order of `rows`).
    pub vars: Vec<String>,
    /// Answer tuples.
    pub rows: Vec<Vec<Value>>,
    /// Completeness certificate.
    pub completeness: Completeness,
    /// The plan that was executed.
    pub plan: QueryPlan,
    /// Engine and cache statistics.
    pub stats: ExecStats,
    /// Physical operator cardinalities (algebra strategy only; empty for
    /// the other strategies).
    pub operators: Vec<OpStat>,
}

impl QueryOutcome {
    /// Was the answer certified complete (or the sentence decided)?
    pub fn is_complete(&self) -> bool {
        !matches!(self.completeness, Completeness::Partial { .. })
    }
}

/// The pipeline driver: one engine handle, one plan cache, every
/// answering strategy behind a single entry point.
#[derive(Clone, Debug)]
pub struct Executor {
    engine: Engine,
    registry: DomainRegistry,
    max_candidates: usize,
    morsel_rows: usize,
    /// Plan-cache traffic, shared across clones: a serve loop hands one
    /// executor clone per connection and still reads one hit/miss pair.
    plan_hits: Arc<AtomicUsize>,
    plan_misses: Arc<AtomicUsize>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(Engine::sequential())
    }
}

impl Executor {
    pub fn new(engine: Engine) -> Self {
        Executor {
            engine,
            registry: DomainRegistry,
            max_candidates: DEFAULT_MAX_CANDIDATES,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            plan_hits: Arc::new(AtomicUsize::new(0)),
            plan_misses: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// An executor on the environment-configured engine: `FQ_THREADS`
    /// pins the worker-pool width, else every available core is used.
    pub fn from_env() -> Self {
        Executor::new(Engine::from_env())
    }

    /// Replace the enumerate-and-ask candidate budget.
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.max_candidates = max_candidates;
        self
    }

    /// Replace the parallel executor's morsel size.
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows;
        self
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// (hits, misses) of the `query.plan` cache across this executor
    /// and every clone sharing its counters.
    pub fn plan_cache_stats(&self) -> (usize, usize) {
        (
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
        )
    }

    /// Stage 1 only: compile a query against a scheme.
    pub fn compile(&self, schema: &Schema, source: &str) -> Result<CompiledQuery, QueryError> {
        compile(schema, source, &self.engine)
    }

    /// Stages 1–2, memoized: compile and plan, returning the plan and
    /// whether it came from the `query.plan` cache.
    ///
    /// The key's state component is [`State::fingerprint`] — a cached
    /// 128-bit content hash — so a lookup costs O(1) in the state size
    /// instead of re-serializing the whole state per call, and two
    /// states with equal content (snapshots of the same epoch, replays)
    /// share one cache entry.
    pub fn plan(
        &self,
        state: &State,
        source: &str,
        domain: DomainId,
    ) -> Result<(PlannedQuery, bool), QueryError> {
        let key = (
            domain,
            source.to_string(),
            state.fingerprint(),
            self.max_candidates,
        );
        let computed = Cell::new(false);
        let planned = self.engine.cached(PLAN_CACHE_NAMESPACE, key, || {
            computed.set(true);
            let compiled = compile(state.schema(), source, &self.engine)?;
            plan(&compiled, domain, state, self.max_candidates)
        })?;
        if computed.get() {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok((planned, !computed.get()))
    }

    /// The full pipeline: compile (cached), plan (cached), execute.
    pub fn execute(
        &self,
        state: &State,
        source: &str,
        domain: DomainId,
    ) -> Result<QueryOutcome, QueryError> {
        self.execute_inner(state, source, domain, None)
    }

    /// [`Executor::execute`] against a pinned [`Snapshot`]: the borrow
    /// keeps the snapshot's columns alive for the whole run, and the
    /// outcome records the epoch it executed against. This is the serve
    /// loop's entry point — many executors, one shared store, each
    /// query isolated on the snapshot it pinned.
    pub fn execute_snapshot(
        &self,
        snapshot: &Snapshot,
        source: &str,
        domain: DomainId,
    ) -> Result<QueryOutcome, QueryError> {
        self.execute_inner(snapshot, source, domain, Some(snapshot.epoch()))
    }

    fn execute_inner(
        &self,
        state: &State,
        source: &str,
        domain: DomainId,
        snapshot_epoch: Option<u64>,
    ) -> Result<QueryOutcome, QueryError> {
        let (planned, plan_cached) = self.plan(state, source, domain)?;
        let mut outcome = self.run(state, &planned)?;
        outcome.stats.plan_cached = plan_cached;
        let (hits, misses) = self.engine.cache_stats();
        outcome.stats.engine_hits = hits;
        outcome.stats.engine_misses = misses;
        outcome.stats.dict_entries = state.dict().len();
        outcome.stats.dict_strings = state.dict().strings();
        outcome.stats.stored_rows = state.size();
        outcome.stats.threads = self.engine.threads();
        outcome.stats.morsel_rows = self.morsel_rows;
        outcome.stats.snapshot_epoch = snapshot_epoch;
        // Cached on the state by plan(), so this is a read, not a hash.
        outcome.stats.state_fingerprint = state.fingerprint();
        let (plan_hits, plan_misses) = self.plan_cache_stats();
        outcome.stats.plan_hits = plan_hits;
        outcome.stats.plan_misses = plan_misses;
        Ok(outcome)
    }

    /// Convenience: decide a pure-domain sentence (no state).
    pub fn decide(&self, domain: DomainId, source: &str) -> Result<bool, QueryError> {
        let state = State::new(Schema::new());
        let out = self.execute(&state, source, domain)?;
        match out.completeness {
            Completeness::Decided { value } => Ok(value),
            _ => Err(QueryError::Domain(fq_domains::DomainError::NotASentence {
                free: out.vars,
            })),
        }
    }

    /// Convenience: relative safety of a query in a state over a domain
    /// (`None` where undecidable, i.e. over **T**).
    pub fn relative_safety(
        &self,
        state: &State,
        source: &str,
        domain: DomainId,
    ) -> Result<Option<bool>, QueryError> {
        let compiled = self.compile(state.schema(), source)?;
        self.registry
            .relative_safety(domain, state, &compiled.normalized, &compiled.free_vars)
            .map_err(QueryError::Domain)
    }

    /// Execute a planned query (stage 3 proper).
    fn run(&self, state: &State, planned: &PlannedQuery) -> Result<QueryOutcome, QueryError> {
        let compiled = &planned.compiled;
        let vars = compiled.free_vars.clone();
        let mut operators = Vec::new();
        let (rows, completeness) = match &planned.plan {
            QueryPlan::Algebra { optimized, .. } => {
                // The morsel fan-out self-disables on a 1-thread engine,
                // so this is exactly the sequential path by default.
                let report = PhysicalPlan::compile(optimized).execute_with_stats_on(
                    state,
                    &self.engine,
                    ExecOpts {
                        morsel_rows: self.morsel_rows,
                    },
                );
                operators = report.operators;
                let rel = report.relation.reorder(&vars);
                (rel.tuples.into_iter().collect(), Completeness::Certified)
            }
            QueryPlan::ActiveDomain { .. } => {
                let rows = self
                    .registry
                    .eval_active(
                        planned.domain,
                        state,
                        &compiled.normalized,
                        &vars,
                        &self.engine,
                    )
                    .map_err(QueryError::Eval)?;
                (rows, Completeness::Certified)
            }
            QueryPlan::EnumerateAndAsk { max_candidates, .. } => {
                let out = self.registry.answer(
                    planned.domain,
                    state,
                    &compiled.normalized,
                    &vars,
                    *max_candidates,
                    &self.engine,
                )?;
                match out {
                    AnswerOutcome::Complete(rows) => (rows, Completeness::Certified),
                    AnswerOutcome::BudgetExhausted {
                        found,
                        candidates_tried,
                    } => (
                        found,
                        Completeness::Partial {
                            candidates_tried,
                            max_candidates: *max_candidates,
                        },
                    ),
                }
            }
            QueryPlan::QeDecide { .. } => {
                let sentence = translate_to_domain_formula(&compiled.normalized, state);
                let value = self
                    .registry
                    .decide(planned.domain, &sentence, &self.engine)?;
                (Vec::new(), Completeness::Decided { value })
            }
        };
        Ok(QueryOutcome {
            vars,
            rows,
            completeness,
            plan: planned.plan.clone(),
            stats: ExecStats::default(),
            operators,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_engine::EngineConfig;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
    }

    #[test]
    fn algebra_path_answers_the_m_query() {
        let exec = Executor::default();
        let out = exec
            .execute(
                &fathers(),
                "exists y z. y != z & F(x, y) & F(x, z)",
                DomainId::Eq,
            )
            .unwrap();
        assert_eq!(out.plan.strategy(), "algebra");
        assert_eq!(out.rows, vec![vec![Value::Nat(1)]]);
        assert!(out.is_complete());
    }

    #[test]
    fn active_domain_path_interprets_comparisons() {
        let exec = Executor::default();
        let out = exec
            .execute(&fathers(), "exists y. F(x, y) & x < y", DomainId::Nat)
            .unwrap();
        assert_eq!(out.plan.strategy(), "active-domain");
        assert_eq!(out.rows, vec![vec![Value::Nat(1)], vec![Value::Nat(2)]]);
    }

    #[test]
    fn enumerate_path_completes_on_finite_unsafe_query() {
        let exec = Executor::default();
        let out = exec
            .execute(
                &fathers(),
                "(forall y. (exists p. F(y, p) | F(p, y)) -> y < x) & \
                 forall z. z < x -> exists y. (exists p. F(y, p) | F(p, y)) & z <= y",
                DomainId::Presburger,
            )
            .unwrap();
        assert_eq!(out.plan.strategy(), "enumerate-and-ask");
        assert_eq!(out.rows, vec![vec![Value::Nat(5)]]);
        assert!(out.is_complete());
    }

    #[test]
    fn budget_exhaustion_reports_partial_answer() {
        let exec = Executor::default().with_max_candidates(50);
        let out = exec.execute(&fathers(), "!F(x, y)", DomainId::Nat).unwrap();
        assert_eq!(out.plan.strategy(), "enumerate-and-ask");
        match out.completeness {
            Completeness::Partial {
                candidates_tried,
                max_candidates,
            } => {
                assert_eq!(candidates_tried, 50);
                assert_eq!(max_candidates, 50);
            }
            other => panic!("unexpected completeness {other:?}"),
        }
        assert!(!out.rows.is_empty(), "partial tuples must be kept");
    }

    #[test]
    fn sentence_path_decides() {
        let exec = Executor::default();
        let out = exec
            .execute(&fathers(), "exists x y. F(x, y)", DomainId::Nat)
            .unwrap();
        assert_eq!(out.plan.strategy(), "qe-decide");
        assert_eq!(out.completeness, Completeness::Decided { value: true });
        let no = exec
            .execute(&fathers(), "exists x. F(x, x)", DomainId::Nat)
            .unwrap();
        assert_eq!(no.completeness, Completeness::Decided { value: false });
    }

    #[test]
    fn pure_domain_decide_needs_no_state() {
        let exec = Executor::default();
        assert!(exec
            .decide(DomainId::Nat, "exists y. forall x. y <= x")
            .unwrap());
        assert!(!exec
            .decide(DomainId::Int, "exists y. forall x. y <= x")
            .unwrap());
    }

    #[test]
    fn plan_cache_hits_on_repeats_and_misses_across_states() {
        let exec = Executor::new(Engine::new(EngineConfig::default()));
        let state = fathers();
        let (_, cached) = exec.plan(&state, "!F(x, y)", DomainId::Nat).unwrap();
        assert!(!cached, "first plan is computed");
        let (_, cached) = exec.plan(&state, "!F(x, y)", DomainId::Nat).unwrap();
        assert!(cached, "second plan comes from query.plan");
        // A different state invalidates the key.
        let other = fathers().with_tuple("F", vec![Value::Nat(7), Value::Nat(8)]);
        let (_, cached) = exec.plan(&other, "!F(x, y)", DomainId::Nat).unwrap();
        assert!(!cached, "state change must miss");
        // A different domain invalidates the key too.
        let (_, cached) = exec.plan(&state, "!F(x, y)", DomainId::Eq).unwrap();
        assert!(!cached, "domain change must miss");
    }

    #[test]
    fn exec_stats_surface_storage_counters() {
        let exec = Executor::default();
        let state = fathers().with_tuple("F", vec![Value::Str("zed".into()), Value::Nat(9)]);
        let out = exec.execute(&state, "F(x, y)", DomainId::Eq).unwrap();
        assert_eq!(out.stats.stored_rows, 4);
        assert_eq!(out.stats.dict_entries, 1, "only the string interns");
        assert_eq!(out.stats.dict_strings, 1);
    }

    #[test]
    fn query_rows_are_identical_at_every_thread_count() {
        // A chain join wide enough to span several morsels at the test's
        // tiny morsel size; byte-identical `QueryOutcome.rows` at 1, 2,
        // 4, and 8 threads is the end-to-end determinism contract.
        let schema = Schema::new().with_relation("F", 2).with_relation("S", 1);
        let mut b = fq_relational::StateBuilder::new(schema);
        for i in 0..400u64 {
            b.row("F", vec![Value::Nat(i % 97), Value::Nat((i * 7) % 97)]);
            if i % 3 == 0 {
                b.row("S", vec![Value::Nat(i % 97)]);
            }
        }
        let state = b.finish();
        for src in [
            "exists y. F(x, y) & F(y, z)",
            "F(x, y) & S(y)",
            "F(x, y) & !F(y, x)",
        ] {
            let baseline = Executor::default()
                .with_morsel_rows(16)
                .execute(&state, src, DomainId::Eq)
                .unwrap();
            assert_eq!(baseline.stats.threads, 1);
            for threads in [2, 4, 8] {
                let exec = Executor::new(Engine::new(EngineConfig {
                    threads,
                    ..EngineConfig::default()
                }))
                .with_morsel_rows(16);
                let out = exec.execute(&state, src, DomainId::Eq).unwrap();
                assert_eq!(
                    out.rows, baseline.rows,
                    "rows drift on {src} at {threads} threads"
                );
                assert_eq!(out.stats.threads, threads);
                assert_eq!(out.stats.morsel_rows, 16);
            }
        }
    }

    #[test]
    fn snapshot_execution_pins_epoch_and_shares_plan_cache() {
        let shared = fq_relational::SharedState::new(fathers());
        let exec = Executor::default();
        let snap = shared.snapshot();
        let out = exec
            .execute_snapshot(&snap, "F(x, y)", DomainId::Eq)
            .unwrap();
        assert_eq!(out.stats.snapshot_epoch, Some(0));
        shared
            .ingest("F", vec![vec![Value::Nat(9), Value::Nat(10)]])
            .unwrap();
        // Pinned snapshot: same rows, same epoch, and a plan-cache hit
        // (the fingerprint key is stable because the snapshot is).
        let again = exec
            .execute_snapshot(&snap, "F(x, y)", DomainId::Eq)
            .unwrap();
        assert_eq!(again.rows, out.rows);
        assert_eq!(again.stats.snapshot_epoch, Some(0));
        assert!(again.stats.plan_cached);
        // A fresh snapshot at the new epoch sees the new row and misses.
        let newer = exec
            .execute_snapshot(&shared.snapshot(), "F(x, y)", DomainId::Eq)
            .unwrap();
        assert_eq!(newer.stats.snapshot_epoch, Some(1));
        assert_eq!(newer.rows.len(), out.rows.len() + 1);
        assert!(!newer.stats.plan_cached);
        // Counters are shared across clones.
        assert_eq!(exec.clone().plan_cache_stats(), (1, 2));
        assert_eq!(newer.stats.plan_hits, 1);
        assert_eq!(newer.stats.plan_misses, 2);
    }

    #[test]
    fn executions_agree_between_cold_and_warm_plans() {
        let exec = Executor::default();
        let state = fathers();
        let src = "exists y. F(x, y) & F(y, z)";
        let cold = exec.execute(&state, src, DomainId::Eq).unwrap();
        let warm = exec.execute(&state, src, DomainId::Eq).unwrap();
        assert!(!cold.stats.plan_cached);
        assert!(warm.stats.plan_cached);
        assert_eq!(cold.rows, warm.rows);
        assert_eq!(cold.plan, warm.plan);
    }
}
