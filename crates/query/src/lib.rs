//! # fq-query — the unified compile → plan → execute pipeline
//!
//! Every answering path in the workspace goes through this crate. The
//! paper's whole subject is *which strategy may answer a query* — the
//! safe-range/algebra route for domain-independent queries, active-domain
//! evaluation, the Section 1.1 enumerate-and-ask loop for finite queries,
//! relative-safety prechecks (Theorems 2.2/2.5/3.3), and pure-sentence
//! decision — and this crate makes that choice explicit, auditable, and
//! cacheable:
//!
//! * [`compile`] — parse, bind scheme constants, arity-check against the
//!   [`Schema`](fq_relational::Schema), normalize (NNF + folding), and
//!   hash-cons through the shared [`Engine`](fq_engine::Engine);
//! * [`plan`] — a [`QueryPlan`] choosing among algebra, active-domain,
//!   enumerate-and-ask (with an explicit candidate budget and a
//!   relative-safety precheck), or QE decision — each recording *why*;
//! * [`exec`] — an [`Executor`] that memoizes plans in the engine's
//!   `query.plan` namespace and returns a uniform [`QueryOutcome`] with
//!   answers, a completeness certificate, and cache statistics;
//! * [`registry`] — the [`DomainRegistry`]: one table for the seven
//!   decidable domains (`eq|nat|int|succ|presburger|words|traces`),
//!   replacing the per-command string dispatch the CLI used to carry.
//!
//! The executor is agnostic to how its state was built: per-row
//! (`with_tuple`, as below, fine for fixtures) or staged through
//! [`fq_relational::StateBuilder`] / `State::load_bulk` when loading
//! thousands of rows — the batch path merges each relation in one pass
//! instead of splicing per row.
//!
//! ```
//! use fq_query::{DomainId, Executor};
//! use fq_relational::{Schema, State, Value};
//!
//! let state = State::new(Schema::new().with_relation("F", 2))
//!     .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
//!     .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)]);
//! let exec = Executor::default();
//! let out = exec
//!     .execute(&state, "exists y z. y != z & F(x, y) & F(x, z)", DomainId::Eq)?;
//! assert_eq!(out.plan.strategy(), "algebra");
//! assert_eq!(out.rows, vec![vec![Value::Nat(1)]]);
//! # Ok::<(), fq_query::QueryError>(())
//! ```

pub mod compile;
pub mod error;
pub mod exec;
pub mod plan;
pub mod registry;
pub mod serve;

pub use compile::CompiledQuery;
pub use error::QueryError;
pub use exec::{Completeness, ExecStats, Executor, QueryOutcome, PLAN_CACHE_NAMESPACE};
pub use plan::{PlannedQuery, Precheck, QueryPlan};
pub use registry::{DomainId, DomainInfo, DomainRegistry, DOMAINS};
pub use serve::{Client, QueryService, Server};
