//! The domain registry — one table for every decidable domain the
//! workspace ships, replacing the stringly-typed `match` arms that used
//! to be copy-pasted into each CLI command and example.

use crate::error::QueryError;
use fq_core::answer::{answer_query_with, AnswerOutcome};
use fq_core::relative;
use fq_domains::{
    DecidableTheory, DomainError, EqDomain, IntOrder, NatOrder, NatSucc, Presburger, TraceDomain,
    WordsLlex,
};
use fq_engine::Engine;
use fq_logic::Formula;
use fq_relational::active_eval::{eval_query_with, NatOps, NoOps, TraceOps};
use fq_relational::{State, Value};

/// The decidable domains the pipeline can plan against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DomainId {
    /// Pure equality (Section 2 opening).
    Eq,
    /// ⟨ℕ, <⟩ (Theorem 2.5).
    Nat,
    /// ⟨ℤ, <⟩ (Section 2.1).
    Int,
    /// ⟨ℕ, ′⟩ (Theorem 2.6).
    Succ,
    /// ⟨ℕ, <, +⟩, Presburger arithmetic (a decidable extension of ⟨ℕ, <⟩).
    Presburger,
    /// Words under length-lexicographic order (Section 2.2).
    Words,
    /// The trace domain **T** (Section 3).
    Traces,
}

/// One registry row: the CLI name, the structure it denotes, and whether
/// relative safety is decidable over it.
#[derive(Clone, Copy, Debug)]
pub struct DomainInfo {
    pub id: DomainId,
    /// The name accepted on the command line.
    pub key: &'static str,
    /// Human-readable structure, paper notation.
    pub structure: &'static str,
    /// Is relative safety decidable over this domain?
    pub relative_safety_decidable: bool,
}

/// The single source of truth for domain dispatch.
pub const DOMAINS: &[DomainInfo] = &[
    DomainInfo {
        id: DomainId::Eq,
        key: "eq",
        structure: "pure equality",
        relative_safety_decidable: true,
    },
    DomainInfo {
        id: DomainId::Nat,
        key: "nat",
        structure: "⟨N, <⟩",
        relative_safety_decidable: true,
    },
    DomainInfo {
        id: DomainId::Int,
        key: "int",
        structure: "⟨Z, <⟩",
        relative_safety_decidable: true,
    },
    DomainInfo {
        id: DomainId::Succ,
        key: "succ",
        structure: "⟨N, ′⟩",
        relative_safety_decidable: true,
    },
    DomainInfo {
        id: DomainId::Presburger,
        key: "presburger",
        structure: "⟨N, <, +⟩",
        relative_safety_decidable: true,
    },
    DomainInfo {
        id: DomainId::Words,
        key: "words",
        structure: "⟨Σ*, ≤llex⟩",
        relative_safety_decidable: true,
    },
    DomainInfo {
        id: DomainId::Traces,
        key: "traces",
        structure: "T (Section 3)",
        relative_safety_decidable: false,
    },
];

/// The CLI names, registry order.
pub fn domain_names() -> Vec<&'static str> {
    DOMAINS.iter().map(|d| d.key).collect()
}

impl DomainId {
    /// Resolve a CLI name through the registry.
    pub fn parse(name: &str) -> Result<DomainId, QueryError> {
        DOMAINS
            .iter()
            .find(|d| d.key == name)
            .map(|d| d.id)
            .ok_or_else(|| QueryError::UnknownDomain {
                name: name.to_string(),
            })
    }

    /// This domain's registry row.
    pub fn info(&self) -> &'static DomainInfo {
        DOMAINS
            .iter()
            .find(|d| d.id == *self)
            .expect("every DomainId has a registry row")
    }

    /// The CLI name.
    pub fn key(&self) -> &'static str {
        self.info().key
    }

    /// Pick a domain from the symbols a query uses: trace predicates
    /// force **T**, `llex` forces words, `+`/`div` force Presburger,
    /// comparisons force ⟨ℕ, <⟩, a bare successor forces ⟨ℕ, ′⟩, and a
    /// purely relational query needs nothing beyond equality. ⟨ℤ, <⟩
    /// shares its symbols with ⟨ℕ, <⟩ and must be requested explicitly.
    pub fn infer(query: &Formula) -> DomainId {
        let mut preds: Vec<String> = Vec::new();
        let mut funcs: Vec<String> = Vec::new();
        query.visit(&mut |f| {
            if let Formula::Pred(name, args) = f {
                preds.push(name.to_string());
                for t in args {
                    collect_funcs(t, &mut funcs);
                }
            }
            if let Formula::Eq(a, b) = f {
                collect_funcs(a, &mut funcs);
                collect_funcs(b, &mut funcs);
            }
        });
        let has = |name: &str| preds.iter().any(|p| p == name);
        let hasf = |name: &str| funcs.iter().any(|p| p == name);
        if ["P", "M", "W", "T", "O", "B", "D", "E"]
            .iter()
            .any(|p| has(p))
            || hasf("w")
            || hasf("m")
        {
            DomainId::Traces
        } else if has("llex") {
            DomainId::Words
        } else if has("div") || hasf("+") || hasf("-") || hasf("*") {
            DomainId::Presburger
        } else if has("<") || has("<=") || has(">") || has(">=") {
            DomainId::Nat
        } else if hasf("succ") {
            DomainId::Succ
        } else {
            DomainId::Eq
        }
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.key(), self.info().structure)
    }
}

fn collect_funcs(t: &fq_logic::Term, out: &mut Vec<String>) {
    if let fq_logic::Term::App(name, args) = t {
        out.push(name.to_string());
        for a in args {
            collect_funcs(a, out);
        }
    }
}

/// Uniform dispatch over the registry: deciding sentences, relative
/// safety, enumerate-and-ask answering, and active-domain evaluation,
/// each returning domain-independent [`Value`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct DomainRegistry;

impl DomainRegistry {
    /// Decide a pure-domain sentence through the engine.
    pub fn decide(
        &self,
        id: DomainId,
        sentence: &Formula,
        engine: &Engine,
    ) -> Result<bool, DomainError> {
        match id {
            DomainId::Eq => EqDomain.decide_with(sentence, engine),
            DomainId::Nat => NatOrder.decide_with(sentence, engine),
            DomainId::Int => IntOrder.decide_with(sentence, engine),
            DomainId::Succ => NatSucc.decide_with(sentence, engine),
            DomainId::Presburger => Presburger.decide_with(sentence, engine),
            DomainId::Words => WordsLlex.decide_with(sentence, engine),
            DomainId::Traces => TraceDomain.decide_with(sentence, engine),
        }
    }

    /// Relative safety of `query` in `state` over the domain:
    /// `Some(finite?)` where decidable, `None` over **T** (Theorem 3.3 —
    /// no budget-free answer exists).
    pub fn relative_safety(
        &self,
        id: DomainId,
        state: &State,
        query: &Formula,
        vars: &[String],
    ) -> Result<Option<bool>, DomainError> {
        Ok(match id {
            DomainId::Eq => Some(relative::relative_safety_eq(state, query, vars)?),
            // Theorem 2.5 covers every decidable extension of ⟨N, <⟩,
            // so ⟨N, <, +⟩ shares the ⟨N, <⟩ criterion.
            DomainId::Nat | DomainId::Presburger => {
                Some(relative::relative_safety_nat(state, query, vars)?)
            }
            DomainId::Int => Some(relative::relative_safety_int(state, query, vars)?),
            DomainId::Succ => Some(relative::relative_safety_succ(state, query, vars)?),
            DomainId::Words => Some(relative::relative_safety_words(state, query, vars)?),
            DomainId::Traces => None,
        })
    }

    /// The Section 1.1 enumerate-and-ask loop over the domain, answers
    /// converted to [`Value`] tuples. Decide results are memoized in the
    /// engine (`core.answer.decide`), so the loop's restarted candidate
    /// scans and warm re-executions skip the quantifier eliminations.
    pub fn answer(
        &self,
        id: DomainId,
        state: &State,
        query: &Formula,
        vars: &[String],
        max_candidates: usize,
        engine: &Engine,
    ) -> Result<AnswerOutcome<Value>, DomainError> {
        match id {
            DomainId::Eq => {
                answer_query_with(&EqDomain, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, |n| Value::Nat(*n)))
            }
            DomainId::Nat => {
                answer_query_with(&NatOrder, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, |n| Value::Nat(*n)))
            }
            DomainId::Int => {
                answer_query_with(&IntOrder, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, int_value))
            }
            DomainId::Succ => {
                answer_query_with(&NatSucc, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, |n| Value::Nat(*n)))
            }
            DomainId::Presburger => {
                answer_query_with(&Presburger, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, |n| Value::Nat(*n)))
            }
            DomainId::Words => {
                answer_query_with(&WordsLlex, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, |s: &String| Value::Str(s.clone())))
            }
            DomainId::Traces => {
                answer_query_with(&TraceDomain, state, query, vars, max_candidates, engine)
                    .map(|o| convert(o, |s: &String| Value::Str(s.clone())))
            }
        }
    }

    /// Active-domain evaluation with the domain's operations interpreted,
    /// slot-compiled and fanned out across the engine's workers.
    pub fn eval_active(
        &self,
        id: DomainId,
        state: &State,
        query: &Formula,
        vars: &[String],
        engine: &Engine,
    ) -> Result<Vec<Vec<Value>>, fq_logic::LogicError> {
        match id {
            DomainId::Eq => eval_query_with(state, &NoOps, query, vars, engine),
            DomainId::Nat | DomainId::Int | DomainId::Succ | DomainId::Presburger => {
                eval_query_with(state, &NatOps, query, vars, engine)
            }
            DomainId::Words | DomainId::Traces => {
                eval_query_with(state, &TraceOps, query, vars, engine)
            }
        }
    }
}

/// A negative integer has no [`Value::Nat`] form; render it as a string
/// so ⟨ℤ, <⟩ answers stay representable.
fn int_value(n: &i64) -> Value {
    if *n >= 0 {
        Value::Nat(*n as u64)
    } else {
        Value::Str(n.to_string())
    }
}

fn convert<E>(out: AnswerOutcome<E>, f: impl Fn(&E) -> Value) -> AnswerOutcome<Value> {
    let map = |tuples: Vec<Vec<E>>| -> Vec<Vec<Value>> {
        tuples.iter().map(|t| t.iter().map(&f).collect()).collect()
    };
    match out {
        AnswerOutcome::Complete(tuples) => AnswerOutcome::Complete(map(tuples)),
        AnswerOutcome::BudgetExhausted {
            found,
            candidates_tried,
        } => AnswerOutcome::BudgetExhausted {
            found: map(found),
            candidates_tried,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    #[test]
    fn every_key_parses_back_to_its_id() {
        for info in DOMAINS {
            assert_eq!(DomainId::parse(info.key).unwrap(), info.id);
        }
        assert!(matches!(
            DomainId::parse("bogus"),
            Err(QueryError::UnknownDomain { .. })
        ));
    }

    #[test]
    fn inference_picks_the_strongest_needed_theory() {
        let cases = [
            ("F(x, y)", DomainId::Eq),
            ("exists y. F(x, y) & x < y", DomainId::Nat),
            ("x = y'", DomainId::Succ),
            ("div(2, x, 0)", DomainId::Presburger),
            ("llex(x, y)", DomainId::Words),
            ("P(m, w, p)", DomainId::Traces),
            ("T(p) & w(p) = \"1\"", DomainId::Traces),
        ];
        for (src, expected) in cases {
            let q = parse_formula(src).unwrap();
            assert_eq!(DomainId::infer(&q), expected, "{src}");
        }
    }
}
