//! The serve loop: a long-lived, snapshot-isolated query service.
//!
//! This is the step from *library* to *service*: one shared store
//! ([`SharedState`]), one shared [`Executor`] (whose engine caches are
//! `Sync` and sharded), and a thread-per-connection TCP server speaking
//! a line-delimited JSON protocol. Every request line is one JSON
//! object; every response is one JSON object on one line.
//!
//! Requests (`cmd` selects the verb):
//!
//! * `{"cmd":"query","query":"F(x, y)","domain":"nat"}` — pin the
//!   current snapshot, execute, return rows. `domain` is optional
//!   (inferred from the query's symbols when absent).
//! * `{"cmd":"explain","query":…,"domain":…}` — the plan explanation
//!   plus execution statistics for the pinned snapshot.
//! * `{"cmd":"ingest","relation":"R","rows":[[{"Nat":1},{"Str":"a"}]]}`
//!   — batch-ingest tuples and atomically publish the next epoch.
//! * `{"cmd":"snapshot-info"}` — store identity, epoch, dictionary and
//!   per-relation row counts, shared plan/engine cache counters.
//!
//! Responses carry `"ok":true` plus verb-specific fields, or
//! `"ok":false,"error":…` — a malformed line never kills a connection.
//!
//! Isolation contract (proved by `prop_serve`): a query executes
//! against the snapshot pinned when its request arrived; concurrent
//! ingests publish whole batches at new epochs and never perturb
//! in-flight readers. The `epoch` field of each response says exactly
//! which published state the answer is from.

use crate::error::QueryError;
use crate::exec::{Completeness, Executor, QueryOutcome};
use crate::registry::DomainId;
use fq_json::{FromJson, JsonError, ToJson, Value as Json};
use fq_logic::parse_formula;
use fq_relational::{SharedState, Snapshot, Value};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// The transport-agnostic request handler: one shared store, one shared
/// executor. [`Server`] feeds it TCP lines; tests can call
/// [`QueryService::handle_line`] directly.
#[derive(Clone)]
pub struct QueryService {
    shared: Arc<SharedState>,
    executor: Executor,
}

impl QueryService {
    pub fn new(shared: Arc<SharedState>, executor: Executor) -> Self {
        QueryService { shared, executor }
    }

    /// The store this service answers from.
    pub fn shared(&self) -> &Arc<SharedState> {
        &self.shared
    }

    /// The executor (and thus engine caches) shared by every request.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Handle one request line, returning one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match self.handle(line) {
            Ok(fields) => {
                let mut members = vec![("ok".to_string(), Json::Bool(true))];
                if let Json::Object(fields) = fields {
                    members.extend(fields);
                }
                Json::Object(members)
            }
            Err(message) => {
                fq_json::object([("ok", Json::Bool(false)), ("error", Json::Str(message))])
            }
        };
        response.to_compact()
    }

    fn handle(&self, line: &str) -> Result<Json, String> {
        let request = fq_json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd`")?;
        match cmd {
            "query" => self.handle_query(&request),
            "explain" => self.handle_explain(&request),
            "ingest" => self.handle_ingest(&request),
            "snapshot-info" => Ok(self.snapshot_info()),
            other => Err(format!(
                "unknown cmd `{other}` (expected query|explain|ingest|snapshot-info)"
            )),
        }
    }

    /// Resolve the query + domain of a request, inferring the domain
    /// from the query's symbols when the field is absent.
    fn query_and_domain(&self, request: &Json) -> Result<(String, DomainId), String> {
        let source = request
            .get("query")
            .and_then(Json::as_str)
            .ok_or("missing `query`")?
            .to_string();
        let domain = match request.get("domain").and_then(Json::as_str) {
            Some(name) => DomainId::parse(name).map_err(|e| e.to_string())?,
            None => DomainId::infer(&parse_formula(&source).map_err(|e| e.to_string())?),
        };
        Ok((source, domain))
    }

    fn handle_query(&self, request: &Json) -> Result<Json, String> {
        let (source, domain) = self.query_and_domain(request)?;
        let snapshot = self.shared.snapshot();
        let out = self
            .executor
            .execute_snapshot(&snapshot, &source, domain)
            .map_err(|e: QueryError| e.to_string())?;
        Ok(fq_json::object([
            ("epoch", snapshot.epoch().to_json()),
            ("domain", domain.key().to_json()),
            ("strategy", out.plan.strategy().to_json()),
            ("vars", out.vars.to_json()),
            ("rows", out.rows.to_json()),
            ("completeness", completeness_json(&out.completeness)),
            ("plan_cached", out.stats.plan_cached.to_json()),
        ]))
    }

    fn handle_explain(&self, request: &Json) -> Result<Json, String> {
        let (source, domain) = self.query_and_domain(request)?;
        let snapshot = self.shared.snapshot();
        let (planned, _) = self
            .executor
            .plan(&snapshot, &source, domain)
            .map_err(|e| e.to_string())?;
        let out = self
            .executor
            .execute_snapshot(&snapshot, &source, domain)
            .map_err(|e| e.to_string())?;
        Ok(fq_json::object([
            ("epoch", snapshot.epoch().to_json()),
            ("domain", domain.key().to_json()),
            ("strategy", out.plan.strategy().to_json()),
            ("explain", planned.explain().to_json()),
            ("rows", out.rows.len().to_json()),
            ("stats", stats_json(&out)),
        ]))
    }

    fn handle_ingest(&self, request: &Json) -> Result<Json, String> {
        let relation = request
            .get("relation")
            .and_then(Json::as_str)
            .ok_or("missing `relation`")?;
        let rows: Vec<Vec<Value>> = request
            .get("rows")
            .ok_or_else(|| "missing `rows`".to_string())
            .and_then(|v| {
                FromJson::from_json(v).map_err(|e: JsonError| format!("bad `rows`: {e}"))
            })?;
        let (added, epoch) = self
            .shared
            .ingest(relation, rows)
            .map_err(|e| e.to_string())?;
        // Report the published state's canonical on-disk size so
        // ingesting clients can track snapshot growth per batch.
        let snapshot = self.shared.snapshot();
        Ok(fq_json::object([
            ("added", added.to_json()),
            ("epoch", epoch.to_json()),
            ("format", Json::Str(fq_relational::FORMAT_ID.to_string())),
            (
                "snapshot_bytes",
                fq_relational::format::snapshot_len(snapshot.state()).to_json(),
            ),
        ]))
    }

    /// The `snapshot-info` payload: identity, storage shape, and the
    /// shared-cache counters every connection aggregates into.
    pub fn snapshot_info(&self) -> Json {
        let snapshot = self.shared.snapshot();
        snapshot_info_json(&snapshot, &self.executor)
    }
}

/// The `snapshot-info` fields for one pinned snapshot, shared with the
/// CLI's `fq explain` so both surfaces print identical facts.
///
/// `fingerprint` is the O(1)-amortized content hash plan caches key on,
/// `format`/`snapshot_bytes` describe the canonical on-disk columnar
/// serialization of this snapshot — together they let a client detect
/// a stale local snapshot (fingerprint mismatch) and size a refresh
/// without transferring anything.
pub fn snapshot_info_json(snapshot: &Snapshot, executor: &Executor) -> Json {
    let relations = Json::Object(
        snapshot
            .schema()
            .relations()
            .map(|(name, _)| (name.to_string(), snapshot.relation_size(name).to_json()))
            .collect(),
    );
    let (plan_hits, plan_misses) = executor.plan_cache_stats();
    let (engine_hits, engine_misses) = executor.engine().cache_stats();
    fq_json::object([
        ("store", snapshot.store_id().to_json()),
        ("epoch", snapshot.epoch().to_json()),
        (
            "fingerprint",
            Json::Str(format!("{:#034x}", snapshot.fingerprint())),
        ),
        ("format", Json::Str(fq_relational::FORMAT_ID.to_string())),
        (
            "snapshot_bytes",
            fq_relational::format::snapshot_len(snapshot.state()).to_json(),
        ),
        ("dict_entries", snapshot.dict().len().to_json()),
        ("dict_strings", snapshot.dict().strings().to_json()),
        ("stored_rows", snapshot.size().to_json()),
        ("relations", relations),
        (
            "plan_cache",
            fq_json::object([
                ("hits", plan_hits.to_json()),
                ("misses", plan_misses.to_json()),
            ]),
        ),
        (
            "engine_cache",
            fq_json::object([
                ("hits", engine_hits.to_json()),
                ("misses", engine_misses.to_json()),
            ]),
        ),
    ])
}

fn completeness_json(completeness: &Completeness) -> Json {
    match completeness {
        Completeness::Certified => Json::Str("certified".to_string()),
        Completeness::Decided { value } => fq_json::object([("decided", value.to_json())]),
        Completeness::Partial {
            candidates_tried,
            max_candidates,
        } => fq_json::object([(
            "partial",
            fq_json::object([
                ("candidates_tried", candidates_tried.to_json()),
                ("max_candidates", max_candidates.to_json()),
            ]),
        )]),
    }
}

fn stats_json(out: &QueryOutcome) -> Json {
    fq_json::object([
        ("plan_cached", out.stats.plan_cached.to_json()),
        ("plan_hits", out.stats.plan_hits.to_json()),
        ("plan_misses", out.stats.plan_misses.to_json()),
        ("engine_hits", out.stats.engine_hits.to_json()),
        ("engine_misses", out.stats.engine_misses.to_json()),
        ("stored_rows", out.stats.stored_rows.to_json()),
        ("threads", out.stats.threads.to_json()),
    ])
}

/// Thread-per-connection TCP server over a [`QueryService`].
pub struct Server {
    listener: TcpListener,
    service: Arc<QueryService>,
}

impl Server {
    /// Bind to `addr` (use port 0 to let the OS pick a free port).
    pub fn bind(service: QueryService, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
        })
    }

    /// The bound address (the chosen port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one thread per connection. Each
    /// connection reads request lines and writes one response line per
    /// request; the thread exits when the client disconnects.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let service = Arc::clone(&self.service);
            std::thread::spawn(move || {
                let _ = serve_connection(&service, stream);
            });
        }
        Ok(())
    }

    /// [`Server::run`] on a background thread, returning the bound
    /// address — the test and benchmark entry point.
    pub fn spawn(self) -> io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok(addr)
    }
}

fn serve_connection(service: &QueryService, stream: TcpStream) -> io::Result<()> {
    // The protocol is strictly request/response, one line each way;
    // Nagle's algorithm would hold every response hostage to the next
    // write (~40 ms per round trip on loopback).
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// A minimal blocking client for the line/JSON protocol, used by the
/// integration tests, `bench_serve`, and scripting.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Send one raw request line, wait for the one response line.
    pub fn request_raw(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send a request value, parse the response value.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let response = self.request_raw(&request.to_compact())?;
        fq_json::parse(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// `query` convenience; `domain` falls back to symbol inference.
    pub fn query(&mut self, query: &str, domain: Option<&str>) -> io::Result<Json> {
        let mut members = vec![
            ("cmd".to_string(), Json::Str("query".to_string())),
            ("query".to_string(), Json::Str(query.to_string())),
        ];
        if let Some(d) = domain {
            members.push(("domain".to_string(), Json::Str(d.to_string())));
        }
        self.request(&Json::Object(members))
    }

    /// `ingest` convenience.
    pub fn ingest(&mut self, relation: &str, rows: &[Vec<Value>]) -> io::Result<Json> {
        self.request(&fq_json::object([
            ("cmd", Json::Str("ingest".to_string())),
            ("relation", Json::Str(relation.to_string())),
            ("rows", rows.to_vec().to_json()),
        ]))
    }

    /// `explain` convenience.
    pub fn explain(&mut self, query: &str, domain: Option<&str>) -> io::Result<Json> {
        let mut members = vec![
            ("cmd".to_string(), Json::Str("explain".to_string())),
            ("query".to_string(), Json::Str(query.to_string())),
        ];
        if let Some(d) = domain {
            members.push(("domain".to_string(), Json::Str(d.to_string())));
        }
        self.request(&Json::Object(members))
    }

    /// `snapshot-info` convenience.
    pub fn snapshot_info(&mut self) -> io::Result<Json> {
        self.request(&fq_json::object([(
            "cmd",
            Json::Str("snapshot-info".to_string()),
        )]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_relational::{Schema, State};

    fn service() -> QueryService {
        let schema = Schema::new().with_relation("F", 2);
        let state = State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)]);
        QueryService::new(Arc::new(SharedState::new(state)), Executor::default())
    }

    #[test]
    fn handle_line_answers_queries_and_rejects_garbage() {
        let svc = service();
        let response = svc.handle_line(r#"{"cmd":"query","query":"F(x, y)","domain":"eq"}"#);
        let json = fq_json::parse(&response).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(json.get("epoch").and_then(Json::as_int), Some(0));
        assert_eq!(json.get("rows").and_then(Json::as_array).unwrap().len(), 2);
        assert_eq!(
            json.get("completeness").and_then(Json::as_str),
            Some("certified")
        );

        for bad in [
            "not json at all",
            r#"{"cmd":"no-such-verb"}"#,
            r#"{"cmd":"query"}"#,
            r#"{"cmd":"query","query":"F(x)","domain":"eq"}"#, // arity error
            r#"{"cmd":"ingest","relation":"F","rows":[[{"Nat":1}]]}"#, // arity error
        ] {
            let json = fq_json::parse(&svc.handle_line(bad)).unwrap();
            assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert!(json.get("error").is_some(), "{bad}");
        }
    }

    #[test]
    fn end_to_end_over_tcp() {
        let svc = service();
        let addr = Server::bind(svc, ("127.0.0.1", 0))
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = Client::connect(addr).unwrap();

        let info = client.snapshot_info().unwrap();
        assert_eq!(info.get("epoch").and_then(Json::as_int), Some(0));
        assert_eq!(info.get("stored_rows").and_then(Json::as_int), Some(2));
        assert_eq!(
            info.get("format").and_then(Json::as_str),
            Some(fq_relational::FORMAT_ID)
        );
        let fingerprint = info.get("fingerprint").and_then(Json::as_str).unwrap();
        assert!(
            fingerprint.starts_with("0x") && fingerprint.len() == 34,
            "{fingerprint}"
        );
        let bytes_before = info.get("snapshot_bytes").and_then(Json::as_int).unwrap();
        assert!(bytes_before > 0);

        let out = client.query("F(x, y)", Some("eq")).unwrap();
        assert_eq!(out.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(out.get("rows").and_then(Json::as_array).unwrap().len(), 2);

        let ingested = client
            .ingest("F", &[vec![Value::Nat(7), Value::Nat(8)]])
            .unwrap();
        assert_eq!(ingested.get("added").and_then(Json::as_int), Some(1));
        assert_eq!(ingested.get("epoch").and_then(Json::as_int), Some(1));
        // Growth is visible in the reported on-disk size, and the
        // published snapshot's info fingerprint moved.
        let grown = ingested
            .get("snapshot_bytes")
            .and_then(Json::as_int)
            .unwrap();
        assert!(grown > bytes_before, "{grown} vs {bytes_before}");
        let info = client.snapshot_info().unwrap();
        assert_ne!(
            info.get("fingerprint").and_then(Json::as_str).unwrap(),
            fingerprint
        );

        // A second connection sees the published epoch.
        let mut other = Client::connect(addr).unwrap();
        let out = other.query("F(x, y)", Some("eq")).unwrap();
        assert_eq!(out.get("epoch").and_then(Json::as_int), Some(1));
        assert_eq!(out.get("rows").and_then(Json::as_array).unwrap().len(), 3);

        let explained = client.explain("exists y. F(x, y)", Some("eq")).unwrap();
        assert_eq!(explained.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            explained.get("strategy").and_then(Json::as_str),
            Some("algebra")
        );
        assert!(explained
            .get("explain")
            .and_then(Json::as_str)
            .unwrap()
            .contains("strategy"));

        // Domain inference: `<` forces ⟨ℕ, <⟩ without an explicit domain.
        let inferred = client.query("exists y. F(x, y) & x < y", None).unwrap();
        assert_eq!(inferred.get("domain").and_then(Json::as_str), Some("nat"));
    }
}
