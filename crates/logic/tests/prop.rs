//! Property-based tests for the logic kernel: printer/parser round-trip and
//! semantics preservation of the normal-form transforms over bounded models.

use fq_logic::eval::{eval_sentence, NatInterpretation};
use fq_logic::transform::{dnf, nnf, prenex, simplify};
use fq_logic::{parse_formula, Formula, Term};
use proptest::prelude::*;

/// Random terms over variables x, y, z and small numerals.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Term::var),
        (0u64..5).prop_map(Term::Nat),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app2("+", a, b)),
            inner.prop_map(Term::succ),
        ]
    })
}

/// Random quantifier-free formulas over arithmetic atoms.
fn arb_qf() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        (arb_term(), arb_term()).prop_map(|(a, b)| Formula::eq(a, b)),
        (arb_term(), arb_term()).prop_map(|(a, b)| Formula::lt(a, b)),
        Just(Formula::True),
        Just(Formula::False),
    ];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
        ]
    })
}

/// Random formulas with quantifiers, closed over {x, y, z}.
fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_qf().prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            (prop_oneof![Just("x"), Just("y"), Just("z")], inner.clone())
                .prop_map(|(v, b)| Formula::exists(v, b)),
            (prop_oneof![Just("x"), Just("y"), Just("z")], inner.clone())
                .prop_map(|(v, b)| Formula::forall(v, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
        ]
    })
}

/// Close a formula by existentially quantifying its free variables.
fn close(f: Formula) -> Formula {
    let fv: Vec<String> = f.free_vars().into_iter().collect();
    Formula::exists_many(fv, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    #[test]
    fn nnf_preserves_semantics(f in arb_formula()) {
        let sentence = close(f);
        let universe: Vec<u64> = (0..3).collect();
        let before = eval_sentence(&NatInterpretation, &universe, &sentence).unwrap();
        let after = eval_sentence(&NatInterpretation, &universe, &nnf(&sentence)).unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn prenex_preserves_semantics(f in arb_formula()) {
        let sentence = close(f);
        let universe: Vec<u64> = (0..3).collect();
        let before = eval_sentence(&NatInterpretation, &universe, &sentence).unwrap();
        let p = prenex(&sentence);
        prop_assert!(p.matrix.is_quantifier_free());
        let after = eval_sentence(&NatInterpretation, &universe, &p.to_formula()).unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn dnf_preserves_semantics(f in arb_qf()) {
        let sentence = close(f);
        // Closing a QF formula adds quantifiers; take the matrix instead.
        let qf = prenex(&sentence).matrix;
        let universe: Vec<u64> = (0..3).collect();
        let d = dnf(&qf);
        prop_assert!(d.is_quantifier_free());
        // Compare under every assignment of the (here: closed, so none)
        // free variables; matrix free vars are checked via solutions.
        let vars: Vec<String> = qf.free_vars().into_iter().collect();
        let before = fq_logic::eval::solutions(&NatInterpretation, &universe, &vars, &qf).unwrap();
        let after = fq_logic::eval::solutions(&NatInterpretation, &universe, &vars, &d).unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn simplify_preserves_semantics(f in arb_formula()) {
        let sentence = close(f);
        let universe: Vec<u64> = (0..3).collect();
        let before = eval_sentence(&NatInterpretation, &universe, &sentence).unwrap();
        let after = eval_sentence(&NatInterpretation, &universe, &simplify(&sentence)).unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn simplify_never_grows(f in arb_formula()) {
        prop_assert!(simplify(&f).size() <= f.size());
    }

    #[test]
    fn substitution_then_eval_agrees(f in arb_qf(), n in 0u64..3) {
        // eval(f[x := n]) == eval(f) with x bound to n.
        let universe: Vec<u64> = (0..3).collect();
        let vars: Vec<String> = f.free_vars().into_iter().filter(|v| v != "x").collect();
        let substituted = fq_logic::substitute(&f, "x", &Term::Nat(n));
        let lhs = fq_logic::eval::solutions(&NatInterpretation, &universe, &vars, &substituted);
        // Bind x via an equality conjunct instead.
        let bound = Formula::and([f.clone(), Formula::eq(Term::var("x"), Term::Nat(n))]);
        let rhs = fq_logic::eval::solutions(&NatInterpretation, &universe, &vars, &{
            Formula::exists("x", bound)
        });
        prop_assert_eq!(lhs.unwrap(), rhs.unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic: arbitrary input yields Ok or a
    /// structured error.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse_formula(&input);
    }

    /// Inputs over the token alphabet specifically (more likely to reach
    /// deep parser states).
    #[test]
    fn parser_never_panics_on_token_soup(
        input in "[a-z0-9 ()!&|<>=+*'\\.\"\\-]{0,60}"
    ) {
        let _ = parse_formula(&input);
    }

    /// Lexer offsets are within bounds on arbitrary input.
    #[test]
    fn lexer_error_offsets_in_bounds(input in ".{0,60}") {
        match fq_logic::parser::tokenize(&input) {
            Ok(tokens) => {
                for t in &tokens {
                    prop_assert!(t.offset <= input.len());
                }
            }
            Err(fq_logic::LogicError::Lex { offset, .. }) => {
                prop_assert!(offset <= input.len());
            }
            Err(_) => {}
        }
    }
}
