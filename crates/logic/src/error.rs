//! Error types for the logic kernel.

use std::fmt;

/// Errors produced by parsing, signature checking, or evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogicError {
    /// A lexical error at the given byte offset.
    Lex { offset: usize, message: String },
    /// A parse error at the given byte offset.
    Parse { offset: usize, message: String },
    /// A symbol was used with the wrong arity or kind.
    Signature { symbol: String, message: String },
    /// Evaluation failed (unknown symbol, undefined function value, …).
    Eval { message: String },
}

impl LogicError {
    pub(crate) fn lex(offset: usize, message: impl Into<String>) -> Self {
        LogicError::Lex {
            offset,
            message: message.into(),
        }
    }

    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        LogicError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Construct an evaluation error.
    pub fn eval(message: impl Into<String>) -> Self {
        LogicError::Eval {
            message: message.into(),
        }
    }

    /// Construct a signature error.
    pub fn signature(symbol: impl Into<String>, message: impl Into<String>) -> Self {
        LogicError::Signature {
            symbol: symbol.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            LogicError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LogicError::Signature { symbol, message } => {
                write!(f, "signature error for `{symbol}`: {message}")
            }
            LogicError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for LogicError {}
