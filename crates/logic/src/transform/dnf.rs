//! Disjunctive normal form of quantifier-free formulas.
//!
//! The Appendix's quantifier eliminations all begin: "we may assume that ψ
//! is a conjunction of atomic formulas and their negations" — justified by
//! distributing ∃ over a DNF. [`dnf_conjunctions`] produces exactly those
//! conjunctions as lists of [`Literal`]s.

use crate::formula::Formula;
use crate::transform::nnf::nnf;

/// A literal: an atom or its negation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    /// `true` for a positive literal.
    pub positive: bool,
    /// The underlying atom (`Pred`, `Eq`, `True`, or `False`).
    pub atom: Formula,
}

impl Literal {
    /// Positive literal.
    pub fn pos(atom: Formula) -> Self {
        Literal {
            positive: true,
            atom,
        }
    }

    /// Negative literal.
    pub fn neg(atom: Formula) -> Self {
        Literal {
            positive: false,
            atom,
        }
    }

    /// Back to a formula.
    pub fn to_formula(&self) -> Formula {
        if self.positive {
            self.atom.clone()
        } else {
            Formula::not(self.atom.clone())
        }
    }
}

/// Convert a quantifier-free formula to DNF (as a formula).
///
/// # Panics
///
/// Panics if the input contains quantifiers; use [`crate::transform::prenex`]
/// first.
pub fn dnf(f: &Formula) -> Formula {
    Formula::or(
        dnf_conjunctions(f)
            .into_iter()
            .map(|c| Formula::and(c.into_iter().map(|l| l.to_formula()))),
    )
}

/// Convert a quantifier-free formula to a list of conjunctions of literals.
/// Trivially false conjuncts (containing `False` positively or `True`
/// negatively) are dropped; trivially true literals are removed from their
/// conjunctions.
///
/// # Panics
///
/// Panics if the input contains quantifiers.
pub fn dnf_conjunctions(f: &Formula) -> Vec<Vec<Literal>> {
    let n = nnf(f);
    let raw = walk(&n);
    let mut out = Vec::with_capacity(raw.len());
    'conj: for conj in raw {
        let mut cleaned = Vec::with_capacity(conj.len());
        for lit in conj {
            match (&lit.atom, lit.positive) {
                (Formula::True, true) | (Formula::False, false) => {}
                (Formula::True, false) | (Formula::False, true) => continue 'conj,
                _ => cleaned.push(lit),
            }
        }
        out.push(cleaned);
    }
    out
}

/// A piece of a variable-directed DNF: a literal mentioning the variable
/// or an opaque subformula that does not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnfPiece {
    Lit(Literal),
    Opaque(Formula),
}

/// DNF of a quantifier-free formula **with respect to one variable**:
/// maximal subformulas not mentioning `var` are kept opaque instead of
/// being distributed, which keeps the quantifier-elimination procedures
/// from exploding on large variable-free residues. The input is brought
/// to NNF internally.
pub fn dnf_conjunctions_wrt(f: &Formula, var: &str) -> Vec<Vec<DnfPiece>> {
    fn mentions(f: &Formula, var: &str) -> bool {
        f.free_vars().contains(var)
    }
    fn walk_wrt(f: &Formula, var: &str) -> Vec<Vec<DnfPiece>> {
        if !mentions(f, var) {
            return vec![vec![DnfPiece::Opaque(f.clone())]];
        }
        match f {
            Formula::Pred(..) | Formula::Eq(..) => {
                vec![vec![DnfPiece::Lit(Literal::pos(f.clone()))]]
            }
            Formula::Not(inner) => match inner.as_ref() {
                Formula::Pred(..) | Formula::Eq(..) => {
                    vec![vec![DnfPiece::Lit(Literal::neg(inner.as_ref().clone()))]]
                }
                _ => panic!("dnf_conjunctions_wrt: input not in NNF"),
            },
            Formula::Or(fs) => fs.iter().flat_map(|g| walk_wrt(g, var)).collect(),
            Formula::And(fs) => {
                let mut acc: Vec<Vec<DnfPiece>> = vec![vec![]];
                for g in fs {
                    let gs = walk_wrt(g, var);
                    let mut next = Vec::with_capacity(acc.len() * gs.len());
                    for a in &acc {
                        for b in &gs {
                            let mut c = a.clone();
                            c.extend(b.iter().cloned());
                            next.push(c);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Formula::True => vec![vec![]],
            Formula::False => vec![],
            Formula::Implies(..) | Formula::Iff(..) => unreachable!("nnf removes -> and <->"),
            Formula::Exists(..) | Formula::Forall(..) => {
                panic!("dnf_conjunctions_wrt: input contains quantifiers")
            }
        }
    }
    walk_wrt(&nnf(f), var)
}

fn walk(f: &Formula) -> Vec<Vec<Literal>> {
    match f {
        Formula::True => vec![vec![]],
        Formula::False => vec![],
        Formula::Pred(..) | Formula::Eq(..) => vec![vec![Literal::pos(f.clone())]],
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Pred(..) | Formula::Eq(..) => vec![vec![Literal::neg(inner.as_ref().clone())]],
            Formula::True => vec![],
            Formula::False => vec![vec![]],
            _ => panic!("dnf: input not in NNF (negation of non-atom)"),
        },
        Formula::Or(fs) => fs.iter().flat_map(walk).collect(),
        Formula::And(fs) => {
            let mut acc: Vec<Vec<Literal>> = vec![vec![]];
            for g in fs {
                let gs = walk(g);
                let mut next = Vec::with_capacity(acc.len() * gs.len());
                for a in &acc {
                    for b in &gs {
                        let mut c = a.clone();
                        c.extend(b.iter().cloned());
                        next.push(c);
                    }
                }
                acc = next;
            }
            acc
        }
        Formula::Implies(..) | Formula::Iff(..) => {
            unreachable!("nnf removes -> and <->")
        }
        Formula::Exists(..) | Formula::Forall(..) => {
            panic!("dnf: input contains quantifiers; prenex first")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sentence, NatInterpretation};
    use crate::parser::parse_formula;

    #[test]
    fn distributes_and_over_or() {
        let f = parse_formula("(P() | Q()) & R()").unwrap();
        let cs = dnf_conjunctions(&f);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].len(), 2);
    }

    #[test]
    fn handles_negations() {
        let f = parse_formula("!(P() & Q())").unwrap();
        let cs = dnf_conjunctions(&f);
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.len() == 1 && !c[0].positive));
    }

    #[test]
    fn true_yields_single_empty_conjunction() {
        assert_eq!(
            dnf_conjunctions(&Formula::True),
            vec![Vec::<Literal>::new()]
        );
    }

    #[test]
    fn false_yields_no_conjunctions() {
        assert!(dnf_conjunctions(&Formula::False).is_empty());
    }

    #[test]
    fn dnf_preserves_semantics() {
        let universe: Vec<u64> = (0..3).collect();
        let sentences = [
            "(0 < 1 | 1 < 0) & !(2 < 1)",
            "!(0 = 1 & 1 = 1) | (0 < 2 <-> 1 < 2)",
            "0 = 0 -> (1 = 2 | 2 = 2)",
        ];
        for s in sentences {
            let f = parse_formula(s).unwrap();
            let g = dnf(&f);
            let a = eval_sentence(&NatInterpretation, &universe, &f).unwrap();
            let b = eval_sentence(&NatInterpretation, &universe, &g).unwrap();
            assert_eq!(a, b, "dnf changed semantics of `{s}`");
        }
    }

    #[test]
    #[should_panic(expected = "quantifiers")]
    fn panics_on_quantifier() {
        let f = parse_formula("exists x. P(x)").unwrap();
        let _ = dnf_conjunctions(&f);
    }

    #[test]
    fn exponential_case_size() {
        // (a1|b1)&(a2|b2)&(a3|b3) has 8 conjunctions.
        let f = parse_formula("(a1() | b1()) & (a2() | b2()) & (a3() | b3())").unwrap();
        assert_eq!(dnf_conjunctions(&f).len(), 8);
    }
}
