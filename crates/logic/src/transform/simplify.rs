//! Constant folding and local simplification.

use crate::formula::Formula;
use crate::term::{Sym, Term};

/// Simplify a formula:
///
/// * folds boolean constants through all connectives and quantifiers;
/// * evaluates ground equalities and comparisons between literals;
/// * removes duplicate conjuncts/disjuncts and syntactic tautologies
///   (`t = t`) and contradictions (`t != t`);
/// * drops quantifiers whose body does not mention the bound variable.
///
/// Simplification is semantics-preserving over every structure (all rules
/// are valid first-order equivalences); it does *not* attempt any
/// domain-specific reasoning.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Pred(name, args) => simplify_pred(name, args),
        Formula::Eq(a, b) => simplify_eq(a, b),
        Formula::Not(inner) => Formula::not(simplify(inner)),
        Formula::And(fs) => {
            let mut seen = Vec::new();
            for g in fs {
                let s = simplify(g);
                match s {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => {
                        for h in inner {
                            if !seen.contains(&h) {
                                seen.push(h);
                            }
                        }
                    }
                    other => {
                        if !seen.contains(&other) {
                            seen.push(other);
                        }
                    }
                }
            }
            // Detect complementary literal pairs.
            for g in &seen {
                if seen.contains(&Formula::not(g.clone())) {
                    return Formula::False;
                }
            }
            Formula::and(seen)
        }
        Formula::Or(fs) => {
            let mut seen = Vec::new();
            for g in fs {
                let s = simplify(g);
                match s {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => {
                        for h in inner {
                            if !seen.contains(&h) {
                                seen.push(h);
                            }
                        }
                    }
                    other => {
                        if !seen.contains(&other) {
                            seen.push(other);
                        }
                    }
                }
            }
            for g in &seen {
                if seen.contains(&Formula::not(g.clone())) {
                    return Formula::True;
                }
            }
            Formula::or(seen)
        }
        Formula::Implies(a, b) => {
            let sa = simplify(a);
            let sb = simplify(b);
            match (&sa, &sb) {
                (Formula::True, _) => sb,
                (Formula::False, _) => Formula::True,
                (_, Formula::True) => Formula::True,
                (_, Formula::False) => Formula::not(sa),
                _ if sa == sb => Formula::True,
                _ => Formula::implies(sa, sb),
            }
        }
        Formula::Iff(a, b) => {
            let sa = simplify(a);
            let sb = simplify(b);
            match (&sa, &sb) {
                (Formula::True, _) => sb,
                (_, Formula::True) => sa,
                (Formula::False, _) => Formula::not(sb),
                (_, Formula::False) => Formula::not(sa),
                _ if sa == sb => Formula::True,
                _ => Formula::iff(sa, sb),
            }
        }
        Formula::Exists(v, body) => {
            let sb = simplify(body);
            match sb {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                other if !other.free_vars().contains(v) => other,
                other => Formula::exists(v.clone(), other),
            }
        }
        Formula::Forall(v, body) => {
            let sb = simplify(body);
            match sb {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                other if !other.free_vars().contains(v) => other,
                other => Formula::forall(v.clone(), other),
            }
        }
    }
}

fn simplify_eq(a: &Term, b: &Term) -> Formula {
    if a == b {
        return Formula::True;
    }
    match (a, b) {
        (Term::Nat(x), Term::Nat(y)) => {
            if x == y {
                Formula::True
            } else {
                Formula::False
            }
        }
        (Term::Str(x), Term::Str(y)) => {
            if x == y {
                Formula::True
            } else {
                Formula::False
            }
        }
        // Literals of different kinds denote distinct sorts in every domain
        // of the paper (numbers vs words); leave them symbolic to stay
        // domain-agnostic.
        _ => Formula::Eq(a.clone(), b.clone()),
    }
}

fn simplify_pred(name: &Sym, args: &[Term]) -> Formula {
    if args.len() == 2 {
        if let (Term::Nat(x), Term::Nat(y)) = (&args[0], &args[1]) {
            let value = match name.as_str() {
                "<" => Some(x < y),
                "<=" => Some(x <= y),
                ">" => Some(x > y),
                ">=" => Some(x >= y),
                _ => None,
            };
            if let Some(v) = value {
                return if v { Formula::True } else { Formula::False };
            }
        }
    }
    Formula::Pred(name.clone(), args.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn simp(s: &str) -> Formula {
        simplify(&parse_formula(s).unwrap())
    }

    #[test]
    fn folds_ground_comparisons() {
        assert_eq!(simp("1 < 2"), Formula::True);
        assert_eq!(simp("2 < 1"), Formula::False);
        assert_eq!(simp("3 = 3"), Formula::True);
        assert_eq!(simp("3 = 4"), Formula::False);
    }

    #[test]
    fn reflexive_equality_is_true() {
        assert_eq!(simp("x = x"), Formula::True);
        assert_eq!(simp("x != x"), Formula::False);
    }

    #[test]
    fn and_with_false_collapses() {
        assert_eq!(simp("P(x) & 1 = 2"), Formula::False);
    }

    #[test]
    fn or_with_true_collapses() {
        assert_eq!(simp("P(x) | 1 = 1"), Formula::True);
    }

    #[test]
    fn duplicate_conjuncts_removed() {
        assert_eq!(simp("P(x) & P(x)"), parse_formula("P(x)").unwrap());
    }

    #[test]
    fn complementary_literals_detected() {
        assert_eq!(simp("P(x) & !P(x)"), Formula::False);
        assert_eq!(simp("P(x) | !P(x)"), Formula::True);
    }

    #[test]
    fn vacuous_quantifier_dropped() {
        assert_eq!(simp("exists x. P(y)"), parse_formula("P(y)").unwrap());
    }

    #[test]
    fn quantifier_over_constant_body() {
        assert_eq!(simp("forall x. 1 = 1"), Formula::True);
        assert_eq!(simp("exists x. 1 = 2"), Formula::False);
    }

    #[test]
    fn implication_folding() {
        assert_eq!(simp("1 = 1 -> P(x)"), parse_formula("P(x)").unwrap());
        assert_eq!(simp("1 = 2 -> P(x)"), Formula::True);
        assert_eq!(simp("P(x) -> P(x)"), Formula::True);
    }

    #[test]
    fn iff_folding() {
        assert_eq!(simp("P(x) <-> 1 = 1"), parse_formula("P(x)").unwrap());
        assert_eq!(simp("P(x) <-> P(x)"), Formula::True);
    }

    #[test]
    fn distinct_string_literals_fold() {
        assert_eq!(simp("\"1\" = \"1\""), Formula::True);
        assert_eq!(simp("\"1\" = \"&\""), Formula::False);
    }

    #[test]
    fn mixed_literal_kinds_left_symbolic() {
        // 0 vs "" — kept symbolic on purpose (sorts are domain-specific).
        let f = simp("0 = \"\"");
        assert!(matches!(f, Formula::Eq(..)));
    }
}
