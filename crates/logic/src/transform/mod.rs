//! Standard formula transformations.
//!
//! The quantifier-elimination procedures of `fq-domains` all follow the same
//! recipe the paper uses in its Appendix: reduce to eliminating a single
//! existential over a quantifier-free body, push the body into disjunctive
//! normal form ("because the existential quantifier can be distributed to a
//! disjunction"), and treat each conjunction of literals separately. The
//! transforms here provide those steps generically.

mod dnf;
mod nnf;
mod prenex;
mod simplify;

pub use dnf::{dnf, dnf_conjunctions, dnf_conjunctions_wrt, DnfPiece, Literal};
pub use nnf::{is_nnf, nnf};
pub use prenex::{prenex, PrenexFormula, Quantifier};
pub use simplify::simplify;
