//! Prenex normal form.

use crate::formula::Formula;
use crate::subst::rename_bound;
use crate::transform::nnf::nnf;

/// A quantifier kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantifier {
    Exists,
    Forall,
}

/// A formula in prenex normal form: a quantifier prefix over a
/// quantifier-free matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrenexFormula {
    /// Outermost quantifier first.
    pub prefix: Vec<(Quantifier, String)>,
    /// Quantifier-free matrix in NNF.
    pub matrix: Formula,
}

impl PrenexFormula {
    /// Reassemble the ordinary formula.
    pub fn to_formula(&self) -> Formula {
        self.prefix
            .iter()
            .rev()
            .fold(self.matrix.clone(), |acc, (q, v)| match q {
                Quantifier::Exists => Formula::exists(v.clone(), acc),
                Quantifier::Forall => Formula::forall(v.clone(), acc),
            })
    }

    /// Number of quantifier alternations in the prefix.
    pub fn alternations(&self) -> usize {
        self.prefix.windows(2).filter(|w| w[0].0 != w[1].0).count()
    }
}

/// Convert a formula to prenex normal form. The input is first brought to
/// NNF with all bound variables renamed apart, after which quantifiers can
/// be hoisted without capture.
pub fn prenex(f: &Formula) -> PrenexFormula {
    let prepared = rename_bound(&nnf(f));
    let mut prefix = Vec::new();
    let matrix = hoist(&prepared, &mut prefix);
    PrenexFormula { prefix, matrix }
}

fn hoist(f: &Formula, prefix: &mut Vec<(Quantifier, String)>) -> Formula {
    match f {
        Formula::Exists(v, body) => {
            prefix.push((Quantifier::Exists, v.clone()));
            hoist(body, prefix)
        }
        Formula::Forall(v, body) => {
            prefix.push((Quantifier::Forall, v.clone()));
            hoist(body, prefix)
        }
        Formula::And(fs) => Formula::and(fs.iter().map(|g| hoist(g, prefix)).collect::<Vec<_>>()),
        Formula::Or(fs) => Formula::or(fs.iter().map(|g| hoist(g, prefix)).collect::<Vec<_>>()),
        // NNF input: no Implies/Iff remain; negations wrap atoms only.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sentence, NatInterpretation};
    use crate::parser::parse_formula;

    #[test]
    fn already_prenex() {
        let f = parse_formula("exists x. forall y. x <= y").unwrap();
        let p = prenex(&f);
        assert_eq!(p.prefix.len(), 2);
        assert_eq!(p.prefix[0].0, Quantifier::Exists);
        assert_eq!(p.prefix[1].0, Quantifier::Forall);
        assert!(p.matrix.is_quantifier_free());
    }

    #[test]
    fn hoists_from_conjunction() {
        let f = parse_formula("(exists x. P(x)) & exists y. Q(y)").unwrap();
        let p = prenex(&f);
        assert_eq!(p.prefix.len(), 2);
        assert!(p.matrix.is_quantifier_free());
    }

    #[test]
    fn renames_clashing_binders() {
        let f = parse_formula("(exists x. P(x)) & exists x. Q(x)").unwrap();
        let p = prenex(&f);
        let names: Vec<_> = p.prefix.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn negation_flips_quantifier() {
        let f = parse_formula("!(forall x. P(x))").unwrap();
        let p = prenex(&f);
        assert_eq!(p.prefix, vec![(Quantifier::Exists, "x".to_string())]);
    }

    #[test]
    fn to_formula_round_trip_semantics() {
        let universe: Vec<u64> = (0..4).collect();
        let sentences = [
            "(exists x. forall y. y <= x) & forall z. z < 4",
            "!(forall x. exists y. x < y) | exists w. w = 0",
            "forall x. (exists y. x < y) -> x < 3",
        ];
        for s in sentences {
            let f = parse_formula(s).unwrap();
            let p = prenex(&f).to_formula();
            let a = eval_sentence(&NatInterpretation, &universe, &f).unwrap();
            let b = eval_sentence(&NatInterpretation, &universe, &p).unwrap();
            assert_eq!(a, b, "prenex changed semantics of `{s}`");
        }
    }

    #[test]
    fn alternation_count() {
        let f = parse_formula("exists x. forall y. exists z. x < y & y < z").unwrap();
        assert_eq!(prenex(&f).alternations(), 2);
    }
}
