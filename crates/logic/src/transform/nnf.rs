//! Negation normal form.

use crate::formula::Formula;

/// Convert to negation normal form: negations are pushed down to atoms,
/// and `->`/`<->` are expanded away.
pub fn nnf(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => f.clone(),
        Formula::Not(inner) => nnf_neg(inner),
        Formula::And(fs) => Formula::and(fs.iter().map(nnf)),
        Formula::Or(fs) => Formula::or(fs.iter().map(nnf)),
        Formula::Implies(a, b) => Formula::or([nnf_neg(a), nnf(b)]),
        Formula::Iff(a, b) => {
            // (a & b) | (!a & !b)
            Formula::or([
                Formula::and([nnf(a), nnf(b)]),
                Formula::and([nnf_neg(a), nnf_neg(b)]),
            ])
        }
        Formula::Exists(v, body) => Formula::exists(v.clone(), nnf(body)),
        Formula::Forall(v, body) => Formula::forall(v.clone(), nnf(body)),
    }
}

/// NNF of the negation of `f`.
fn nnf_neg(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Pred(..) | Formula::Eq(..) => Formula::Not(Box::new(f.clone())),
        Formula::Not(inner) => nnf(inner),
        Formula::And(fs) => Formula::or(fs.iter().map(nnf_neg)),
        Formula::Or(fs) => Formula::and(fs.iter().map(nnf_neg)),
        Formula::Implies(a, b) => Formula::and([nnf(a), nnf_neg(b)]),
        Formula::Iff(a, b) => {
            // (a & !b) | (!a & b)
            Formula::or([
                Formula::and([nnf(a), nnf_neg(b)]),
                Formula::and([nnf_neg(a), nnf(b)]),
            ])
        }
        Formula::Exists(v, body) => Formula::forall(v.clone(), nnf_neg(body)),
        Formula::Forall(v, body) => Formula::exists(v.clone(), nnf_neg(body)),
    }
}

/// Whether a formula is in negation normal form.
pub fn is_nnf(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => true,
        Formula::Not(inner) => matches!(inner.as_ref(), Formula::Pred(..) | Formula::Eq(..)),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_nnf),
        Formula::Implies(..) | Formula::Iff(..) => false,
        Formula::Exists(_, body) | Formula::Forall(_, body) => is_nnf(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sentence, NatInterpretation};
    use crate::parser::parse_formula;

    #[test]
    fn pushes_negation_through_quantifiers() {
        let f = parse_formula("!(exists x. P(x))").unwrap();
        let g = nnf(&f);
        assert_eq!(g, parse_formula("forall x. !P(x)").unwrap());
    }

    #[test]
    fn de_morgan() {
        let f = parse_formula("!(P() & Q())").unwrap();
        assert_eq!(nnf(&f), parse_formula("!P() | !Q()").unwrap());
    }

    #[test]
    fn expands_implication() {
        let f = parse_formula("P() -> Q()").unwrap();
        assert_eq!(nnf(&f), parse_formula("!P() | Q()").unwrap());
    }

    #[test]
    fn double_negation_eliminated() {
        let f = parse_formula("!!P()").unwrap();
        assert_eq!(nnf(&f), parse_formula("P()").unwrap());
    }

    #[test]
    fn result_is_nnf() {
        let samples = [
            "!(P() <-> Q())",
            "!(forall x. P(x) -> exists y. Q(y))",
            "!(x = y | !(y = z))",
        ];
        for s in samples {
            let f = parse_formula(s).unwrap();
            assert!(is_nnf(&nnf(&f)), "nnf of `{s}` not in NNF");
        }
    }

    #[test]
    fn nnf_preserves_semantics_over_small_universe() {
        let universe: Vec<u64> = (0..4).collect();
        let sentences = [
            "!(exists x. forall y. x <= y -> x = y)",
            "forall x. !(x < 2 <-> x < 3)",
            "!(forall x. exists y. x < y)",
        ];
        for s in sentences {
            let f = parse_formula(s).unwrap();
            let g = nnf(&f);
            let a = eval_sentence(&NatInterpretation, &universe, &f).unwrap();
            let b = eval_sentence(&NatInterpretation, &universe, &g).unwrap();
            assert_eq!(a, b, "semantics changed for `{s}`");
        }
    }
}
