//! Capture-avoiding substitution and fresh-variable generation.
//!
//! Theorem 3.1 of the paper substitutes a fresh variable `z` for the scheme
//! constant `c` ("the operation [z/c] of substituting the variable z for the
//! constant symbol c"); [`substitute_const`] implements exactly that, while
//! [`substitute`] is the usual term-for-variable substitution used by every
//! quantifier-elimination procedure.

use crate::formula::Formula;
use crate::term::Term;
use std::collections::BTreeSet;

/// Produce a variable name based on `base` that does not occur in `taken`.
pub fn fresh_var(base: &str, taken: &BTreeSet<String>) -> String {
    if !taken.contains(base) {
        return base.to_string();
    }
    for i in 0.. {
        let cand = format!("{base}_{i}");
        if !taken.contains(&cand) {
            return cand;
        }
    }
    unreachable!("the loop above always returns")
}

/// Capture-avoiding substitution of `replacement` for free occurrences of
/// `var` in `formula`. Bound variables that would capture a variable of the
/// replacement term are renamed first.
pub fn substitute(formula: &Formula, var: &str, replacement: &Term) -> Formula {
    let repl_vars = replacement.vars();
    subst_inner(formula, var, replacement, &repl_vars)
}

fn subst_inner(
    formula: &Formula,
    var: &str,
    replacement: &Term,
    repl_vars: &BTreeSet<String>,
) -> Formula {
    match formula {
        Formula::True | Formula::False => formula.clone(),
        Formula::Pred(name, args) => Formula::Pred(
            name.clone(),
            args.iter().map(|t| t.subst_var(var, replacement)).collect(),
        ),
        Formula::Eq(a, b) => {
            Formula::Eq(a.subst_var(var, replacement), b.subst_var(var, replacement))
        }
        Formula::Not(f) => Formula::Not(Box::new(subst_inner(f, var, replacement, repl_vars))),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|f| subst_inner(f, var, replacement, repl_vars))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|f| subst_inner(f, var, replacement, repl_vars))
                .collect(),
        ),
        Formula::Implies(a, b) => Formula::implies(
            subst_inner(a, var, replacement, repl_vars),
            subst_inner(b, var, replacement, repl_vars),
        ),
        Formula::Iff(a, b) => Formula::iff(
            subst_inner(a, var, replacement, repl_vars),
            subst_inner(b, var, replacement, repl_vars),
        ),
        Formula::Exists(v, body) | Formula::Forall(v, body) => {
            let is_exists = matches!(formula, Formula::Exists(..));
            if v == var {
                // The substituted variable is shadowed here.
                return formula.clone();
            }
            let (v2, body2) = if repl_vars.contains(v) {
                // Rename the binder to avoid capture.
                let mut taken: BTreeSet<String> = body.all_vars();
                taken.extend(repl_vars.iter().cloned());
                taken.insert(var.to_string());
                let fresh = fresh_var(v, &taken);
                let renamed = substitute(body, v, &Term::var(fresh.clone()));
                (fresh, renamed)
            } else {
                (v.clone(), body.as_ref().clone())
            };
            let new_body = subst_inner(&body2, var, replacement, repl_vars);
            if is_exists {
                Formula::exists(v2, new_body)
            } else {
                Formula::forall(v2, new_body)
            }
        }
    }
}

/// Replace every occurrence of the named constant `c` (a nullary
/// application) with the given term — the paper's `[z/c]` operation.
///
/// The caller is responsible for choosing a replacement variable that is not
/// bound anywhere in the formula (Theorem 3.1 picks "a variable, say z, not
/// used in the formulas").
pub fn substitute_const(formula: &Formula, constant: &str, replacement: &Term) -> Formula {
    fn in_term(t: &Term, constant: &str, replacement: &Term) -> Term {
        match t {
            Term::App(name, args) if name == constant && args.is_empty() => replacement.clone(),
            Term::App(name, args) => Term::App(
                name.clone(),
                args.iter()
                    .map(|a| in_term(a, constant, replacement))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    formula.map_atoms(&mut |atom| match atom {
        Formula::Pred(name, args) => Formula::Pred(
            name.clone(),
            args.iter()
                .map(|t| in_term(t, constant, replacement))
                .collect(),
        ),
        Formula::Eq(a, b) => Formula::Eq(
            in_term(a, constant, replacement),
            in_term(b, constant, replacement),
        ),
        other => other.clone(),
    })
}

/// Convert free variables whose names appear in `constants` into named
/// constants (nullary applications).
///
/// The concrete syntax cannot distinguish the scheme constant `c` of
/// Theorem 3.1 from a variable named `c`; after parsing, this pass applies
/// the scheme's declaration. Bound occurrences are left untouched.
pub fn bind_constants(formula: &Formula, constants: &BTreeSet<String>) -> Formula {
    fn in_term(t: &Term, constants: &BTreeSet<String>, bound: &[String]) -> Term {
        match t {
            Term::Var(v) if constants.contains(v.as_str()) && !bound.iter().any(|b| b == v) => {
                Term::named(v.clone())
            }
            Term::App(name, args) => Term::App(
                name.clone(),
                args.iter().map(|a| in_term(a, constants, bound)).collect(),
            ),
            other => other.clone(),
        }
    }
    fn walk(f: &Formula, constants: &BTreeSet<String>, bound: &mut Vec<String>) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Pred(name, args) => Formula::Pred(
                name.clone(),
                args.iter().map(|t| in_term(t, constants, bound)).collect(),
            ),
            Formula::Eq(a, b) => {
                Formula::Eq(in_term(a, constants, bound), in_term(b, constants, bound))
            }
            Formula::Not(inner) => Formula::Not(Box::new(walk(inner, constants, bound))),
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|g| walk(g, constants, bound)).collect())
            }
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| walk(g, constants, bound)).collect()),
            Formula::Implies(a, b) => {
                Formula::implies(walk(a, constants, bound), walk(b, constants, bound))
            }
            Formula::Iff(a, b) => {
                Formula::iff(walk(a, constants, bound), walk(b, constants, bound))
            }
            Formula::Exists(v, body) | Formula::Forall(v, body) => {
                let is_exists = matches!(f, Formula::Exists(..));
                bound.push(v.clone());
                let new_body = walk(body, constants, bound);
                bound.pop();
                if is_exists {
                    Formula::exists(v.clone(), new_body)
                } else {
                    Formula::forall(v.clone(), new_body)
                }
            }
        }
    }
    walk(formula, constants, &mut Vec::new())
}

/// Rename all bound variables so that they are pairwise distinct and
/// distinct from every free variable (a "Barendregt convention" pass).
pub fn rename_bound(formula: &Formula) -> Formula {
    let mut taken = formula.free_vars();
    rename_inner(formula, &mut taken)
}

fn rename_inner(formula: &Formula, taken: &mut BTreeSet<String>) -> Formula {
    match formula {
        Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => formula.clone(),
        Formula::Not(f) => Formula::Not(Box::new(rename_inner(f, taken))),
        Formula::And(fs) => Formula::And(fs.iter().map(|f| rename_inner(f, taken)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|f| rename_inner(f, taken)).collect()),
        Formula::Implies(a, b) => Formula::implies(rename_inner(a, taken), rename_inner(b, taken)),
        Formula::Iff(a, b) => Formula::iff(rename_inner(a, taken), rename_inner(b, taken)),
        Formula::Exists(v, body) | Formula::Forall(v, body) => {
            let is_exists = matches!(formula, Formula::Exists(..));
            let fresh = fresh_var(v, taken);
            taken.insert(fresh.clone());
            let body2 = if fresh == *v {
                body.as_ref().clone()
            } else {
                substitute(body, v, &Term::var(fresh.clone()))
            };
            let new_body = rename_inner(&body2, taken);
            if is_exists {
                Formula::exists(fresh, new_body)
            } else {
                Formula::forall(fresh, new_body)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    #[test]
    fn substitute_free_occurrence() {
        let f = parse_formula("P(x) & exists y. Q(x, y)").unwrap();
        let g = substitute(&f, "x", &Term::Nat(3));
        assert_eq!(g, parse_formula("P(3) & exists y. Q(3, y)").unwrap());
    }

    #[test]
    fn substitute_respects_shadowing() {
        let f = parse_formula("exists x. P(x)").unwrap();
        let g = substitute(&f, "x", &Term::Nat(3));
        assert_eq!(g, f);
    }

    #[test]
    fn substitute_avoids_capture() {
        // Substituting y for x under a binder for y must rename the binder.
        let f = parse_formula("exists y. P(x, y)").unwrap();
        let g = substitute(&f, "x", &Term::var("y"));
        match g {
            Formula::Exists(v, body) => {
                assert_ne!(v, "y", "binder must be renamed");
                // The substituted free y is present; bound var differs.
                assert!(body.free_vars().contains("y"));
            }
            _ => panic!("expected Exists"),
        }
    }

    fn consts(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn substitute_const_is_papers_z_for_c() {
        // The formula M(x) = P(M, c, x) of Theorem 3.1: parse, declare `c`
        // a scheme constant, then apply [z/c].
        let f = bind_constants(&parse_formula("P(m0, c, x)").unwrap(), &consts(&["c"]));
        assert_eq!(f.free_vars(), consts(&["m0", "x"]));
        let g = substitute_const(&f, "c", &Term::var("z"));
        assert_eq!(g, parse_formula("P(m0, z, x)").unwrap());
    }

    #[test]
    fn substitute_const_ignores_applied_symbol() {
        // `c(x)` is a unary application, not the constant `c`.
        let f = bind_constants(&parse_formula("P(c(x), c)").unwrap(), &consts(&["c"]));
        let g = substitute_const(&f, "c", &Term::Nat(0));
        assert_eq!(g, parse_formula("P(c(x), 0)").unwrap());
    }

    #[test]
    fn bind_constants_respects_binders() {
        // `exists c. P(c)` — the bound c stays a variable.
        let f = bind_constants(
            &parse_formula("P(c) & exists c. Q(c)").unwrap(),
            &consts(&["c"]),
        );
        assert_eq!(f, {
            let q = parse_formula("exists c. Q(c)").unwrap();
            Formula::and([Formula::pred("P", vec![Term::named("c")]), q])
        });
    }

    #[test]
    fn rename_bound_distinct() {
        let f = parse_formula("(exists x. P(x)) & exists x. Q(x)").unwrap();
        let g = rename_bound(&f);
        let mut binders = Vec::new();
        g.visit(&mut |sub| {
            if let Formula::Exists(v, _) = sub {
                binders.push(v.clone());
            }
        });
        assert_eq!(binders.len(), 2);
        assert_ne!(binders[0], binders[1]);
    }

    #[test]
    fn rename_bound_preserves_free() {
        let f = parse_formula("P(x) & exists x. Q(x)").unwrap();
        let g = rename_bound(&f);
        assert!(g.free_vars().contains("x"));
    }

    #[test]
    fn fresh_var_avoids_taken() {
        let taken: BTreeSet<String> = ["x".to_string(), "x_0".to_string()].into();
        assert_eq!(fresh_var("x", &taken), "x_1");
        assert_eq!(fresh_var("y", &taken), "y");
    }
}
