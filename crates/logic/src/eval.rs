//! Evaluation of formulas over a finite universe slice.
//!
//! Quantifiers range over an explicitly supplied finite set of elements.
//! This gives exactly the *active-domain semantics* used throughout the
//! paper's Section 2 (and, with a large enough slice, bounded model checking
//! for testing the quantifier-elimination procedures of `fq-domains`).

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::{Sym, Term};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// An interpretation of the non-logical symbols over elements of type
/// [`Interpretation::Elem`].
pub trait Interpretation {
    /// The element type of the structure.
    type Elem: Clone + Eq + Ord + Debug;

    /// Interpret a natural-number literal.
    fn nat(&self, n: u64) -> Result<Self::Elem, LogicError>;

    /// Interpret a string literal.
    fn str_lit(&self, s: &str) -> Result<Self::Elem, LogicError> {
        Err(LogicError::eval(format!(
            "string literal \"{s}\" has no interpretation in this structure"
        )))
    }

    /// Interpret a named constant (nullary application).
    fn named_const(&self, name: &str) -> Result<Self::Elem, LogicError> {
        Err(LogicError::eval(format!("unknown constant `{name}`")))
    }

    /// Interpret a function application.
    fn func(&self, name: &str, args: &[Self::Elem]) -> Result<Self::Elem, LogicError>;

    /// Interpret a predicate application.
    fn pred(&self, name: &str, args: &[Self::Elem]) -> Result<bool, LogicError>;
}

/// A variable assignment.
pub type Assignment<E> = BTreeMap<String, E>;

/// Evaluate a term under an interpretation and assignment.
pub fn eval_term<I: Interpretation>(
    interp: &I,
    env: &Assignment<I::Elem>,
    term: &Term,
) -> Result<I::Elem, LogicError> {
    match term {
        Term::Var(v) => env
            .get(v.as_str())
            .cloned()
            .ok_or_else(|| LogicError::eval(format!("unbound variable `{v}`"))),
        Term::Nat(n) => interp.nat(*n),
        Term::Str(s) => interp.str_lit(s),
        Term::App(name, args) => {
            if args.is_empty() {
                interp.named_const(name)
            } else {
                let vals: Result<Vec<_>, _> =
                    args.iter().map(|a| eval_term(interp, env, a)).collect();
                interp.func(name, &vals?)
            }
        }
    }
}

/// Evaluate a formula with quantifiers ranging over `universe`.
pub fn eval<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    env: &mut Assignment<I::Elem>,
    formula: &Formula,
) -> Result<bool, LogicError> {
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Pred(name, args) => {
            let vals: Result<Vec<_>, _> = args.iter().map(|a| eval_term(interp, env, a)).collect();
            interp.pred(name, &vals?)
        }
        Formula::Eq(a, b) => Ok(eval_term(interp, env, a)? == eval_term(interp, env, b)?),
        Formula::Not(f) => Ok(!eval(interp, universe, env, f)?),
        Formula::And(fs) => {
            for f in fs {
                if !eval(interp, universe, env, f)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if eval(interp, universe, env, f)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => {
            Ok(!eval(interp, universe, env, a)? || eval(interp, universe, env, b)?)
        }
        Formula::Iff(a, b) => {
            Ok(eval(interp, universe, env, a)? == eval(interp, universe, env, b)?)
        }
        Formula::Exists(v, body) => {
            let saved = env.get(v).cloned();
            let mut found = false;
            for e in universe {
                env.insert(v.clone(), e.clone());
                if eval(interp, universe, env, body)? {
                    found = true;
                    break;
                }
            }
            restore(env, v, saved);
            Ok(found)
        }
        Formula::Forall(v, body) => {
            let saved = env.get(v).cloned();
            let mut all = true;
            for e in universe {
                env.insert(v.clone(), e.clone());
                if !eval(interp, universe, env, body)? {
                    all = false;
                    break;
                }
            }
            restore(env, v, saved);
            Ok(all)
        }
    }
}

fn restore<E>(env: &mut Assignment<E>, var: &str, saved: Option<E>) {
    match saved {
        Some(old) => {
            env.insert(var.to_string(), old);
        }
        None => {
            env.remove(var);
        }
    }
}

/// Evaluate a sentence (no free variables) over a finite universe.
pub fn eval_sentence<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    sentence: &Formula,
) -> Result<bool, LogicError> {
    eval(interp, universe, &mut Assignment::new(), sentence)
}

/// Enumerate all assignments of `universe` elements to `vars` that satisfy
/// the formula. Returns tuples in the order of `vars`.
///
/// This is the brute-force "answer the query over the active domain"
/// operation; `fq-relational` layers schema handling on top of it.
pub fn solutions<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    vars: &[String],
    formula: &Formula,
) -> Result<Vec<Vec<I::Elem>>, LogicError> {
    let mut out = Vec::new();
    let mut env = Assignment::new();
    let mut prefix = Vec::with_capacity(vars.len());
    enumerate(
        interp,
        universe,
        vars,
        formula,
        &mut env,
        &mut prefix,
        &mut out,
    )?;
    Ok(out)
}

fn enumerate<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    vars: &[String],
    formula: &Formula,
    env: &mut Assignment<I::Elem>,
    prefix: &mut Vec<I::Elem>,
    out: &mut Vec<Vec<I::Elem>>,
) -> Result<(), LogicError> {
    match vars.split_first() {
        None => {
            if eval(interp, universe, env, formula)? {
                // `prefix` holds the values of the original vars in order,
                // built front-to-back — no per-row front insertion.
                out.push(prefix.clone());
            }
            Ok(())
        }
        Some((first, rest)) => {
            for e in universe {
                env.insert(first.clone(), e.clone());
                prefix.push(e.clone());
                enumerate(interp, universe, rest, formula, env, prefix, out)?;
                prefix.pop();
            }
            env.remove(first);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Slot-compiled evaluation.
// ---------------------------------------------------------------------
//
// The string-keyed [`Assignment`] map costs a `String` clone and a
// `BTreeMap` probe per variable read/write in the innermost loops of
// [`eval`] and [`solutions`]. [`compile_slots`] removes both: one pass
// over the formula resolves every variable occurrence to an index into a
// flat frame (free variables first, then one fresh slot per quantifier
// node, de Bruijn-style), so evaluation indexes a `Vec<Option<Elem>>`
// instead of hashing names. Results are identical to the string-keyed
// evaluator — including the "unbound variable" errors, which are
// reported lazily from the slot's recorded name.

/// A term with variables resolved to frame slots.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SlotTerm {
    Slot(usize),
    Nat(u64),
    Str(String),
    App(Sym, Vec<SlotTerm>),
}

/// A formula with every variable occurrence resolved to a frame slot.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SlotNode {
    True,
    False,
    Pred(Sym, Vec<SlotTerm>),
    Eq(SlotTerm, SlotTerm),
    Not(Box<SlotNode>),
    And(Vec<SlotNode>),
    Or(Vec<SlotNode>),
    Implies(Box<SlotNode>, Box<SlotNode>),
    Iff(Box<SlotNode>, Box<SlotNode>),
    Exists(usize, Box<SlotNode>),
    Forall(usize, Box<SlotNode>),
}

/// A formula compiled for frame-indexed evaluation: the answer variables
/// occupy slots `0..free_slots()` in the order given to [`compile_slots`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotFormula {
    root: SlotNode,
    /// Slot index → variable name, for diagnostics.
    names: Vec<String>,
    /// Number of leading slots holding the answer variables.
    free: usize,
}

impl SlotFormula {
    /// Total frame size (answer variables + quantifier slots + slots for
    /// variables that turned out unbound).
    pub fn frame_size(&self) -> usize {
        self.names.len()
    }

    /// Number of leading answer-variable slots.
    pub fn free_slots(&self) -> usize {
        self.free
    }
}

struct SlotCompiler {
    /// Innermost-last scope stack: (name, slot).
    scope: Vec<(String, usize)>,
    /// Slot index → name.
    names: Vec<String>,
    /// Variables bound neither by `free_vars` nor a quantifier: they get
    /// a slot that is never written, so reading one errors exactly like
    /// the string-keyed evaluator's missing-assignment lookup.
    unbound: BTreeMap<String, usize>,
}

impl SlotCompiler {
    fn resolve(&mut self, v: &str) -> usize {
        if let Some((_, slot)) = self.scope.iter().rev().find(|(name, _)| name == v) {
            return *slot;
        }
        if let Some(slot) = self.unbound.get(v) {
            return *slot;
        }
        let slot = self.names.len();
        self.names.push(v.to_string());
        self.unbound.insert(v.to_string(), slot);
        slot
    }

    fn term(&mut self, t: &Term) -> SlotTerm {
        match t {
            Term::Var(v) => SlotTerm::Slot(self.resolve(v.as_str())),
            Term::Nat(n) => SlotTerm::Nat(*n),
            Term::Str(s) => SlotTerm::Str(s.clone()),
            Term::App(name, args) => {
                SlotTerm::App(name.clone(), args.iter().map(|a| self.term(a)).collect())
            }
        }
    }

    fn node(&mut self, f: &Formula) -> SlotNode {
        match f {
            Formula::True => SlotNode::True,
            Formula::False => SlotNode::False,
            Formula::Pred(name, args) => {
                SlotNode::Pred(name.clone(), args.iter().map(|a| self.term(a)).collect())
            }
            Formula::Eq(a, b) => SlotNode::Eq(self.term(a), self.term(b)),
            Formula::Not(g) => SlotNode::Not(Box::new(self.node(g))),
            Formula::And(gs) => SlotNode::And(gs.iter().map(|g| self.node(g)).collect()),
            Formula::Or(gs) => SlotNode::Or(gs.iter().map(|g| self.node(g)).collect()),
            Formula::Implies(a, b) => {
                SlotNode::Implies(Box::new(self.node(a)), Box::new(self.node(b)))
            }
            Formula::Iff(a, b) => SlotNode::Iff(Box::new(self.node(a)), Box::new(self.node(b))),
            Formula::Exists(v, body) | Formula::Forall(v, body) => {
                // A fresh slot per quantifier node: shadowing resolves to
                // the innermost binder, and no save/restore is needed at
                // evaluation time because slots are never shared.
                let slot = self.names.len();
                self.names.push(v.clone());
                self.scope.push((v.clone(), slot));
                let body = self.node(body);
                self.scope.pop();
                if matches!(f, Formula::Exists(..)) {
                    SlotNode::Exists(slot, Box::new(body))
                } else {
                    SlotNode::Forall(slot, Box::new(body))
                }
            }
        }
    }
}

/// Compile a formula for frame-indexed evaluation. `free_vars` (the
/// answer variables, in output-column order) are assigned slots `0..n`.
pub fn compile_slots(formula: &Formula, free_vars: &[String]) -> SlotFormula {
    let mut c = SlotCompiler {
        scope: free_vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect(),
        names: free_vars.to_vec(),
        unbound: BTreeMap::new(),
    };
    let root = c.node(formula);
    SlotFormula {
        root,
        names: c.names,
        free: free_vars.len(),
    }
}

fn eval_slot_term<I: Interpretation>(
    interp: &I,
    frame: &[Option<I::Elem>],
    names: &[String],
    term: &SlotTerm,
) -> Result<I::Elem, LogicError> {
    match term {
        SlotTerm::Slot(i) => frame[*i]
            .clone()
            .ok_or_else(|| LogicError::eval(format!("unbound variable `{}`", names[*i]))),
        SlotTerm::Nat(n) => interp.nat(*n),
        SlotTerm::Str(s) => interp.str_lit(s),
        SlotTerm::App(name, args) => {
            if args.is_empty() {
                interp.named_const(name.as_str())
            } else {
                let vals: Result<Vec<_>, _> = args
                    .iter()
                    .map(|a| eval_slot_term(interp, frame, names, a))
                    .collect();
                interp.func(name.as_str(), &vals?)
            }
        }
    }
}

fn eval_slot_node<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    frame: &mut [Option<I::Elem>],
    names: &[String],
    node: &SlotNode,
) -> Result<bool, LogicError> {
    match node {
        SlotNode::True => Ok(true),
        SlotNode::False => Ok(false),
        SlotNode::Pred(name, args) => {
            let vals: Result<Vec<_>, _> = args
                .iter()
                .map(|a| eval_slot_term(interp, frame, names, a))
                .collect();
            interp.pred(name.as_str(), &vals?)
        }
        SlotNode::Eq(a, b) => Ok(
            eval_slot_term(interp, frame, names, a)? == eval_slot_term(interp, frame, names, b)?
        ),
        SlotNode::Not(f) => Ok(!eval_slot_node(interp, universe, frame, names, f)?),
        SlotNode::And(fs) => {
            for f in fs {
                if !eval_slot_node(interp, universe, frame, names, f)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        SlotNode::Or(fs) => {
            for f in fs {
                if eval_slot_node(interp, universe, frame, names, f)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        SlotNode::Implies(a, b) => Ok(!eval_slot_node(interp, universe, frame, names, a)?
            || eval_slot_node(interp, universe, frame, names, b)?),
        SlotNode::Iff(a, b) => Ok(eval_slot_node(interp, universe, frame, names, a)?
            == eval_slot_node(interp, universe, frame, names, b)?),
        SlotNode::Exists(slot, body) => {
            for e in universe {
                frame[*slot] = Some(e.clone());
                if eval_slot_node(interp, universe, frame, names, body)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        SlotNode::Forall(slot, body) => {
            for e in universe {
                frame[*slot] = Some(e.clone());
                if !eval_slot_node(interp, universe, frame, names, body)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// Evaluate a compiled formula with the answer slots pre-filled by
/// `assignment` (one element per free slot).
pub fn eval_slots<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    assignment: &[I::Elem],
    compiled: &SlotFormula,
) -> Result<bool, LogicError> {
    let mut frame: Vec<Option<I::Elem>> = vec![None; compiled.frame_size()];
    for (slot, e) in assignment.iter().enumerate() {
        frame[slot] = Some(e.clone());
    }
    eval_slot_node(
        interp,
        universe,
        &mut frame,
        &compiled.names,
        &compiled.root,
    )
}

/// Slot-compiled analogue of [`solutions`]: enumerate all assignments of
/// `universe` elements to the answer slots that satisfy the formula, in
/// the same row order as the string-keyed enumeration.
pub fn solutions_slots<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    compiled: &SlotFormula,
) -> Result<Vec<Vec<I::Elem>>, LogicError> {
    solutions_slots_fixed(interp, universe, compiled, &[])
}

/// [`solutions_slots`] with the first `fixed.len()` answer slots pinned
/// to the given elements. Returned rows include the pinned prefix, so
/// concatenating the results of `fixed = [e]` over `e ∈ universe` (in
/// universe order) reproduces `solutions_slots` exactly — the contract
/// the parallel fan-out in `fq-relational` relies on.
pub fn solutions_slots_fixed<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    compiled: &SlotFormula,
    fixed: &[I::Elem],
) -> Result<Vec<Vec<I::Elem>>, LogicError> {
    assert!(
        fixed.len() <= compiled.free,
        "more pinned elements than answer slots"
    );
    let mut frame: Vec<Option<I::Elem>> = vec![None; compiled.frame_size()];
    for (slot, e) in fixed.iter().enumerate() {
        frame[slot] = Some(e.clone());
    }
    let mut prefix: Vec<I::Elem> = fixed.to_vec();
    let mut out = Vec::new();
    enumerate_slots(
        interp,
        universe,
        compiled,
        fixed.len(),
        &mut frame,
        &mut prefix,
        &mut out,
    )?;
    Ok(out)
}

fn enumerate_slots<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    compiled: &SlotFormula,
    slot: usize,
    frame: &mut Vec<Option<I::Elem>>,
    prefix: &mut Vec<I::Elem>,
    out: &mut Vec<Vec<I::Elem>>,
) -> Result<(), LogicError> {
    if slot == compiled.free {
        if eval_slot_node(interp, universe, frame, &compiled.names, &compiled.root)? {
            out.push(prefix.clone());
        }
        return Ok(());
    }
    for e in universe {
        frame[slot] = Some(e.clone());
        prefix.push(e.clone());
        enumerate_slots(interp, universe, compiled, slot + 1, frame, prefix, out)?;
        prefix.pop();
    }
    frame[slot] = None;
    Ok(())
}

/// A trivial interpretation over `u64` with the standard arithmetic symbols
/// (`+`, `-` saturating, `*`, `succ`) and comparisons. Handy in tests and as
/// the evaluation backend for the numeric domains.
#[derive(Clone, Copy, Debug, Default)]
pub struct NatInterpretation;

impl Interpretation for NatInterpretation {
    type Elem = u64;

    fn nat(&self, n: u64) -> Result<u64, LogicError> {
        Ok(n)
    }

    fn func(&self, name: &str, args: &[u64]) -> Result<u64, LogicError> {
        match (name, args) {
            ("succ", [a]) => Ok(a + 1),
            ("+", [a, b]) => Ok(a + b),
            ("-", [a, b]) => Ok(a.saturating_sub(*b)),
            ("*", [a, b]) => Ok(a * b),
            _ => Err(LogicError::eval(format!(
                "unknown function `{name}`/{} over naturals",
                args.len()
            ))),
        }
    }

    fn pred(&self, name: &str, args: &[u64]) -> Result<bool, LogicError> {
        match (name, args) {
            ("<", [a, b]) => Ok(a < b),
            ("<=", [a, b]) => Ok(a <= b),
            (">", [a, b]) => Ok(a > b),
            (">=", [a, b]) => Ok(a >= b),
            _ => Err(LogicError::eval(format!(
                "unknown predicate `{name}`/{} over naturals",
                args.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn universe(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn ground_arithmetic() {
        let f = parse_formula("2 * 3 + 1 = 7").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(1), &f).unwrap());
    }

    #[test]
    fn exists_over_universe() {
        let f = parse_formula("exists x. x + x = 6").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(10), &f).unwrap());
        // 3 is outside a universe of {0,1,2}.
        assert!(!eval_sentence(&NatInterpretation, &universe(3), &f).unwrap());
    }

    #[test]
    fn forall_over_universe() {
        let f = parse_formula("forall x. x < 10").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(10), &f).unwrap());
        assert!(!eval_sentence(&NatInterpretation, &universe(11), &f).unwrap());
    }

    #[test]
    fn nested_quantifiers() {
        // Every element has a strict upper bound within the universe — false
        // for the maximum.
        let f = parse_formula("forall x. exists y. x < y").unwrap();
        assert!(!eval_sentence(&NatInterpretation, &universe(5), &f).unwrap());
        let g = parse_formula("exists x. forall y. y <= x").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(5), &g).unwrap());
    }

    #[test]
    fn quantifier_restores_environment() {
        // After evaluating `exists x`, an outer binding of x must survive.
        let f = parse_formula("exists x. x = 1").unwrap();
        let mut env = Assignment::new();
        env.insert("x".to_string(), 42u64);
        assert!(eval(&NatInterpretation, &universe(3), &mut env, &f).unwrap());
        assert_eq!(env.get("x"), Some(&42));
    }

    #[test]
    fn unbound_variable_is_error() {
        let f = parse_formula("x = 1").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(3), &f).is_err());
    }

    #[test]
    fn solutions_enumeration() {
        let f = parse_formula("x + y = 3").unwrap();
        let sols = solutions(
            &NatInterpretation,
            &universe(4),
            &["x".to_string(), "y".to_string()],
            &f,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![0, 3], vec![1, 2], vec![2, 1], vec![3, 0]]);
    }

    #[test]
    fn solutions_empty_when_unsat() {
        let f = parse_formula("x < x").unwrap();
        let sols = solutions(&NatInterpretation, &universe(4), &["x".to_string()], &f).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn iff_and_implies() {
        let f = parse_formula("(1 < 2 -> 2 < 3) <-> true").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(1), &f).unwrap());
    }

    #[test]
    fn slot_solutions_match_string_env() {
        let vars = ["x".to_string(), "y".to_string()];
        for src in [
            "x + y = 3",
            "x < y",
            "exists z. x < z & z < y",
            "forall z. z <= x | y < z",
            "x = y | (exists x. x = 2 & x < y)",
        ] {
            let f = parse_formula(src).unwrap();
            let naive = solutions(&NatInterpretation, &universe(4), &vars, &f).unwrap();
            let compiled = compile_slots(&f, &vars);
            let fast = solutions_slots(&NatInterpretation, &universe(4), &compiled).unwrap();
            assert_eq!(naive, fast, "{src}");
        }
    }

    #[test]
    fn slot_shadowing_resolves_to_innermost_binder() {
        // The inner `exists x` must shadow the answer variable x.
        let f = parse_formula("exists x. x = 2 & x < y").unwrap();
        let compiled = compile_slots(&f, &["x".to_string(), "y".to_string()]);
        let sols = solutions_slots(&NatInterpretation, &universe(4), &compiled).unwrap();
        // Every x qualifies whenever y > 2: rows (x, 3) for all x.
        let expect: Vec<Vec<u64>> = (0..4).map(|x| vec![x, 3]).collect();
        assert_eq!(sols, expect);
    }

    #[test]
    fn slot_unbound_variable_errors_lazily_like_the_string_env() {
        // `z` is unbound; the error fires only if evaluation reaches it —
        // identical to the Assignment-based evaluator's short-circuiting.
        let f = parse_formula("x < 1 & z = 0").unwrap();
        let compiled = compile_slots(&f, &["x".to_string()]);
        assert!(eval_slots(&NatInterpretation, &universe(3), &[0], &compiled).is_err());
        // x = 2 fails the first conjunct, so z is never read.
        assert!(!eval_slots(&NatInterpretation, &universe(3), &[2], &compiled).unwrap());
        let mut env = Assignment::new();
        env.insert("x".to_string(), 2u64);
        assert!(!eval(&NatInterpretation, &universe(3), &mut env, &f).unwrap());
    }

    #[test]
    fn slot_fixed_prefix_partitions_the_enumeration() {
        let f = parse_formula("x + y = 3").unwrap();
        let vars = ["x".to_string(), "y".to_string()];
        let compiled = compile_slots(&f, &vars);
        let whole = solutions_slots(&NatInterpretation, &universe(4), &compiled).unwrap();
        let mut stitched = Vec::new();
        for e in universe(4) {
            stitched.extend(
                solutions_slots_fixed(&NatInterpretation, &universe(4), &compiled, &[e]).unwrap(),
            );
        }
        assert_eq!(whole, stitched);
    }

    #[test]
    fn slot_sentence_evaluation() {
        let f = parse_formula("forall x. exists y. x < y").unwrap();
        let compiled = compile_slots(&f, &[]);
        assert!(!eval_slots(&NatInterpretation, &universe(5), &[], &compiled).unwrap());
        let g = parse_formula("exists x. forall y. y <= x").unwrap();
        let compiled = compile_slots(&g, &[]);
        assert!(eval_slots(&NatInterpretation, &universe(5), &[], &compiled).unwrap());
    }
}
