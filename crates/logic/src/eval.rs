//! Evaluation of formulas over a finite universe slice.
//!
//! Quantifiers range over an explicitly supplied finite set of elements.
//! This gives exactly the *active-domain semantics* used throughout the
//! paper's Section 2 (and, with a large enough slice, bounded model checking
//! for testing the quantifier-elimination procedures of `fq-domains`).

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt::Debug;

/// An interpretation of the non-logical symbols over elements of type
/// [`Interpretation::Elem`].
pub trait Interpretation {
    /// The element type of the structure.
    type Elem: Clone + Eq + Ord + Debug;

    /// Interpret a natural-number literal.
    fn nat(&self, n: u64) -> Result<Self::Elem, LogicError>;

    /// Interpret a string literal.
    fn str_lit(&self, s: &str) -> Result<Self::Elem, LogicError> {
        Err(LogicError::eval(format!(
            "string literal \"{s}\" has no interpretation in this structure"
        )))
    }

    /// Interpret a named constant (nullary application).
    fn named_const(&self, name: &str) -> Result<Self::Elem, LogicError> {
        Err(LogicError::eval(format!("unknown constant `{name}`")))
    }

    /// Interpret a function application.
    fn func(&self, name: &str, args: &[Self::Elem]) -> Result<Self::Elem, LogicError>;

    /// Interpret a predicate application.
    fn pred(&self, name: &str, args: &[Self::Elem]) -> Result<bool, LogicError>;
}

/// A variable assignment.
pub type Assignment<E> = BTreeMap<String, E>;

/// Evaluate a term under an interpretation and assignment.
pub fn eval_term<I: Interpretation>(
    interp: &I,
    env: &Assignment<I::Elem>,
    term: &Term,
) -> Result<I::Elem, LogicError> {
    match term {
        Term::Var(v) => env
            .get(v.as_str())
            .cloned()
            .ok_or_else(|| LogicError::eval(format!("unbound variable `{v}`"))),
        Term::Nat(n) => interp.nat(*n),
        Term::Str(s) => interp.str_lit(s),
        Term::App(name, args) => {
            if args.is_empty() {
                interp.named_const(name)
            } else {
                let vals: Result<Vec<_>, _> =
                    args.iter().map(|a| eval_term(interp, env, a)).collect();
                interp.func(name, &vals?)
            }
        }
    }
}

/// Evaluate a formula with quantifiers ranging over `universe`.
pub fn eval<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    env: &mut Assignment<I::Elem>,
    formula: &Formula,
) -> Result<bool, LogicError> {
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Pred(name, args) => {
            let vals: Result<Vec<_>, _> = args.iter().map(|a| eval_term(interp, env, a)).collect();
            interp.pred(name, &vals?)
        }
        Formula::Eq(a, b) => Ok(eval_term(interp, env, a)? == eval_term(interp, env, b)?),
        Formula::Not(f) => Ok(!eval(interp, universe, env, f)?),
        Formula::And(fs) => {
            for f in fs {
                if !eval(interp, universe, env, f)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if eval(interp, universe, env, f)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => {
            Ok(!eval(interp, universe, env, a)? || eval(interp, universe, env, b)?)
        }
        Formula::Iff(a, b) => {
            Ok(eval(interp, universe, env, a)? == eval(interp, universe, env, b)?)
        }
        Formula::Exists(v, body) => {
            let saved = env.get(v).cloned();
            let mut found = false;
            for e in universe {
                env.insert(v.clone(), e.clone());
                if eval(interp, universe, env, body)? {
                    found = true;
                    break;
                }
            }
            restore(env, v, saved);
            Ok(found)
        }
        Formula::Forall(v, body) => {
            let saved = env.get(v).cloned();
            let mut all = true;
            for e in universe {
                env.insert(v.clone(), e.clone());
                if !eval(interp, universe, env, body)? {
                    all = false;
                    break;
                }
            }
            restore(env, v, saved);
            Ok(all)
        }
    }
}

fn restore<E>(env: &mut Assignment<E>, var: &str, saved: Option<E>) {
    match saved {
        Some(old) => {
            env.insert(var.to_string(), old);
        }
        None => {
            env.remove(var);
        }
    }
}

/// Evaluate a sentence (no free variables) over a finite universe.
pub fn eval_sentence<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    sentence: &Formula,
) -> Result<bool, LogicError> {
    eval(interp, universe, &mut Assignment::new(), sentence)
}

/// Enumerate all assignments of `universe` elements to `vars` that satisfy
/// the formula. Returns tuples in the order of `vars`.
///
/// This is the brute-force "answer the query over the active domain"
/// operation; `fq-relational` layers schema handling on top of it.
pub fn solutions<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    vars: &[String],
    formula: &Formula,
) -> Result<Vec<Vec<I::Elem>>, LogicError> {
    let mut out = Vec::new();
    let mut env = Assignment::new();
    enumerate(interp, universe, vars, formula, &mut env, &mut out)?;
    Ok(out)
}

fn enumerate<I: Interpretation>(
    interp: &I,
    universe: &[I::Elem],
    vars: &[String],
    formula: &Formula,
    env: &mut Assignment<I::Elem>,
    out: &mut Vec<Vec<I::Elem>>,
) -> Result<(), LogicError> {
    match vars.split_first() {
        None => {
            if eval(interp, universe, env, formula)? {
                // `vars` is empty only at the leaves of the recursion from
                // the original call, so env holds exactly the original vars.
                out.push(Vec::new());
            }
            Ok(())
        }
        Some((first, rest)) => {
            for e in universe {
                env.insert(first.clone(), e.clone());
                let before = out.len();
                enumerate(interp, universe, rest, formula, env, out)?;
                for row in &mut out[before..] {
                    row.insert(0, e.clone());
                }
            }
            env.remove(first);
            Ok(())
        }
    }
}

/// A trivial interpretation over `u64` with the standard arithmetic symbols
/// (`+`, `-` saturating, `*`, `succ`) and comparisons. Handy in tests and as
/// the evaluation backend for the numeric domains.
#[derive(Clone, Copy, Debug, Default)]
pub struct NatInterpretation;

impl Interpretation for NatInterpretation {
    type Elem = u64;

    fn nat(&self, n: u64) -> Result<u64, LogicError> {
        Ok(n)
    }

    fn func(&self, name: &str, args: &[u64]) -> Result<u64, LogicError> {
        match (name, args) {
            ("succ", [a]) => Ok(a + 1),
            ("+", [a, b]) => Ok(a + b),
            ("-", [a, b]) => Ok(a.saturating_sub(*b)),
            ("*", [a, b]) => Ok(a * b),
            _ => Err(LogicError::eval(format!(
                "unknown function `{name}`/{} over naturals",
                args.len()
            ))),
        }
    }

    fn pred(&self, name: &str, args: &[u64]) -> Result<bool, LogicError> {
        match (name, args) {
            ("<", [a, b]) => Ok(a < b),
            ("<=", [a, b]) => Ok(a <= b),
            (">", [a, b]) => Ok(a > b),
            (">=", [a, b]) => Ok(a >= b),
            _ => Err(LogicError::eval(format!(
                "unknown predicate `{name}`/{} over naturals",
                args.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn universe(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn ground_arithmetic() {
        let f = parse_formula("2 * 3 + 1 = 7").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(1), &f).unwrap());
    }

    #[test]
    fn exists_over_universe() {
        let f = parse_formula("exists x. x + x = 6").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(10), &f).unwrap());
        // 3 is outside a universe of {0,1,2}.
        assert!(!eval_sentence(&NatInterpretation, &universe(3), &f).unwrap());
    }

    #[test]
    fn forall_over_universe() {
        let f = parse_formula("forall x. x < 10").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(10), &f).unwrap());
        assert!(!eval_sentence(&NatInterpretation, &universe(11), &f).unwrap());
    }

    #[test]
    fn nested_quantifiers() {
        // Every element has a strict upper bound within the universe — false
        // for the maximum.
        let f = parse_formula("forall x. exists y. x < y").unwrap();
        assert!(!eval_sentence(&NatInterpretation, &universe(5), &f).unwrap());
        let g = parse_formula("exists x. forall y. y <= x").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(5), &g).unwrap());
    }

    #[test]
    fn quantifier_restores_environment() {
        // After evaluating `exists x`, an outer binding of x must survive.
        let f = parse_formula("exists x. x = 1").unwrap();
        let mut env = Assignment::new();
        env.insert("x".to_string(), 42u64);
        assert!(eval(&NatInterpretation, &universe(3), &mut env, &f).unwrap());
        assert_eq!(env.get("x"), Some(&42));
    }

    #[test]
    fn unbound_variable_is_error() {
        let f = parse_formula("x = 1").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(3), &f).is_err());
    }

    #[test]
    fn solutions_enumeration() {
        let f = parse_formula("x + y = 3").unwrap();
        let sols = solutions(
            &NatInterpretation,
            &universe(4),
            &["x".to_string(), "y".to_string()],
            &f,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![0, 3], vec![1, 2], vec![2, 1], vec![3, 0]]);
    }

    #[test]
    fn solutions_empty_when_unsat() {
        let f = parse_formula("x < x").unwrap();
        let sols = solutions(&NatInterpretation, &universe(4), &["x".to_string()], &f).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn iff_and_implies() {
        let f = parse_formula("(1 < 2 -> 2 < 3) <-> true").unwrap();
        assert!(eval_sentence(&NatInterpretation, &universe(1), &f).unwrap());
    }
}
