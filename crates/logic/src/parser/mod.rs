//! Recursive-descent parser for the concrete formula syntax.
//!
//! Grammar (precedence low → high; quantifier scope extends maximally right):
//!
//! ```text
//! formula  := quantified
//! quantified := ("exists" | "forall") ident+ "." quantified | iff
//! iff      := implies ("<->" implies)*            (left-assoc)
//! implies  := or ("->" implies)?                  (right-assoc)
//! or       := and ("|" and)*
//! and      := unary ("&" unary)*
//! unary    := "!" unary | atom
//! atom     := "true" | "false" | "(" formula ")"
//!           | term (("=" | "!=" | "<" | "<=" | ">" | ">=") term)?
//! term     := addend (("+" | "-") addend)*
//! addend   := factor ("*" factor)*
//! factor   := primary "'"*
//! primary  := ident ("(" term ("," term)* ")")? | number | string | "(" term ")"
//! ```
//!
//! A bare identifier or application in formula position is a predicate atom;
//! in term position it is a variable / named constant / function application.
//! The pretty-printer in [`crate::formula`] emits exactly this syntax, and
//! `parse(print(f)) == f` is property-tested.

mod lexer;

pub use lexer::{tokenize, Token, TokenKind};

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::Term;

/// Parse a formula from its concrete syntax.
pub fn parse_formula(input: &str) -> Result<Formula, LogicError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let f = p.formula()?;
    p.expect(TokenKind::Eof)?;
    Ok(f)
}

/// Parse a term from its concrete syntax.
pub fn parse_term(input: &str) -> Result<Term, LogicError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let t = p.term()?;
    p.expect(TokenKind::Eof)?;
    Ok(t)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), LogicError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(LogicError::parse(
                self.offset(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn formula(&mut self) -> Result<Formula, LogicError> {
        // Quantifier prefix with maximal scope.
        if let TokenKind::Ident(kw) = self.peek() {
            if kw == "exists" || kw == "forall" {
                let is_exists = kw == "exists";
                self.bump();
                let mut vars = Vec::new();
                loop {
                    match self.bump() {
                        TokenKind::Ident(v) => vars.push(v),
                        other => {
                            return Err(LogicError::parse(
                                self.offset(),
                                format!(
                                    "expected variable after quantifier, found {}",
                                    other.describe()
                                ),
                            ))
                        }
                    }
                    if *self.peek() == TokenKind::Dot {
                        self.bump();
                        break;
                    }
                }
                let body = self.formula()?;
                return Ok(if is_exists {
                    Formula::exists_many(vars, body)
                } else {
                    Formula::forall_many(vars, body)
                });
            }
        }
        self.iff()
    }

    fn iff(&mut self) -> Result<Formula, LogicError> {
        let mut left = self.implies()?;
        while *self.peek() == TokenKind::DArrow {
            self.bump();
            let right = self.implies()?;
            left = Formula::iff(left, right);
        }
        Ok(left)
    }

    fn implies(&mut self) -> Result<Formula, LogicError> {
        let left = self.or()?;
        if *self.peek() == TokenKind::Arrow {
            self.bump();
            // Right-associative; allow a quantifier on the right-hand side.
            let right = self.formula_rhs()?;
            Ok(Formula::implies(left, right))
        } else {
            Ok(left)
        }
    }

    /// Right-hand side of `->`: permits a quantified formula.
    fn formula_rhs(&mut self) -> Result<Formula, LogicError> {
        if let TokenKind::Ident(kw) = self.peek() {
            if kw == "exists" || kw == "forall" {
                return self.formula();
            }
        }
        let left = self.or()?;
        if *self.peek() == TokenKind::Arrow {
            self.bump();
            let right = self.formula_rhs()?;
            Ok(Formula::implies(left, right))
        } else {
            Ok(left)
        }
    }

    fn or(&mut self) -> Result<Formula, LogicError> {
        let first = self.and()?;
        let mut parts = vec![first];
        while *self.peek() == TokenKind::Pipe {
            self.bump();
            parts.push(self.and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::Or(parts)
        })
    }

    fn and(&mut self) -> Result<Formula, LogicError> {
        let first = self.unary()?;
        let mut parts = vec![first];
        while *self.peek() == TokenKind::Amp {
            self.bump();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, LogicError> {
        match self.peek() {
            TokenKind::Bang => {
                self.bump();
                let inner = self.unary()?;
                Ok(Formula::Not(Box::new(inner)))
            }
            TokenKind::Ident(kw) if kw == "exists" || kw == "forall" => self.formula(),
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, LogicError> {
        // Constants true/false.
        if let TokenKind::Ident(kw) = self.peek() {
            match kw.as_str() {
                "true" => {
                    self.bump();
                    return Ok(Formula::True);
                }
                "false" => {
                    self.bump();
                    return Ok(Formula::False);
                }
                _ => {}
            }
        }
        // Parenthesized formula vs parenthesized term: try formula first by
        // scanning — simplest correct approach is to attempt a formula parse
        // and backtrack to a term comparison on failure.
        if *self.peek() == TokenKind::LParen {
            let save = self.pos;
            self.bump();
            if let Ok(f) = self.formula() {
                if *self.peek() == TokenKind::RParen {
                    self.bump();
                    // `(formula)` not followed by a comparison operator.
                    if !self.peek_is_comparison() && !self.peek_is_term_operator() {
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
        }
        let left = self.term()?;
        let op = match self.peek() {
            TokenKind::EqSym => Some("="),
            TokenKind::NeqSym => Some("!="),
            TokenKind::Lt => Some("<"),
            TokenKind::Le => Some("<="),
            TokenKind::Gt => Some(">"),
            TokenKind::Ge => Some(">="),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let right = self.term()?;
                Ok(match op {
                    "=" => Formula::eq(left, right),
                    "!=" => Formula::neq(left, right),
                    other => Formula::pred(other, vec![left, right]),
                })
            }
            None => {
                // A bare term in formula position must be a predicate atom.
                match left {
                    Term::App(name, args) => Ok(Formula::Pred(name, args)),
                    Term::Var(name) => Ok(Formula::Pred(name, Vec::new())),
                    other => Err(LogicError::parse(
                        self.offset(),
                        format!("`{other}` is not a formula (missing comparison operator?)"),
                    )),
                }
            }
        }
    }

    fn peek_is_comparison(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::EqSym
                | TokenKind::NeqSym
                | TokenKind::Lt
                | TokenKind::Le
                | TokenKind::Gt
                | TokenKind::Ge
        )
    }

    fn peek_is_term_operator(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Plus | TokenKind::Minus | TokenKind::Star | TokenKind::Prime
        )
    }

    fn term(&mut self) -> Result<Term, LogicError> {
        let mut left = self.addend()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    let right = self.addend()?;
                    left = Term::app2("+", left, right);
                }
                TokenKind::Minus => {
                    self.bump();
                    let right = self.addend()?;
                    left = Term::app2("-", left, right);
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn addend(&mut self) -> Result<Term, LogicError> {
        let mut left = self.factor()?;
        while *self.peek() == TokenKind::Star {
            self.bump();
            let right = self.factor()?;
            left = Term::app2("*", left, right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Term, LogicError> {
        let mut t = self.primary()?;
        while *self.peek() == TokenKind::Prime {
            self.bump();
            t = t.succ();
        }
        Ok(t)
    }

    fn primary(&mut self) -> Result<Term, LogicError> {
        match self.bump() {
            TokenKind::Nat(n) => Ok(Term::Nat(n)),
            TokenKind::Str(s) => Ok(Term::Str(s)),
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.term()?);
                            if *self.peek() == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Term::App(name.into(), args))
                } else {
                    Ok(Term::Var(name.into()))
                }
            }
            TokenKind::LParen => {
                let t = self.term()?;
                self.expect(TokenKind::RParen)?;
                Ok(t)
            }
            other => Err(LogicError::parse(
                self.offset(),
                format!("expected a term, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn parses_paper_query_m() {
        // M(x): exists y,z with y != z and F(x,y), F(x,z).
        let f = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec!["x"]);
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn parses_paper_query_g() {
        let f = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let fv = f.free_vars();
        assert!(fv.contains("x") && fv.contains("z") && !fv.contains("y"));
    }

    #[test]
    fn quantifier_scope_is_maximal() {
        let f = parse_formula("exists x. P(x) & Q(x)").unwrap();
        match f {
            Formula::Exists(_, body) => {
                assert!(matches!(*body, Formula::And(_)));
            }
            _ => panic!("expected Exists at top"),
        }
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse_formula("P() -> Q() -> R()").unwrap();
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(..))),
            _ => panic!("expected Implies"),
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let f = parse_formula("P() | Q() & R()").unwrap();
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::And(_)));
            }
            _ => panic!("expected Or"),
        }
    }

    #[test]
    fn negated_equality_is_neq() {
        let f = parse_formula("x != y").unwrap();
        assert_eq!(f, Formula::neq(v("x"), v("y")));
    }

    #[test]
    fn parenthesized_formula() {
        let f = parse_formula("(P(x) | Q(x)) & R(x)").unwrap();
        assert!(matches!(f, Formula::And(_)));
    }

    #[test]
    fn parenthesized_term_comparison() {
        let f = parse_formula("(x + 1) = y").unwrap();
        assert_eq!(
            f,
            Formula::eq(Term::app2("+", v("x"), Term::Nat(1)), v("y"))
        );
    }

    #[test]
    fn successor_primes() {
        let t = parse_term("x'''").unwrap();
        assert_eq!(t, Term::var("x").succ_n(3));
    }

    #[test]
    fn string_constant_atom() {
        let f = parse_formula("P(M, \"1&\", x)").unwrap();
        assert_eq!(
            f,
            Formula::pred("P", vec![v("M"), Term::Str("1&".into()), v("x")])
        );
    }

    #[test]
    fn arithmetic_precedence() {
        let t = parse_term("2 * x + y").unwrap();
        assert_eq!(
            t,
            Term::app2("+", Term::app2("*", Term::Nat(2), v("x")), v("y"))
        );
    }

    #[test]
    fn nullary_predicate_from_bare_ident() {
        let f = parse_formula("Raining").unwrap();
        assert_eq!(f, Formula::pred("Raining", vec![]));
    }

    #[test]
    fn reports_error_offset() {
        let err = parse_formula("exists . P(x)").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
    }

    #[test]
    fn eof_required() {
        assert!(parse_formula("P(x) P(y)").is_err());
    }

    #[test]
    fn iff_parses() {
        let f = parse_formula("P(x) <-> Q(x)").unwrap();
        assert!(matches!(f, Formula::Iff(..)));
    }

    #[test]
    fn forall_multi_var() {
        let f = parse_formula("forall x y. x = y -> y = x").unwrap();
        assert_eq!(f.quantifier_depth(), 2);
        assert!(f.is_sentence());
    }

    #[test]
    fn roundtrip_display_parse() {
        let samples = [
            "exists y z. y != z & F(x, y) & F(x, z)",
            "forall y. D(y) -> x > y",
            "P(m, \"11&\", t) | x = 0",
            "!(P(x) & Q(x)) -> R(x)",
            "x'' = y' & succ(0) = 1",
        ];
        for s in samples {
            let f = parse_formula(s).unwrap();
            let printed = f.to_string();
            let g = parse_formula(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(f, g, "roundtrip failed for `{s}` printed as `{printed}`");
        }
    }
}
