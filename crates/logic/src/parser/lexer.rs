//! Lexer for the concrete formula syntax.

use crate::error::LogicError;

/// A lexical token with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// The kinds of token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    Nat(u64),
    /// A double-quoted string literal (trace-alphabet constants).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Amp,
    Pipe,
    Arrow,
    DArrow,
    EqSym,
    NeqSym,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Prime,
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Nat(n) => format!("number `{n}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::DArrow => "`<->`".into(),
            TokenKind::EqSym => "`=`".into(),
            TokenKind::NeqSym => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Prime => "`'`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize the whole input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LogicError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '&' => {
                tokens.push(Token {
                    kind: TokenKind::Amp,
                    offset: start,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '\'' => {
                tokens.push(Token {
                    kind: TokenKind::Prime,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::EqSym,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NeqSym,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::DArrow,
                        offset: start,
                    });
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LogicError::lex(start, "unterminated string literal"));
                }
                let s = &input[content_start..i];
                tokens.push(Token {
                    kind: TokenKind::Str(s.to_string()),
                    offset: start,
                });
                i += 1;
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n: u64 = text
                    .parse()
                    .map_err(|_| LogicError::lex(start, format!("number too large: {text}")))?;
                tokens.push(Token {
                    kind: TokenKind::Nat(n),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LogicError::lex(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x = y"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::EqSym,
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("-> <-> <= >= != <"),
            vec![
                TokenKind::Arrow,
                TokenKind::DArrow,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::NeqSym,
                TokenKind::Lt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literal_with_trace_alphabet() {
        assert_eq!(
            kinds("\"11&*#\""),
            vec![TokenKind::Str("11&*#".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn empty_string_literal() {
        assert_eq!(
            kinds("\"\""),
            vec![TokenKind::Str(String::new()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn numbers_and_primes() {
        assert_eq!(
            kinds("0' 12''"),
            vec![
                TokenKind::Nat(0),
                TokenKind::Prime,
                TokenKind::Nat(12),
                TokenKind::Prime,
                TokenKind::Prime,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character() {
        assert!(tokenize("x @ y").is_err());
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
