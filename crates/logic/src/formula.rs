//! First-order formulas.
//!
//! Conjunction and disjunction are n-ary: the quantifier-elimination
//! procedures of `fq-domains` constantly split and re-assemble conjunct
//! lists, and flat lists keep that code close to the paper's notation.
//! The smart constructors [`Formula::and`] and [`Formula::or`] flatten and
//! absorb neutral/absorbing elements, so `and([])` is `True` and
//! `or([])` is `False`.

use crate::term::{Sym, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A first-order formula.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true constant.
    True,
    /// The false constant.
    False,
    /// An applied predicate — a database relation symbol or a domain
    /// predicate (e.g. the paper's ternary `P` over the trace domain).
    Pred(Sym, Vec<Term>),
    /// Equality, available in every domain considered by the paper.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction.
    And(Vec<Formula>),
    /// n-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(String, Box<Formula>),
    /// Universal quantification.
    Forall(String, Box<Formula>),
}

impl Formula {
    /// Smart conjunction: flattens nested `And`s, drops `True`, and
    /// collapses to `False` if any conjunct is `False`.
    pub fn and(conjuncts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for c in conjuncts {
            match c {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Smart disjunction: flattens nested `Or`s, drops `False`, and
    /// collapses to `True` if any disjunct is `True`.
    pub fn or(disjuncts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for d in disjuncts {
            match d {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Smart negation: folds constants and double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Implication `a -> b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Bi-implication `a <-> b`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// Existential quantification over one variable.
    pub fn exists(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(var.into(), Box::new(body))
    }

    /// Existential closure over several variables (innermost last).
    pub fn exists_many<I, S>(vars: I, body: Formula) -> Formula
    where
        I: IntoIterator<Item = S>,
        I::IntoIter: DoubleEndedIterator,
        S: Into<String>,
    {
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Formula::exists(v, acc))
    }

    /// Universal quantification over one variable.
    pub fn forall(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(var.into(), Box::new(body))
    }

    /// Universal closure over several variables (innermost last).
    pub fn forall_many<I, S>(vars: I, body: Formula) -> Formula
    where
        I: IntoIterator<Item = S>,
        I::IntoIter: DoubleEndedIterator,
        S: Into<String>,
    {
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Formula::forall(v, acc))
    }

    /// The atom `a = b`.
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    /// The literal `a != b`.
    pub fn neq(a: Term, b: Term) -> Formula {
        Formula::not(Formula::Eq(a, b))
    }

    /// The atom `a < b`, represented as the binary predicate `<`.
    pub fn lt(a: Term, b: Term) -> Formula {
        Formula::Pred("<".into(), vec![a, b])
    }

    /// An applied predicate.
    pub fn pred(name: impl Into<Sym>, args: Vec<Term>) -> Formula {
        Formula::Pred(name.into(), args)
    }

    /// Free variables of the formula, in sorted order.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(_, args) => {
                for t in args {
                    for v in t.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    for v in t.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                bound.push(v.clone());
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// All variables (free and bound) mentioned anywhere in the formula.
    pub fn all_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Pred(_, args) => {
                for t in args {
                    t.collect_vars(&mut out);
                }
            }
            Formula::Eq(a, b) => {
                a.collect_vars(&mut out);
                b.collect_vars(&mut out);
            }
            Formula::Exists(v, _) | Formula::Forall(v, _) => {
                out.insert(v.clone());
            }
            _ => {}
        });
        out
    }

    /// Whether the formula is a *sentence* (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Whether the formula is quantifier-free.
    pub fn is_quantifier_free(&self) -> bool {
        let mut qf = true;
        self.visit(&mut |f| {
            if matches!(f, Formula::Exists(..) | Formula::Forall(..)) {
                qf = false;
            }
        });
        qf
    }

    /// Quantifier depth (maximum nesting of quantifiers), the measure used
    /// by the extended-active-domain syntax of Theorem 2.7.
    pub fn quantifier_depth(&self) -> u32 {
        match self {
            Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => 0,
            Formula::Not(f) => f.quantifier_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::quantifier_depth).max().unwrap_or(0)
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }

    /// Size of the formula (number of AST nodes, counting term nodes).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False => 1,
            Formula::Pred(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            Formula::Eq(a, b) => 1 + a.size() + b.size(),
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => 1 + a.size() + b.size(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Pre-order traversal calling `f` on every subformula.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => {}
            Formula::Not(inner) => inner.visit(f),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    g.visit(f);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => inner.visit(f),
        }
    }

    /// All predicate names used in the formula (database relations plus
    /// domain predicates), in sorted order.
    pub fn predicate_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Pred(name, _) = f {
                out.insert(name.as_str().to_owned());
            }
        });
        out
    }

    /// All named constants (nullary applications) used in the formula.
    pub fn named_constants(&self) -> BTreeSet<String> {
        fn walk_term(t: &Term, out: &mut BTreeSet<String>) {
            if let Term::App(name, args) = t {
                if args.is_empty() {
                    out.insert(name.as_str().to_owned());
                }
                for a in args {
                    walk_term(a, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Pred(_, args) => {
                for t in args {
                    walk_term(t, &mut out);
                }
            }
            Formula::Eq(a, b) => {
                walk_term(a, &mut out);
                walk_term(b, &mut out);
            }
            _ => {}
        });
        out
    }

    /// All literal constants (numbers and strings) occurring in the formula.
    pub fn literal_constants(&self) -> (BTreeSet<u64>, BTreeSet<String>) {
        fn walk_term(t: &Term, nats: &mut BTreeSet<u64>, strs: &mut BTreeSet<String>) {
            match t {
                Term::Nat(n) => {
                    nats.insert(*n);
                }
                Term::Str(s) => {
                    strs.insert(s.clone());
                }
                Term::App(_, args) => {
                    for a in args {
                        walk_term(a, nats, strs);
                    }
                }
                Term::Var(_) => {}
            }
        }
        let mut nats = BTreeSet::new();
        let mut strs = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Pred(_, args) => {
                for t in args {
                    walk_term(t, &mut nats, &mut strs);
                }
            }
            Formula::Eq(a, b) => {
                walk_term(a, &mut nats, &mut strs);
                walk_term(b, &mut nats, &mut strs);
            }
            _ => {}
        });
        (nats, strs)
    }

    /// Rewrite every atom via `f`, keeping the connective structure.
    pub fn map_atoms(&self, f: &mut impl FnMut(&Formula) -> Formula) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => f(self),
            Formula::Not(inner) => Formula::not(inner.map_atoms(f)),
            Formula::And(fs) => Formula::and(fs.iter().map(|g| g.map_atoms(f))),
            Formula::Or(fs) => Formula::or(fs.iter().map(|g| g.map_atoms(f))),
            Formula::Implies(a, b) => Formula::implies(a.map_atoms(f), b.map_atoms(f)),
            Formula::Iff(a, b) => Formula::iff(a.map_atoms(f), b.map_atoms(f)),
            Formula::Exists(v, inner) => Formula::exists(v.clone(), inner.map_atoms(f)),
            Formula::Forall(v, inner) => Formula::forall(v.clone(), inner.map_atoms(f)),
        }
    }
}

/// Precedence levels for printing.
fn prec(f: &Formula) -> u8 {
    match f {
        Formula::Iff(..) => 1,
        Formula::Implies(..) => 2,
        Formula::Or(_) => 3,
        Formula::And(_) => 4,
        Formula::Not(_) => 5,
        Formula::Exists(..) | Formula::Forall(..) => 0,
        _ => 6,
    }
}

fn fmt_at(f: &Formula, parent: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    let p = prec(f);
    let need_parens = p < parent;
    if need_parens {
        write!(out, "(")?;
    }
    match f {
        Formula::True => write!(out, "true")?,
        Formula::False => write!(out, "false")?,
        Formula::Pred(name, args) => {
            if args.len() == 2 && matches!(name.as_str(), "<" | "<=" | ">" | ">=") {
                write!(out, "{} {} {}", args[0], name, args[1])?;
            } else {
                write!(out, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    write!(out, "{a}")?;
                }
                write!(out, ")")?;
            }
        }
        Formula::Eq(a, b) => write!(out, "{a} = {b}")?,
        Formula::Not(inner) => {
            // Special-case `!(a = b)` as `a != b`.
            if let Formula::Eq(a, b) = inner.as_ref() {
                write!(out, "{a} != {b}")?;
            } else {
                write!(out, "!")?;
                fmt_at(inner, 5, out)?;
            }
        }
        Formula::And(fs) => {
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    write!(out, " & ")?;
                }
                fmt_at(g, 5, out)?;
            }
        }
        Formula::Or(fs) => {
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    write!(out, " | ")?;
                }
                fmt_at(g, 4, out)?;
            }
        }
        Formula::Implies(a, b) => {
            fmt_at(a, 3, out)?;
            write!(out, " -> ")?;
            fmt_at(b, 2, out)?;
        }
        Formula::Iff(a, b) => {
            // `<->` parses left-associatively; parenthesize a nested Iff on
            // the right so printing round-trips.
            fmt_at(a, 1, out)?;
            write!(out, " <-> ")?;
            fmt_at(b, 2, out)?;
        }
        Formula::Exists(v, inner) => {
            write!(out, "exists {v}. ")?;
            fmt_at(inner, 0, out)?;
        }
        Formula::Forall(v, inner) => {
            write!(out, "forall {v}. ")?;
            fmt_at(inner, 0, out)?;
        }
    }
    if need_parens {
        write!(out, ")")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_at(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn smart_and_flattens_and_absorbs() {
        let a = Formula::eq(v("x"), v("y"));
        assert_eq!(Formula::and([Formula::True, a.clone()]), a);
        assert_eq!(Formula::and([Formula::False, a.clone()]), Formula::False);
        assert_eq!(Formula::and(Vec::<Formula>::new()), Formula::True);
        let nested = Formula::and([Formula::and([a.clone(), a.clone()]), a.clone()]);
        assert_eq!(nested, Formula::And(vec![a.clone(), a.clone(), a]));
    }

    #[test]
    fn smart_or_flattens_and_absorbs() {
        let a = Formula::eq(v("x"), v("y"));
        assert_eq!(Formula::or([Formula::False, a.clone()]), a);
        assert_eq!(Formula::or([Formula::True, a.clone()]), Formula::True);
        assert_eq!(Formula::or(Vec::<Formula>::new()), Formula::False);
    }

    #[test]
    fn smart_not_folds() {
        let a = Formula::eq(v("x"), v("y"));
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn free_vars_respect_binders() {
        // exists y. F(x, y)  — only x is free.
        let f = Formula::exists("y", Formula::pred("F", vec![v("x"), v("y")]));
        let fv = f.free_vars();
        assert!(fv.contains("x"));
        assert!(!fv.contains("y"));
    }

    #[test]
    fn shadowing_inner_binder() {
        // F(x) & exists x. G(x): x is still free (from the first conjunct).
        let f = Formula::and([
            Formula::pred("F", vec![v("x")]),
            Formula::exists("x", Formula::pred("G", vec![v("x")])),
        ]);
        assert!(f.free_vars().contains("x"));
    }

    #[test]
    fn quantifier_depth_counts_nesting() {
        let f = Formula::exists(
            "x",
            Formula::and([
                Formula::exists("y", Formula::eq(v("x"), v("y"))),
                Formula::eq(v("x"), v("x")),
            ]),
        );
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn sentence_detection() {
        let f = Formula::exists("x", Formula::eq(v("x"), Term::Nat(0)));
        assert!(f.is_sentence());
        let g = Formula::eq(v("x"), Term::Nat(0));
        assert!(!g.is_sentence());
    }

    #[test]
    fn display_infix_comparison() {
        let f = Formula::lt(v("x"), Term::Nat(5));
        assert_eq!(f.to_string(), "x < 5");
    }

    #[test]
    fn display_neq_sugar() {
        let f = Formula::neq(v("x"), v("y"));
        assert_eq!(f.to_string(), "x != y");
    }

    #[test]
    fn named_constants_collected() {
        let f = Formula::pred("P", vec![Term::named("c"), v("x")]);
        assert!(f.named_constants().contains("c"));
    }

    #[test]
    fn literal_constants_collected() {
        let f = Formula::and([
            Formula::eq(v("x"), Term::Nat(42)),
            Formula::eq(v("y"), Term::Str("1&".into())),
        ]);
        let (nats, strs) = f.literal_constants();
        assert!(nats.contains(&42));
        assert!(strs.contains("1&"));
    }

    #[test]
    fn map_atoms_rewrites_leaves() {
        let f = Formula::not(Formula::eq(v("x"), v("y")));
        let g = f.map_atoms(&mut |atom| match atom {
            Formula::Eq(a, b) => Formula::eq(b.clone(), a.clone()),
            other => other.clone(),
        });
        assert_eq!(g, Formula::not(Formula::eq(v("y"), v("x"))));
    }

    #[test]
    fn exists_many_order() {
        let f = Formula::exists_many(["x", "y"], Formula::eq(v("x"), v("y")));
        // Outermost binder is x.
        match f {
            Formula::Exists(ref v1, ref inner) => {
                assert_eq!(v1, "x");
                assert!(matches!(inner.as_ref(), Formula::Exists(v2, _) if v2 == "y"));
            }
            _ => panic!("expected Exists"),
        }
    }

    #[test]
    fn is_quantifier_free() {
        assert!(Formula::eq(v("x"), v("y")).is_quantifier_free());
        assert!(!Formula::exists("x", Formula::True).is_quantifier_free());
    }
}
