//! First-order terms.
//!
//! Terms are built from variables, two kinds of literal constants (natural
//! numbers for the numeric domains of Section 2 of the paper, strings over
//! the trace alphabet for the domain **T** of Section 3), and function
//! applications. A nullary application such as `App("c", [])` is a *named
//! constant* — this is how the database scheme "one constant symbol c" of
//! Theorem 3.1 is represented.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A symbol name: variable, predicate, or function identifier.
///
/// Backed by `Arc<str>`, so cloning a name — which formula enumeration
/// and quantifier elimination do per generated atom — is a reference
/// count bump instead of a heap allocation. Equality, ordering, and
/// hashing all delegate to the underlying string, so collections keyed
/// by names behave exactly as with `String`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(Arc<str>);

impl Sym {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym(Arc::from(s))
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym(Arc::from(s.as_str()))
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Self {
        Sym(Arc::from(s.as_str()))
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Self {
        s.clone()
    }
}

impl From<&Sym> for String {
    fn from(s: &Sym) -> Self {
        s.as_str().to_owned()
    }
}

impl From<Sym> for String {
    fn from(s: Sym) -> Self {
        s.as_str().to_owned()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A first-order term.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Sym),
    /// A natural-number literal (domains of Section 2).
    Nat(u64),
    /// A string literal over the trace alphabet `{1, &, *, #}`
    /// (domain **T** of Section 3). The empty string is the paper's ε.
    Str(String),
    /// Function application; nullary applications are named constants.
    App(Sym, Vec<Term>),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<Sym>) -> Self {
        Term::Var(name.into())
    }

    /// Convenience constructor for a named constant (nullary application).
    pub fn named(name: impl Into<Sym>) -> Self {
        Term::App(name.into(), Vec::new())
    }

    /// Convenience constructor for a unary application.
    pub fn app1(name: impl Into<Sym>, arg: Term) -> Self {
        Term::App(name.into(), vec![arg])
    }

    /// Convenience constructor for a binary application.
    pub fn app2(name: impl Into<Sym>, a: Term, b: Term) -> Self {
        Term::App(name.into(), vec![a, b])
    }

    /// The successor term `t'` of the domain N′ (Section 2.2).
    pub fn succ(self) -> Self {
        Term::app1("succ", self)
    }

    /// Iterated successor: `t` followed by `n` primes.
    pub fn succ_n(self, n: u64) -> Self {
        (0..n).fold(self, |t, _| t.succ())
    }

    /// All variables occurring in the term, in sorted order.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                out.insert(v.as_str().to_owned());
            }
            Term::Nat(_) | Term::Str(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Whether the term contains the given variable.
    pub fn contains_var(&self, name: &str) -> bool {
        match self {
            Term::Var(v) => v == name,
            Term::Nat(_) | Term::Str(_) => false,
            Term::App(_, args) => args.iter().any(|a| a.contains_var(name)),
        }
    }

    /// Whether the term is *ground* (contains no variables).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Nat(_) | Term::Str(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Replace every occurrence of variable `var` with `replacement`.
    ///
    /// Terms have no binders, so this substitution cannot capture.
    pub fn subst_var(&self, var: &str, replacement: &Term) -> Term {
        match self {
            Term::Var(v) if v == var => replacement.clone(),
            Term::Var(_) | Term::Nat(_) | Term::Str(_) => self.clone(),
            Term::App(f, args) => Term::App(
                f.clone(),
                args.iter().map(|a| a.subst_var(var, replacement)).collect(),
            ),
        }
    }

    /// The size of the term (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Nat(_) | Term::Str(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Nat(n) => write!(f, "{n}"),
            Term::Str(s) => write!(f, "\"{s}\""),
            Term::App(name, args) => match (name.as_str(), args.as_slice()) {
                ("succ", [t]) => {
                    // Postfix prime, parenthesizing compound arguments.
                    match t {
                        Term::Var(_) | Term::Nat(_) | Term::Str(_) => write!(f, "{t}'"),
                        Term::App(n, _) if n == "succ" => write!(f, "{t}'"),
                        _ => write!(f, "({t})'"),
                    }
                }
                ("+", [a, b]) => write!(f, "({a} + {b})"),
                ("-", [a, b]) => write!(f, "({a} - {b})"),
                ("*", [a, b]) => write!(f, "({a} * {b})"),
                (_, []) => write!(f, "{name}"),
                _ => {
                    write!(f, "{name}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_of_nested_term() {
        let t = Term::app2("+", Term::var("x"), Term::app1("succ", Term::var("y")));
        let vs = t.vars();
        assert_eq!(vs.len(), 2);
        assert!(vs.contains("x") && vs.contains("y"));
    }

    #[test]
    fn ground_terms() {
        assert!(Term::Nat(3).is_ground());
        assert!(Term::Str("1&1".into()).is_ground());
        assert!(Term::named("c").is_ground());
        assert!(!Term::var("x").is_ground());
        assert!(!Term::app1("succ", Term::var("x")).is_ground());
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let t = Term::app2("+", Term::var("x"), Term::var("x"));
        let r = t.subst_var("x", &Term::Nat(7));
        assert_eq!(r, Term::app2("+", Term::Nat(7), Term::Nat(7)));
    }

    #[test]
    fn substitution_leaves_other_vars() {
        let t = Term::app2("+", Term::var("x"), Term::var("y"));
        let r = t.subst_var("z", &Term::Nat(7));
        assert_eq!(r, t);
    }

    #[test]
    fn display_successor_chain() {
        let t = Term::var("x").succ_n(3);
        assert_eq!(t.to_string(), "x'''");
    }

    #[test]
    fn display_named_constant() {
        assert_eq!(Term::named("c").to_string(), "c");
    }

    #[test]
    fn display_string_literal() {
        assert_eq!(Term::Str("11&*".into()).to_string(), "\"11&*\"");
    }

    #[test]
    fn size_counts_nodes() {
        let t = Term::app2("+", Term::var("x"), Term::Nat(1));
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn contains_var_deep() {
        let t = Term::app1("f", Term::app1("g", Term::var("deep")));
        assert!(t.contains_var("deep"));
        assert!(!t.contains_var("shallow"));
    }
}
