//! Signatures: which predicate/function symbols exist and with what arity.
//!
//! The paper distinguishes *domain* symbols (fixed, possibly infinite
//! relations such as `<` or the ternary trace predicate `P`) from *database*
//! symbols (the scheme's finite relations, e.g. the father–son relation `F`).
//! A [`Signature`] records both, so that formulas can be checked for
//! well-formedness before they are evaluated or transformed.

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::Term;
use std::collections::BTreeMap;

/// What kind of symbol a name denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolKind {
    /// A fixed domain predicate (e.g. `<`, or the trace predicate `P`).
    DomainPredicate,
    /// A domain function (e.g. `succ`, `+`, or the trace functions `w`, `m`).
    DomainFunction,
    /// A finite database relation from the scheme.
    DatabaseRelation,
    /// A named constant from the scheme (Theorem 3.1's `c`).
    SchemeConstant,
}

/// A signature: symbol names with kinds and arities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Signature {
    symbols: BTreeMap<String, (SymbolKind, usize)>,
}

impl Signature {
    /// An empty signature (equality is always implicitly available).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a symbol. Returns an error on conflicting redeclaration.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        kind: SymbolKind,
        arity: usize,
    ) -> Result<(), LogicError> {
        let name = name.into();
        if kind == SymbolKind::SchemeConstant && arity != 0 {
            return Err(LogicError::signature(&name, "scheme constants are nullary"));
        }
        match self.symbols.get(&name) {
            Some(existing) if *existing != (kind, arity) => Err(LogicError::signature(
                &name,
                format!(
                    "redeclared with different kind/arity (was {:?}/{}, now {:?}/{})",
                    existing.0, existing.1, kind, arity
                ),
            )),
            _ => {
                self.symbols.insert(name, (kind, arity));
                Ok(())
            }
        }
    }

    /// Fluent variant of [`Self::declare`] that panics on conflict; intended
    /// for building signatures from literals.
    pub fn with(mut self, name: &str, kind: SymbolKind, arity: usize) -> Self {
        self.declare(name, kind, arity)
            .expect("conflicting declaration");
        self
    }

    /// Look up a symbol.
    pub fn get(&self, name: &str) -> Option<(SymbolKind, usize)> {
        self.symbols.get(name).copied()
    }

    /// Iterate over all declared symbols.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SymbolKind, usize)> {
        self.symbols.iter().map(|(n, (k, a))| (n.as_str(), *k, *a))
    }

    /// Names of all database relations in the signature.
    pub fn database_relations(&self) -> Vec<(&str, usize)> {
        self.iter()
            .filter(|(_, k, _)| *k == SymbolKind::DatabaseRelation)
            .map(|(n, _, a)| (n, a))
            .collect()
    }

    /// Check that every symbol used in the formula is declared with the
    /// right kind and arity. Built-in comparison predicates (`<`, `<=`,
    /// `>`, `>=`) and arithmetic functions (`+`, `-`, `*`, `succ`) are
    /// accepted when declared; equality is always allowed.
    pub fn check(&self, formula: &Formula) -> Result<(), LogicError> {
        let mut result = Ok(());
        formula.visit(&mut |f| {
            if result.is_err() {
                return;
            }
            match f {
                Formula::Pred(name, args) => {
                    match self.get(name) {
                        Some((
                            SymbolKind::DomainPredicate | SymbolKind::DatabaseRelation,
                            arity,
                        )) => {
                            if args.len() != arity {
                                result = Err(LogicError::signature(
                                    name,
                                    format!("expected {arity} arguments, got {}", args.len()),
                                ));
                                return;
                            }
                        }
                        Some((kind, _)) => {
                            result = Err(LogicError::signature(
                                name,
                                format!("used as a predicate but declared as {kind:?}"),
                            ));
                            return;
                        }
                        None => {
                            result = Err(LogicError::signature(name, "undeclared predicate"));
                            return;
                        }
                    }
                    for t in args {
                        if let Err(e) = self.check_term(t) {
                            result = Err(e);
                            return;
                        }
                    }
                }
                Formula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Err(e) = self.check_term(t) {
                            result = Err(e);
                            return;
                        }
                    }
                }
                _ => {}
            }
        });
        result
    }

    fn check_term(&self, term: &Term) -> Result<(), LogicError> {
        match term {
            Term::Var(_) | Term::Nat(_) | Term::Str(_) => Ok(()),
            Term::App(name, args) => {
                match self.get(name) {
                    Some((SymbolKind::DomainFunction, arity)) => {
                        if args.len() != arity {
                            return Err(LogicError::signature(
                                name,
                                format!("expected {arity} arguments, got {}", args.len()),
                            ));
                        }
                    }
                    Some((SymbolKind::SchemeConstant, _)) => {
                        if !args.is_empty() {
                            return Err(LogicError::signature(
                                name,
                                "scheme constant applied to arguments",
                            ));
                        }
                    }
                    Some((kind, _)) => {
                        return Err(LogicError::signature(
                            name,
                            format!("used as a function but declared as {kind:?}"),
                        ));
                    }
                    None => {
                        return Err(LogicError::signature(name, "undeclared function symbol"));
                    }
                }
                for a in args {
                    self.check_term(a)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn fathers_sig() -> Signature {
        Signature::new().with("F", SymbolKind::DatabaseRelation, 2)
    }

    #[test]
    fn accepts_well_formed() {
        let sig = fathers_sig();
        let f = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
        assert!(sig.check(&f).is_ok());
    }

    #[test]
    fn rejects_wrong_arity() {
        let sig = fathers_sig();
        let f = parse_formula("F(x)").unwrap();
        assert!(sig.check(&f).is_err());
    }

    #[test]
    fn rejects_undeclared() {
        let sig = fathers_sig();
        let f = parse_formula("G(x, y)").unwrap();
        assert!(sig.check(&f).is_err());
    }

    #[test]
    fn scheme_constant_usage() {
        let sig = Signature::new()
            .with("P", SymbolKind::DomainPredicate, 3)
            .with("c", SymbolKind::SchemeConstant, 0);
        let f = parse_formula("P(x, c, y)").unwrap();
        assert!(sig.check(&f).is_ok());
    }

    #[test]
    fn scheme_constant_must_be_nullary() {
        let mut sig = Signature::new();
        assert!(sig.declare("c", SymbolKind::SchemeConstant, 1).is_err());
    }

    #[test]
    fn predicate_used_as_function_rejected() {
        let sig = Signature::new().with("F", SymbolKind::DatabaseRelation, 2);
        let f = parse_formula("F(x, y) = z").unwrap();
        assert!(sig.check(&f).is_err());
    }

    #[test]
    fn conflicting_redeclaration_rejected() {
        let mut sig = Signature::new();
        sig.declare("R", SymbolKind::DatabaseRelation, 2).unwrap();
        assert!(sig.declare("R", SymbolKind::DatabaseRelation, 3).is_err());
        // Identical redeclaration is fine.
        assert!(sig.declare("R", SymbolKind::DatabaseRelation, 2).is_ok());
    }

    #[test]
    fn equality_always_allowed() {
        let sig = Signature::new();
        let f = parse_formula("x = y").unwrap();
        assert!(sig.check(&f).is_ok());
    }

    #[test]
    fn database_relations_listing() {
        let sig = Signature::new()
            .with("F", SymbolKind::DatabaseRelation, 2)
            .with("<", SymbolKind::DomainPredicate, 2);
        assert_eq!(sig.database_relations(), vec![("F", 2)]);
    }
}
