//! # fq-logic — first-order logic kernel
//!
//! The query language of the relational calculus, as used throughout
//! Stolboushkin & Taitslin, *"Finite Queries Do Not Have Effective Syntax"*
//! (PODS 1995), is plain first-order logic over a domain signature extended
//! with database relation symbols. This crate provides that language:
//!
//! * [`Term`] and [`Formula`] — the abstract syntax, with n-ary conjunction
//!   and disjunction (convenient for the quantifier-elimination procedures in
//!   `fq-domains`);
//! * a [`parser`] and pretty-printer with a round-trip guarantee;
//! * standard transforms: negation normal form, prenex normal form,
//!   disjunctive normal form of quantifier-free formulas, and a
//!   constant-folding simplifier ([`transform`]);
//! * capture-avoiding substitution and fresh-variable generation ([`subst`]);
//! * signatures with arity checking ([`signature`]);
//! * evaluation over a finite universe slice ([`mod@eval`]), used for
//!   active-domain semantics and for bounded model checking in tests.
//!
//! ## Example
//!
//! ```
//! use fq_logic::{parse_formula, transform::nnf};
//!
//! // The paper's Section 1 query M(x): "x has at least two sons".
//! let m = parse_formula("exists y. exists z. y != z & F(x, y) & F(x, z)").unwrap();
//! assert_eq!(m.free_vars(), ["x".to_string()].into_iter().collect());
//! let n = nnf(&m);
//! assert!(n.to_string().contains("exists"));
//! ```

pub mod error;
pub mod eval;
pub mod formula;
pub mod parser;
pub mod signature;
pub mod subst;
pub mod term;
pub mod transform;

pub use error::LogicError;
pub use eval::{
    compile_slots, eval, eval_sentence, eval_slots, solutions_slots, solutions_slots_fixed,
    Assignment, Interpretation, SlotFormula,
};
pub use formula::Formula;
pub use parser::{parse_formula, parse_term};
pub use signature::{Signature, SymbolKind};
pub use subst::{bind_constants, fresh_var, rename_bound, substitute, substitute_const};
pub use term::{Sym, Term};
