//! Finitely-representable (constraint) relations — the Section 1.2 way.
//!
//! "One way of handling the situation is to accept infinite relations
//! that may result in answering infinite queries. Note that although
//! infinite, these relations are finitely representable. … the database
//! remains capable of answering questions of whether a certain tuple
//! belongs to a relation, finite or infinite, or whether a certain fact
//! holds. This approach was mentioned in \[AGSS86, GSSS86\] and developed
//! into a nice theory by Kanellakis et al. \[KKR90\]."
//!
//! A [`FinRep`] stores a relation over ℕ as a quantifier-free Presburger
//! formula over named columns. The relational operations are formula
//! manipulations; projection runs Cooper's elimination to keep the
//! representation quantifier-free; membership, emptiness, finiteness, and
//! (when finite) full enumeration all reduce to the Presburger decision
//! procedure.

use crate::finitize::finitize_wrt;
use fq_domains::{DecidableTheory, DomainError, Presburger};
use fq_logic::{Formula, Term};

/// A finitely-representable relation over ℕ: named columns constrained by
/// a Presburger formula. The formula may mention only the columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinRep {
    columns: Vec<String>,
    formula: Formula,
}

impl FinRep {
    /// Create a relation; the formula's free variables must be among the
    /// columns.
    pub fn new(
        columns: impl IntoIterator<Item = impl Into<String>>,
        formula: Formula,
    ) -> Result<FinRep, DomainError> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for v in formula.free_vars() {
            if !columns.contains(&v) {
                return Err(DomainError::NotASentence { free: vec![v] });
            }
        }
        Ok(FinRep { columns, formula })
    }

    /// A finite relation from explicit tuples.
    pub fn from_tuples(
        columns: impl IntoIterator<Item = impl Into<String>>,
        tuples: impl IntoIterator<Item = Vec<u64>>,
    ) -> Result<FinRep, DomainError> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        let formula = Formula::or(tuples.into_iter().map(|t| {
            Formula::and(
                columns
                    .iter()
                    .zip(t)
                    .map(|(c, v)| Formula::eq(Term::var(c.clone()), Term::Nat(v))),
            )
        }));
        Ok(FinRep { columns, formula })
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The defining formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Tuple membership: "the database remains capable of answering
    /// questions of whether a certain tuple belongs to a relation, finite
    /// or infinite".
    pub fn contains(&self, tuple: &[u64]) -> Result<bool, DomainError> {
        if tuple.len() != self.columns.len() {
            return Err(DomainError::SortMismatch {
                detail: format!(
                    "tuple arity {} vs {} columns",
                    tuple.len(),
                    self.columns.len()
                ),
            });
        }
        let mut f = self.formula.clone();
        for (c, v) in self.columns.iter().zip(tuple) {
            f = fq_logic::substitute(&f, c, &Term::Nat(*v));
        }
        Presburger.decide(&f)
    }

    /// Intersection (same columns required).
    pub fn intersect(&self, other: &FinRep) -> Result<FinRep, DomainError> {
        self.check_compatible(other)?;
        Ok(FinRep {
            columns: self.columns.clone(),
            formula: Formula::and([self.formula.clone(), other.formula.clone()]),
        })
    }

    /// Union (same columns required).
    pub fn union(&self, other: &FinRep) -> Result<FinRep, DomainError> {
        self.check_compatible(other)?;
        Ok(FinRep {
            columns: self.columns.clone(),
            formula: Formula::or([self.formula.clone(), other.formula.clone()]),
        })
    }

    /// Difference: `self ∖ other` (same columns required).
    pub fn difference(&self, other: &FinRep) -> Result<FinRep, DomainError> {
        self.check_compatible(other)?;
        Ok(FinRep {
            columns: self.columns.clone(),
            formula: Formula::and([self.formula.clone(), Formula::not(other.formula.clone())]),
        })
    }

    /// Complement within ℕ^k — the operation classical finite relations
    /// cannot support but finitely-representable ones can.
    pub fn complement(&self) -> FinRep {
        FinRep {
            columns: self.columns.clone(),
            formula: Formula::not(self.formula.clone()),
        }
    }

    /// Selection by an extra Presburger constraint over the columns.
    pub fn select(&self, constraint: Formula) -> Result<FinRep, DomainError> {
        for v in constraint.free_vars() {
            if !self.columns.contains(&v) {
                return Err(DomainError::NotASentence { free: vec![v] });
            }
        }
        Ok(FinRep {
            columns: self.columns.clone(),
            formula: Formula::and([self.formula.clone(), constraint]),
        })
    }

    /// Projection onto a subset of columns. The dropped columns are
    /// existentially quantified and *eliminated* (Cooper), keeping the
    /// stored representation quantifier-free.
    pub fn project(&self, keep: &[&str]) -> Result<FinRep, DomainError> {
        let kept: Vec<String> = self
            .columns
            .iter()
            .filter(|c| keep.contains(&c.as_str()))
            .cloned()
            .collect();
        let dropped: Vec<String> = self
            .columns
            .iter()
            .filter(|c| !keep.contains(&c.as_str()))
            .cloned()
            .collect();
        let quantified = Formula::exists_many(dropped, self.formula.clone());
        let eliminated = Presburger.quantifier_free_equivalent(&quantified)?;
        Ok(FinRep {
            columns: kept,
            formula: eliminated,
        })
    }

    /// Natural join on shared column names.
    pub fn join(&self, other: &FinRep) -> FinRep {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            if !columns.contains(c) {
                columns.push(c.clone());
            }
        }
        FinRep {
            columns,
            formula: Formula::and([self.formula.clone(), other.formula.clone()]),
        }
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> Result<bool, DomainError> {
        let any = Formula::exists_many(self.columns.clone(), self.formula.clone());
        Ok(!Presburger.decide(&any)?)
    }

    /// Finiteness test — the Theorem 2.5 criterion applied to the stored
    /// representation: finite iff equivalent to its finitization.
    pub fn is_finite(&self) -> Result<bool, DomainError> {
        if self.columns.is_empty() {
            return Ok(true);
        }
        let fin = finitize_wrt(&self.formula, &self.columns);
        Presburger.equivalent(&self.formula, &fin)
    }

    /// Enumerate the tuples when the relation is finite; `None` when it
    /// is infinite. The enumeration walks candidates below the bound that
    /// the finiteness certificate guarantees exists.
    pub fn enumerate(&self, max_tuples: usize) -> Result<Option<Vec<Vec<u64>>>, DomainError> {
        if !self.is_finite()? {
            return Ok(None);
        }
        // Find an upper bound b with ∀x̄ (φ → ⋀ xᵢ < b) by doubling.
        let mut bound = 1u64;
        loop {
            let below = Formula::forall_many(
                self.columns.clone(),
                Formula::implies(
                    self.formula.clone(),
                    Formula::and(
                        self.columns
                            .iter()
                            .map(|c| Formula::lt(Term::var(c.clone()), Term::Nat(bound))),
                    ),
                ),
            );
            if Presburger.decide(&below)? {
                break;
            }
            bound = bound
                .checked_mul(2)
                .ok_or_else(|| DomainError::BudgetExhausted {
                    detail: "bound search overflowed".into(),
                })?;
        }
        let mut out = Vec::new();
        let mut tuple = vec![0u64; self.columns.len()];
        loop {
            if self.contains(&tuple)? {
                out.push(tuple.clone());
                if out.len() > max_tuples {
                    return Err(DomainError::BudgetExhausted {
                        detail: format!("more than {max_tuples} tuples"),
                    });
                }
            }
            // Mixed-radix increment below `bound`.
            let mut pos = 0;
            loop {
                if pos == tuple.len() {
                    return Ok(Some(out));
                }
                tuple[pos] += 1;
                if tuple[pos] < bound {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
        }
    }

    fn check_compatible(&self, other: &FinRep) -> Result<(), DomainError> {
        if self.columns != other.columns {
            return Err(DomainError::SortMismatch {
                detail: format!("columns {:?} vs {:?}", self.columns, other.columns),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn rep(cols: &[&str], f: &str) -> FinRep {
        FinRep::new(cols.iter().copied(), parse_formula(f).unwrap()).unwrap()
    }

    #[test]
    fn membership_in_infinite_relation() {
        // The paper's point: infinite relations still answer membership.
        let evens = rep(&["x"], "div(2, x, 0)");
        assert!(evens.contains(&[4]).unwrap());
        assert!(!evens.contains(&[5]).unwrap());
        assert!(!evens.is_finite().unwrap());
    }

    #[test]
    fn from_tuples_round_trip() {
        let r = FinRep::from_tuples(["x", "y"], vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert!(r.contains(&[1, 2]).unwrap());
        assert!(!r.contains(&[2, 1]).unwrap());
        assert!(r.is_finite().unwrap());
        assert_eq!(r.enumerate(10).unwrap(), Some(vec![vec![1, 2], vec![3, 4]]));
    }

    #[test]
    fn complement_flips_membership_and_finiteness() {
        let r = FinRep::from_tuples(["x"], vec![vec![7]]).unwrap();
        let c = r.complement();
        assert!(!c.contains(&[7]).unwrap());
        assert!(c.contains(&[8]).unwrap());
        assert!(r.is_finite().unwrap());
        assert!(!c.is_finite().unwrap());
        assert!(c.enumerate(100).unwrap().is_none());
    }

    #[test]
    fn intersection_of_infinite_relations_can_be_finite() {
        let lo = rep(&["x"], "x < 10");
        let hi = rep(&["x"], "x > 5");
        let band = hi.intersect(&lo).unwrap();
        assert!(band.is_finite().unwrap());
        assert_eq!(
            band.enumerate(10).unwrap(),
            Some(vec![vec![6], vec![7], vec![8], vec![9]])
        );
    }

    #[test]
    fn projection_eliminates_quantifiers() {
        // {(x, y) : y = x + 1 ∧ y < 5} projected to x = {0..3}.
        let r = rep(&["x", "y"], "y = x + 1 & y < 5");
        let p = r.project(&["x"]).unwrap();
        assert!(p.formula().is_quantifier_free());
        assert_eq!(
            p.enumerate(10).unwrap(),
            Some(vec![vec![0], vec![1], vec![2], vec![3]])
        );
    }

    #[test]
    fn join_shares_columns() {
        let r = rep(&["x", "y"], "y = x + 1");
        let s = rep(&["y", "z"], "z = y + 1");
        let j = r.join(&s);
        assert_eq!(j.columns(), &["x", "y", "z"]);
        assert!(j.contains(&[1, 2, 3]).unwrap());
        assert!(!j.contains(&[1, 2, 4]).unwrap());
    }

    #[test]
    fn difference_of_infinite_relations() {
        // evens ∖ multiples-of-4 = numbers ≡ 2 (mod 4): still infinite,
        // membership still decidable.
        let evens = rep(&["x"], "div(2, x, 0)");
        let fours = rep(&["x"], "div(4, x, 0)");
        let diff = evens.difference(&fours).unwrap();
        assert!(diff.contains(&[2]).unwrap());
        assert!(diff.contains(&[6]).unwrap());
        assert!(!diff.contains(&[4]).unwrap());
        assert!(!diff.contains(&[3]).unwrap());
        assert!(!diff.is_finite().unwrap());
        // Bounded difference is finite and enumerable.
        let small = rep(&["x"], "x < 10");
        let banded = diff.intersect(&small).unwrap();
        assert_eq!(banded.enumerate(10).unwrap(), Some(vec![vec![2], vec![6]]));
    }

    #[test]
    fn emptiness() {
        assert!(rep(&["x"], "x < 0").is_empty().unwrap());
        assert!(!rep(&["x"], "x < 1").is_empty().unwrap());
    }

    #[test]
    fn union_compatible_columns_only() {
        let r = rep(&["x"], "x < 2");
        let s = rep(&["y"], "y < 2");
        assert!(r.union(&s).is_err());
        let t = rep(&["x"], "x = 5");
        let u = r.union(&t).unwrap();
        assert_eq!(
            u.enumerate(10).unwrap(),
            Some(vec![vec![0], vec![1], vec![5]])
        );
    }

    #[test]
    fn selection() {
        let evens = rep(&["x"], "div(2, x, 0)");
        let small_evens = evens.select(parse_formula("x < 7").unwrap()).unwrap();
        assert_eq!(
            small_evens.enumerate(10).unwrap(),
            Some(vec![vec![0], vec![2], vec![4], vec![6]])
        );
    }

    #[test]
    fn formula_with_foreign_variable_rejected() {
        assert!(FinRep::new(["x"], parse_formula("x = y").unwrap()).is_err());
        let r = rep(&["x"], "x < 3");
        assert!(r.select(parse_formula("z = 1").unwrap()).is_err());
    }

    #[test]
    fn enumerate_budget() {
        let r = rep(&["x"], "x < 1000");
        assert!(matches!(
            r.enumerate(10),
            Err(DomainError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn nullary_relation_is_a_boolean() {
        let truthy = FinRep::new(Vec::<String>::new(), Formula::True).unwrap();
        assert!(truthy.is_finite().unwrap());
        assert!(!truthy.is_empty().unwrap());
    }
}
